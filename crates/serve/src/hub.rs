//! Reactive subscriptions: install deltas pushed to registered readers
//! in install order, with bounded-queue backpressure.
//!
//! A subscription is a per-view cursor plus a queue. When the store
//! accepts epoch `e` of view `v`, every subscription on `v` whose cursor
//! is behind `e` gets the delta appended and its cursor advanced —
//! installs reach every subscriber exactly once, in the order they
//! committed. Under the sharded scheduler that order is the
//! [`dw_engine::InstallSequencer`] ticket order, so the concatenated
//! consumed-sets of a subscription stream equal the view's install
//! fingerprint exactly (asserted by `tests/serve_equivalence.rs`).
//!
//! **Backpressure.** A subscription registered with a `max_lag` bound
//! never queues more than `max_lag` undrained deltas. The install that
//! would overflow the queue instead *lags* the subscription: the queue
//! is dropped on the spot (no memory held for a reader that stopped
//! reading) and the subscription remembers only a `resume_epoch` — the
//! latest epoch published to its view, kept current while lagged.
//! Polling a lagged subscription reports the lag as a typed condition;
//! the reader recovers by pinning the snapshot at `resume_epoch` and
//! streaming deltas from there — the stale-snapshot + delta-stream
//! recovery of the Stale View Cleaning line of work, so a bounded
//! subscriber's view history is provably equivalent to the unbounded
//! stream it missed.
//!
//! **Lifecycle.** Ids are allocated monotonically and never reused, so
//! an unsubscribed id stays distinguishable from one never issued:
//! `poll` reports `Unsubscribed` for the former, `Unknown` for the
//! latter. `publish` is O(subscribers-on-that-view); `poll` and
//! `unsubscribe` are O(1) hash lookups.

use dw_protocol::UpdateId;
use dw_relational::Bag;
use dw_simnet::Time;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// One install delta as seen by a subscriber. The delta bag is
/// `Arc`-shared with the publisher and every other subscriber: fan-out
/// costs a refcount per queue, never a copy of the data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstallDelta {
    /// The view (registry slot index).
    pub view: usize,
    /// Epoch this delta produced: `view(epoch) = view(epoch−1) + delta`.
    pub epoch: u64,
    /// Install time.
    pub at: Time,
    /// Updates newly incorporated, in consumption order — identical to
    /// the install record's consumed set.
    pub consumed: Vec<UpdateId>,
    /// The installed delta (shared, never copied).
    pub delta: Arc<Bag>,
}

/// Delivery state of one subscription.
enum SubState {
    /// Keeping up: deltas queue until polled.
    Live {
        /// Last epoch appended to the queue; new installs append only
        /// when strictly newer (replayed installs after a crash recovery
        /// are filtered by the store, this cursor guards the hub
        /// independently).
        delivered_through: u64,
        queue: VecDeque<InstallDelta>,
    },
    /// Fell more than `max_lag` installs behind; queue dropped. Tracks
    /// the latest epoch published to the view so recovery can pin it.
    Lagged { resume_epoch: u64 },
}

struct Subscription {
    view: usize,
    /// Queue bound; `None` = unbounded (never lags).
    max_lag: Option<usize>,
    state: SubState,
}

/// What polling a subscription yields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HubPoll {
    /// The pending deltas, oldest first (possibly empty).
    Deltas(Vec<InstallDelta>),
    /// The subscription overflowed its `max_lag` bound; its queue was
    /// dropped. Recover by reading the snapshot at `resume_epoch` and
    /// resuming the stream from there.
    Lagged {
        /// Latest epoch published to the subscribed view.
        resume_epoch: u64,
    },
    /// The id was valid once but has been unsubscribed.
    Unsubscribed,
    /// The id was never issued.
    Unknown,
}

/// The fan-out registry (see module docs). Owned by the snapshot store;
/// reached through [`crate::ReadFrontend::subscribe`] / `poll`.
#[derive(Default)]
pub struct SubscriptionHub {
    next_id: u64,
    subs: HashMap<u64, Subscription>,
    /// Per-view subscriber ids, ordered — publish fan-out must be
    /// deterministic across runs.
    by_view: HashMap<usize, BTreeSet<u64>>,
}

/// Counters returned by one [`SubscriptionHub::publish`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Queues the delta was appended to.
    pub reached: u64,
    /// Subscriptions this install tipped over their `max_lag` bound.
    pub newly_lagged: u64,
}

impl SubscriptionHub {
    /// A hub with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a subscriber on `view`, receiving every install *after*
    /// `from_epoch` (pass the view's current latest epoch to stream only
    /// the future; pass 0 to replay nothing and still see everything
    /// published after registration). `max_lag` bounds the undrained
    /// queue; `None` never lags.
    pub fn subscribe(&mut self, view: usize, from_epoch: u64, max_lag: Option<usize>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.subs.insert(
            id,
            Subscription {
                view,
                max_lag,
                state: SubState::Live {
                    delivered_through: from_epoch,
                    queue: VecDeque::new(),
                },
            },
        );
        self.by_view.entry(view).or_default().insert(id);
        id
    }

    /// Remove a subscription, freeing its queue. `HubPoll::Unsubscribed`
    /// if already removed, `HubPoll::Unknown` if never issued (returned
    /// as the error side so callers type their responses).
    pub fn unsubscribe(&mut self, id: u64) -> Result<(), HubPoll> {
        match self.subs.remove(&id) {
            Some(sub) => {
                if let Some(set) = self.by_view.get_mut(&sub.view) {
                    set.remove(&id);
                }
                Ok(())
            }
            None if id < self.next_id => Err(HubPoll::Unsubscribed),
            None => Err(HubPoll::Unknown),
        }
    }

    /// Fan one accepted install out to its view's subscribers — live
    /// ones queue it (or tip into lagged), already-lagged ones just
    /// advance their `resume_epoch`. Unsubscribed ids are long gone from
    /// the per-view set, so they cost nothing here.
    pub fn publish(&mut self, delta: &InstallDelta) -> PublishOutcome {
        let mut out = PublishOutcome::default();
        let Some(ids) = self.by_view.get(&delta.view) else {
            return out;
        };
        for id in ids {
            let sub = self.subs.get_mut(id).expect("by_view/subs drift");
            match &mut sub.state {
                SubState::Live {
                    delivered_through,
                    queue,
                } => {
                    if delta.epoch <= *delivered_through {
                        continue; // replayed install (crash recovery)
                    }
                    if sub.max_lag.is_some_and(|m| queue.len() >= m) {
                        // Overflow: drop the queue, remember only where
                        // to resume from.
                        sub.state = SubState::Lagged {
                            resume_epoch: delta.epoch,
                        };
                        out.newly_lagged += 1;
                        continue;
                    }
                    *delivered_through = delta.epoch;
                    queue.push_back(delta.clone());
                    out.reached += 1;
                }
                SubState::Lagged { resume_epoch } => {
                    // Keep the resume point at the view's latest epoch:
                    // the latest snapshot is the one retention guarantees
                    // to still exist when the reader comes back.
                    *resume_epoch = (*resume_epoch).max(delta.epoch);
                }
            }
        }
        out
    }

    /// Drain a subscriber's pending deltas (oldest first), or report its
    /// lag / lifecycle state. O(1).
    pub fn poll(&mut self, id: u64) -> HubPoll {
        match self.subs.get_mut(&id) {
            Some(sub) => match &mut sub.state {
                SubState::Live { queue, .. } => HubPoll::Deltas(queue.drain(..).collect()),
                SubState::Lagged { resume_epoch } => HubPoll::Lagged {
                    resume_epoch: *resume_epoch,
                },
            },
            None if id < self.next_id => HubPoll::Unsubscribed,
            None => HubPoll::Unknown,
        }
    }

    /// Flip a lagged subscription back to live, streaming from
    /// `resume_epoch`. Returns `(view, resume_epoch)` so the caller can
    /// pin the snapshot it must read to catch up; errors with the
    /// subscription's poll state when it is not lagged.
    pub fn resume(&mut self, id: u64) -> Result<(usize, u64), HubPoll> {
        match self.subs.get_mut(&id) {
            Some(sub) => match sub.state {
                SubState::Lagged { resume_epoch } => {
                    sub.state = SubState::Live {
                        delivered_through: resume_epoch,
                        queue: VecDeque::new(),
                    };
                    Ok((sub.view, resume_epoch))
                }
                SubState::Live { .. } => Err(HubPoll::Deltas(Vec::new())),
            },
            None if id < self.next_id => Err(HubPoll::Unsubscribed),
            None => Err(HubPoll::Unknown),
        }
    }

    /// Number of registered subscribers.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when nobody subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(view: usize, epoch: u64) -> InstallDelta {
        InstallDelta {
            view,
            epoch,
            at: epoch * 10,
            consumed: vec![UpdateId {
                source: view,
                seq: epoch,
            }],
            delta: Arc::new(Bag::new()),
        }
    }

    fn drained(hub: &mut SubscriptionHub, id: u64) -> Vec<InstallDelta> {
        match hub.poll(id) {
            HubPoll::Deltas(v) => v,
            other => panic!("expected deltas, got {other:?}"),
        }
    }

    #[test]
    fn installs_reach_only_matching_views_in_order() {
        let mut hub = SubscriptionHub::new();
        let a = hub.subscribe(0, 0, None);
        let b = hub.subscribe(1, 0, None);
        hub.publish(&delta(0, 1));
        hub.publish(&delta(1, 1));
        hub.publish(&delta(0, 2));
        assert_eq!(
            drained(&mut hub, a),
            vec![delta(0, 1), delta(0, 2)],
            "view-0 stream"
        );
        assert_eq!(drained(&mut hub, b), vec![delta(1, 1)]);
        // Drained; nothing left.
        assert!(drained(&mut hub, a).is_empty());
    }

    #[test]
    fn from_epoch_skips_already_seen_installs() {
        let mut hub = SubscriptionHub::new();
        let late = hub.subscribe(0, 2, None);
        hub.publish(&delta(0, 2)); // replay of something pre-subscription
        hub.publish(&delta(0, 3));
        assert_eq!(drained(&mut hub, late), vec![delta(0, 3)]);
    }

    #[test]
    fn duplicate_epochs_are_not_redelivered() {
        let mut hub = SubscriptionHub::new();
        let s = hub.subscribe(0, 0, None);
        assert_eq!(hub.publish(&delta(0, 1)).reached, 1);
        assert_eq!(
            hub.publish(&delta(0, 1)).reached,
            0,
            "replayed install refused"
        );
        assert_eq!(drained(&mut hub, s), vec![delta(0, 1)]);
    }

    #[test]
    fn unknown_unsubscribed_and_live_ids_are_distinguishable() {
        let mut hub = SubscriptionHub::new();
        assert_eq!(hub.poll(99), HubPoll::Unknown);
        assert!(hub.is_empty());
        let s = hub.subscribe(0, 0, None);
        assert_eq!(hub.len(), 1);
        hub.unsubscribe(s).unwrap();
        assert!(hub.is_empty());
        assert_eq!(hub.poll(s), HubPoll::Unsubscribed, "dropped ≠ never issued");
        assert_eq!(hub.unsubscribe(s), Err(HubPoll::Unsubscribed));
        assert_eq!(hub.unsubscribe(77), Err(HubPoll::Unknown));
    }

    #[test]
    fn publish_skips_unsubscribed_slots_without_leaking() {
        let mut hub = SubscriptionHub::new();
        let gone = hub.subscribe(0, 0, None);
        let kept = hub.subscribe(0, 0, None);
        hub.publish(&delta(0, 1));
        hub.unsubscribe(gone).unwrap();
        // Fan-out reaches only the survivor; the dropped queue is freed.
        assert_eq!(hub.publish(&delta(0, 2)).reached, 1);
        assert_eq!(drained(&mut hub, kept), vec![delta(0, 1), delta(0, 2)]);
        assert_eq!(hub.poll(gone), HubPoll::Unsubscribed);
    }

    #[test]
    fn overflow_lags_drops_the_queue_and_tracks_resume_epoch() {
        let mut hub = SubscriptionHub::new();
        let s = hub.subscribe(0, 0, Some(2));
        assert_eq!(hub.publish(&delta(0, 1)).reached, 1);
        assert_eq!(hub.publish(&delta(0, 2)).reached, 1);
        // Third undrained install overflows max_lag = 2.
        let out = hub.publish(&delta(0, 3));
        assert_eq!((out.reached, out.newly_lagged), (0, 1));
        assert_eq!(hub.poll(s), HubPoll::Lagged { resume_epoch: 3 });
        // While lagged, later installs only advance the resume point.
        let out = hub.publish(&delta(0, 4));
        assert_eq!((out.reached, out.newly_lagged), (0, 0));
        assert_eq!(hub.poll(s), HubPoll::Lagged { resume_epoch: 4 });
        // Resume: live again, streaming strictly after resume_epoch.
        assert_eq!(hub.resume(s), Ok((0, 4)));
        hub.publish(&delta(0, 5));
        assert_eq!(drained(&mut hub, s), vec![delta(0, 5)]);
        // Resuming a live subscription is a typed error.
        assert_eq!(hub.resume(s), Err(HubPoll::Deltas(Vec::new())));
    }

    #[test]
    fn polling_keeps_a_bounded_subscription_live() {
        let mut hub = SubscriptionHub::new();
        let s = hub.subscribe(0, 0, Some(1));
        for e in 1..=6 {
            hub.publish(&delta(0, e));
            assert_eq!(drained(&mut hub, s), vec![delta(0, e)], "epoch {e}");
        }
    }
}
