//! Reactive subscriptions: install deltas pushed to registered readers
//! in install order.
//!
//! A subscription is a per-view cursor plus a queue. When the store
//! accepts epoch `e` of view `v`, every subscription on `v` whose cursor
//! is behind `e` gets the delta appended and its cursor advanced —
//! installs reach every subscriber exactly once, in the order they
//! committed. Under the sharded scheduler that order is the
//! [`dw_engine::InstallSequencer`] ticket order, so the concatenated
//! consumed-sets of a subscription stream equal the view's install
//! fingerprint exactly (asserted by `tests/serve_equivalence.rs`).

use dw_protocol::UpdateId;
use dw_relational::Bag;
use dw_simnet::Time;
use std::collections::VecDeque;

/// One install delta as seen by a subscriber.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstallDelta {
    /// The view (registry slot index).
    pub view: usize,
    /// Epoch this delta produced: `view(epoch) = view(epoch−1) + delta`.
    pub epoch: u64,
    /// Install time.
    pub at: Time,
    /// Updates newly incorporated, in consumption order — identical to
    /// the install record's consumed set.
    pub consumed: Vec<UpdateId>,
    /// The installed delta.
    pub delta: Bag,
}

struct Subscription {
    id: u64,
    view: usize,
    /// Last epoch appended to the queue; new installs append only when
    /// strictly newer (replayed installs after a crash recovery are
    /// filtered by the store, this cursor guards the hub independently).
    delivered_through: u64,
    queue: VecDeque<InstallDelta>,
}

/// The fan-out registry (see module docs). Owned by the snapshot store;
/// reached through [`crate::ReadFrontend::subscribe`] / `poll`.
#[derive(Default)]
pub struct SubscriptionHub {
    next_id: u64,
    subs: Vec<Subscription>,
}

impl SubscriptionHub {
    /// A hub with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a subscriber on `view`, receiving every install *after*
    /// `from_epoch` (pass the view's current latest epoch to stream only
    /// the future; pass 0 to replay nothing and still see everything
    /// published after registration).
    pub fn subscribe(&mut self, view: usize, from_epoch: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.subs.push(Subscription {
            id,
            view,
            delivered_through: from_epoch,
            queue: VecDeque::new(),
        });
        id
    }

    /// Fan one accepted install out to its view's subscribers. Returns
    /// how many subscriber queues it reached.
    pub fn publish(&mut self, delta: &InstallDelta) -> u64 {
        let mut reached = 0;
        for sub in &mut self.subs {
            if sub.view == delta.view && delta.epoch > sub.delivered_through {
                sub.delivered_through = delta.epoch;
                sub.queue.push_back(delta.clone());
                reached += 1;
            }
        }
        reached
    }

    /// Drain a subscriber's pending deltas (oldest first). `None` for an
    /// unknown id.
    pub fn poll(&mut self, id: u64) -> Option<Vec<InstallDelta>> {
        let sub = self.subs.iter_mut().find(|s| s.id == id)?;
        Some(sub.queue.drain(..).collect())
    }

    /// Number of registered subscribers.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when nobody subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(view: usize, epoch: u64) -> InstallDelta {
        InstallDelta {
            view,
            epoch,
            at: epoch * 10,
            consumed: vec![UpdateId {
                source: view,
                seq: epoch,
            }],
            delta: Bag::new(),
        }
    }

    #[test]
    fn installs_reach_only_matching_views_in_order() {
        let mut hub = SubscriptionHub::new();
        let a = hub.subscribe(0, 0);
        let b = hub.subscribe(1, 0);
        hub.publish(&delta(0, 1));
        hub.publish(&delta(1, 1));
        hub.publish(&delta(0, 2));
        assert_eq!(
            hub.poll(a).unwrap(),
            vec![delta(0, 1), delta(0, 2)],
            "view-0 stream"
        );
        assert_eq!(hub.poll(b).unwrap(), vec![delta(1, 1)]);
        // Drained; nothing left.
        assert!(hub.poll(a).unwrap().is_empty());
    }

    #[test]
    fn from_epoch_skips_already_seen_installs() {
        let mut hub = SubscriptionHub::new();
        let late = hub.subscribe(0, 2);
        hub.publish(&delta(0, 2)); // replay of something pre-subscription
        hub.publish(&delta(0, 3));
        assert_eq!(hub.poll(late).unwrap(), vec![delta(0, 3)]);
    }

    #[test]
    fn duplicate_epochs_are_not_redelivered() {
        let mut hub = SubscriptionHub::new();
        let s = hub.subscribe(0, 0);
        assert_eq!(hub.publish(&delta(0, 1)), 1);
        assert_eq!(hub.publish(&delta(0, 1)), 0, "replayed install refused");
        assert_eq!(hub.poll(s).unwrap(), vec![delta(0, 1)]);
    }

    #[test]
    fn unknown_subscriber_polls_none() {
        let mut hub = SubscriptionHub::new();
        assert!(hub.poll(99).is_none());
        assert!(hub.is_empty());
        hub.subscribe(0, 0);
        assert_eq!(hub.len(), 1);
    }
}
