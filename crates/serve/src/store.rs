//! The epoch-stamped snapshot store behind the read frontend.
//!
//! One [`SnapshotStore`] holds every registered view's retained epochs.
//! Epoch `e` of view `v` is the immutable contents of `v` after exactly
//! `e` installs (epoch 0 is the registered initial contents). The store
//! is fed through [`dw_engine::InstallPublisher`]: the schedulers call
//! `note_delivery` when an update reaches the warehouse and `publish`
//! at every committed install, so the store's epoch sequence *is* the
//! install log — same consumed sets, same order, one bag per record.
//!
//! **Retention.** Readers hold epochs through pins; the store keeps the
//! latest epoch plus every pinned one and garbage-collects the rest at
//! publish and unpin. Snapshot bags are `Arc`-shared: pinning costs a
//! refcount, never a copy, and an install can never mutate what a
//! reader is looking at (copy-on-write at epoch granularity — a new
//! epoch clones the latest bag, merges the delta, and freezes).
//!
//! **Staleness.** The store tracks, per view, every delivered update
//! and which epoch (if any) consumed it. An epoch `e` *admits* a bound
//! `T` iff no update delivered before `T` is still unconsumed at `e` —
//! checked exactly, against the same delivery times `dw-obs`' staleness
//! histograms are built from.
//!
//! **Replays.** Crash recovery re-publishes installs that predate the
//! crash; the store ignores any epoch at or below its high-water mark
//! (`republished_ignored` counts them), so recovery never disturbs
//! readers or subscribers.

use crate::frontend::ServeError;
use crate::hub::{InstallDelta, SubscriptionHub};
use dw_engine::{InstallEvent, InstallPublisher};
use dw_protocol::UpdateId;
use dw_relational::Bag;
use dw_simnet::Time;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One frozen epoch of one view.
pub(crate) struct EpochSnapshot {
    pub(crate) at: Time,
    pub(crate) consumed: Vec<UpdateId>,
    pub(crate) bag: Arc<Bag>,
}

struct DeliveredUpdate {
    delivered_at: Time,
    /// Epoch that consumed this update; `None` while still pending.
    consumed_in: Option<u64>,
}

struct ViewState {
    name: String,
    /// Retained epochs, keyed by epoch number. Always contains `latest`;
    /// older entries only while pinned.
    epochs: BTreeMap<u64, EpochSnapshot>,
    latest: u64,
    delivered: HashMap<UpdateId, DeliveredUpdate>,
    pins: HashMap<u64, usize>,
}

/// Counters the store keeps about its own traffic. All exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Update deliveries noted (per affected view).
    pub deliveries_noted: u64,
    /// Installs accepted as new epochs.
    pub snapshots_published: u64,
    /// Replayed installs ignored at the high-water mark (crash recovery).
    pub republished_ignored: u64,
    /// Unpinned non-latest epochs dropped by GC.
    pub snapshots_gced: u64,
    /// Reads answered (point + scan).
    pub reads_answered: u64,
    /// Reads rejected with `TooStale`.
    pub reads_rejected: u64,
    /// Pins taken.
    pub pins_taken: u64,
    /// Pins released.
    pub pins_released: u64,
    /// Install deltas enqueued across all subscribers.
    pub sub_events: u64,
}

/// The store itself (see module docs). Consumers never construct or
/// hold one directly — [`crate::ReadFrontend`] owns it behind a mutex
/// and hands the engine a publisher handle onto it.
#[derive(Default)]
pub struct SnapshotStore {
    views: Vec<ViewState>,
    hub: SubscriptionHub,
    stats: ServeStats,
    /// Every accepted install as `(view slot, epoch)`, in publication
    /// order — the documented global ticket order. Under the flat engine
    /// that is apply order; under the sharded engine it is
    /// [`dw_engine::InstallSequencer`] ticket order. A cascaded derived
    /// child's install is published immediately after its parent's,
    /// children in ascending slot order, depth-first — so a base install
    /// and its derived descendants always form one contiguous block.
    /// Replays (crash recovery) are ignored and never re-enter the log.
    publication_log: Vec<(usize, u64)>,
}

impl SnapshotStore {
    /// Register view slot `views.len()` with its initial contents as
    /// epoch 0. Must be called in registry order: slot indices here must
    /// equal the scheduler registry's, or published events land on the
    /// wrong view.
    pub(crate) fn register_view(&mut self, name: &str, initial: Bag, at: Time) -> usize {
        let mut epochs = BTreeMap::new();
        epochs.insert(
            0,
            EpochSnapshot {
                at,
                consumed: Vec::new(),
                bag: Arc::new(initial),
            },
        );
        self.views.push(ViewState {
            name: name.to_string(),
            epochs,
            latest: 0,
            delivered: HashMap::new(),
            pins: HashMap::new(),
        });
        self.views.len() - 1
    }

    pub(crate) fn view_count(&self) -> usize {
        self.views.len()
    }

    pub(crate) fn view_name(&self, view: usize) -> Result<&str, ServeError> {
        Ok(&self.view(view)?.name)
    }

    fn view(&self, view: usize) -> Result<&ViewState, ServeError> {
        self.views.get(view).ok_or(ServeError::NoSuchView { view })
    }

    fn view_mut(&mut self, view: usize) -> Result<&mut ViewState, ServeError> {
        self.views
            .get_mut(view)
            .ok_or(ServeError::NoSuchView { view })
    }

    pub(crate) fn latest_epoch(&self, view: usize) -> Result<u64, ServeError> {
        Ok(self.view(view)?.latest)
    }

    pub(crate) fn epoch(&self, view: usize, epoch: u64) -> Result<&EpochSnapshot, ServeError> {
        self.view(view)?
            .epochs
            .get(&epoch)
            .ok_or(ServeError::NoSuchEpoch { view, epoch })
    }

    /// Does `epoch` of `view` reflect every update delivered before
    /// `bound`? Exact: scans the per-view delivery ledger for an update
    /// with `delivered_at < bound` not consumed by any epoch ≤ `epoch`.
    pub(crate) fn admissible(
        &self,
        view: usize,
        epoch: u64,
        bound: Time,
    ) -> Result<bool, ServeError> {
        let v = self.view(view)?;
        Ok(!v
            .delivered
            .values()
            .any(|d| d.delivered_at < bound && d.consumed_in.is_none_or(|e| e > epoch)))
    }

    /// The freshest epoch admitting `bound`, if any. Admissibility is
    /// monotone in the epoch number (later epochs consume supersets), so
    /// this is the latest epoch or nothing.
    pub(crate) fn freshest_admissible(
        &self,
        view: usize,
        bound: Time,
    ) -> Result<Option<u64>, ServeError> {
        let latest = self.latest_epoch(view)?;
        Ok(self.admissible(view, latest, bound)?.then_some(latest))
    }

    pub(crate) fn pin(&mut self, view: usize, epoch: u64) -> Result<(), ServeError> {
        // Existence check first: pinning a GC'd epoch is an error, not a
        // resurrection.
        self.epoch(view, epoch)?;
        *self.view_mut(view)?.pins.entry(epoch).or_insert(0) += 1;
        self.stats.pins_taken += 1;
        Ok(())
    }

    pub(crate) fn unpin(&mut self, view: usize, epoch: u64) -> Result<(), ServeError> {
        let v = self.view_mut(view)?;
        match v.pins.get_mut(&epoch) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                v.pins.remove(&epoch);
            }
            None => return Err(ServeError::NotPinned { view, epoch }),
        }
        self.stats.pins_released += 1;
        self.gc(view);
        Ok(())
    }

    /// Drop unpinned non-latest epochs of `view`.
    fn gc(&mut self, view: usize) {
        let Some(v) = self.views.get_mut(view) else {
            return;
        };
        let latest = v.latest;
        let pins = &v.pins;
        let before = v.epochs.len();
        v.epochs
            .retain(|&e, _| e == latest || pins.get(&e).is_some_and(|&n| n > 0));
        self.stats.snapshots_gced += (before - v.epochs.len()) as u64;
    }

    pub(crate) fn subscribe(&mut self, view: usize) -> Result<u64, ServeError> {
        let from = self.latest_epoch(view)?;
        Ok(self.hub.subscribe(view, from))
    }

    pub(crate) fn poll(&mut self, sub: u64) -> Result<Vec<InstallDelta>, ServeError> {
        self.hub
            .poll(sub)
            .ok_or(ServeError::NoSuchSubscription { sub })
    }

    pub(crate) fn stats(&self) -> &ServeStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ServeStats {
        &mut self.stats
    }

    /// Retained epoch numbers of `view` (diagnostics, GC tests).
    pub(crate) fn retained_epochs(&self, view: usize) -> Result<Vec<u64>, ServeError> {
        Ok(self.view(view)?.epochs.keys().copied().collect())
    }

    /// The global publication ledger (see the field docs).
    pub(crate) fn publication_log(&self) -> &[(usize, u64)] {
        &self.publication_log
    }
}

impl InstallPublisher for SnapshotStore {
    fn note_delivery(&mut self, view_index: usize, id: UpdateId, delivered_at: Time) {
        let Some(v) = self.views.get_mut(view_index) else {
            return;
        };
        // Idempotent: a transport may redeliver after a crash; the first
        // noted time stands (it is the time staleness accounts against).
        v.delivered.entry(id).or_insert(DeliveredUpdate {
            delivered_at,
            consumed_in: None,
        });
        self.stats.deliveries_noted += 1;
    }

    fn publish(&mut self, event: InstallEvent) {
        let Some(v) = self.views.get_mut(event.view_index) else {
            return;
        };
        if event.epoch <= v.latest {
            // WAL replay after a crash re-runs the apply path; readers
            // already have these epochs.
            self.stats.republished_ignored += 1;
            return;
        }
        debug_assert_eq!(
            event.epoch,
            v.latest + 1,
            "install events must arrive contiguously per view"
        );
        let epoch = v.latest + 1;
        for id in &event.consumed {
            // `or_insert` covers adapters that publish without delivery
            // notices (single-view warehouse policies): the install time
            // then stands in for the delivery time.
            v.delivered
                .entry(*id)
                .or_insert(DeliveredUpdate {
                    delivered_at: event.at,
                    consumed_in: None,
                })
                .consumed_in = Some(epoch);
        }
        let mut bag = (*v.epochs[&v.latest].bag).clone();
        bag.merge(&event.delta);
        v.epochs.insert(
            epoch,
            EpochSnapshot {
                at: event.at,
                consumed: event.consumed.clone(),
                bag: Arc::new(bag),
            },
        );
        v.latest = epoch;
        self.publication_log.push((event.view_index, epoch));
        self.stats.snapshots_published += 1;
        self.gc(event.view_index);
        self.stats.sub_events += self.hub.publish(&InstallDelta {
            view: event.view_index,
            epoch,
            at: event.at,
            consumed: event.consumed,
            delta: event.delta,
        });
    }
}
