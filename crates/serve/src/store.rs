//! The epoch-stamped snapshot store behind the read frontend.
//!
//! One [`SnapshotStore`] holds every registered view's retained epochs.
//! Epoch `e` of view `v` is the immutable contents of `v` after exactly
//! `e` installs (epoch 0 is the registered initial contents). The store
//! is fed through [`dw_engine::InstallPublisher`]: the schedulers call
//! `note_delivery` when an update reaches the warehouse and `publish`
//! at every committed install, so the store's epoch sequence *is* the
//! install log — same consumed sets, same order, one bag per record.
//!
//! **Retention.** Readers hold epochs through pins; the store keeps the
//! latest epoch plus every pinned one and garbage-collects the rest at
//! publish and unpin. Snapshot bags are `Arc`-shared: pinning costs a
//! refcount, never a copy, and an install can never mutate what a
//! reader is looking at (copy-on-write at epoch granularity — a new
//! epoch clones the latest bag once at the freeze step, merges the
//! delta, and freezes; that is the *only* deep copy on the serve side,
//! counted by `bags_deep_cloned` and grepped for in CI).
//!
//! **Point indexes.** Each frozen epoch can carry secondary hash
//! indexes, one per read column, mapping a key value to the sorted
//! matching `(tuple, multiplicity)` group. The first point read on a
//! `(view, epoch, column)` builds the index with one full scan; every
//! later epoch *derives* its index incrementally from the predecessor's
//! (clone the `Arc`'d groups, rebuild only the keys the install delta
//! touched), so steady-state point reads examine `O(|group|)` tuples
//! instead of `O(|bag|)`. `read_work_tuples` /
//! `index_maintenance_tuples` count exactly how many tuples each path
//! examined — the deterministic work proxy E21 gates its speedup on.
//!
//! **Answer cache.** An optional read-through cache keyed
//! `(view, epoch, column, key)` memoizes point answers with FIFO
//! eviction at a fixed capacity. Epochs are immutable, so a cached
//! answer can never go stale; entries die with their epoch at GC.
//! Capacity 0 (the default) disables it — correctness never depends on
//! it, which `tests/serve_equivalence.rs` proves by byte-comparing
//! cache-on and cache-off runs.
//!
//! **Staleness.** The store tracks, per view, every delivered update
//! and which epoch (if any) consumed it. An epoch `e` *admits* a bound
//! `T` iff no update delivered before `T` is still unconsumed at `e` —
//! checked exactly, against the same delivery times `dw-obs`' staleness
//! histograms are built from.
//!
//! **Replays.** Crash recovery re-publishes installs that predate the
//! crash; the store ignores any epoch at or below its high-water mark
//! (`republished_ignored` counts them), so recovery never disturbs
//! readers or subscribers.

use crate::frontend::ServeError;
use crate::hub::{HubPoll, InstallDelta, SubscriptionHub};
use dw_engine::{InstallEvent, InstallPublisher};
use dw_obs::Obs;
use dw_protocol::UpdateId;
use dw_relational::{Bag, Tuple, Value};
use dw_simnet::Time;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// A secondary hash index of one frozen epoch on one column: key value →
/// sorted matching `(tuple, multiplicity)` group, `Arc`-shared so a
/// point answer hands the group out without copying it.
pub(crate) struct PointIndex {
    groups: HashMap<Value, Arc<Vec<(Tuple, i64)>>>,
}

impl PointIndex {
    /// Build from a full scan of `bag`. Returns the index and the number
    /// of tuples examined (= `bag.len()`).
    fn build(bag: &Bag, column: usize) -> (Self, u64) {
        let mut raw: HashMap<Value, Vec<(Tuple, i64)>> = HashMap::new();
        let mut work = 0u64;
        for (t, m) in bag.iter() {
            raw.entry(t.at(column).clone())
                .or_default()
                .push((t.clone(), m));
            work += 1;
        }
        let groups = raw
            .into_iter()
            .map(|(k, mut v)| {
                v.sort();
                (k, Arc::new(v))
            })
            .collect();
        (PointIndex { groups }, work)
    }

    /// Derive the successor epoch's index from this one plus the install
    /// delta: `Arc`-clone every untouched group, rebuild only the keys
    /// the delta mentions (summing multiplicities, dropping zeros —
    /// exactly [`Bag::merge`] semantics). Returns the new index and the
    /// tuples examined.
    fn derive(&self, delta: &Bag, column: usize) -> (Self, u64) {
        let mut groups = self.groups.clone();
        let mut touched: HashMap<Value, Vec<(Tuple, i64)>> = HashMap::new();
        let mut work = 0u64;
        for (t, m) in delta.iter() {
            touched
                .entry(t.at(column).clone())
                .or_default()
                .push((t.clone(), m));
            work += 1;
        }
        for (key, delta_entries) in touched {
            let mut counts: HashMap<Tuple, i64> = HashMap::new();
            if let Some(old) = groups.get(&key) {
                work += old.len() as u64;
                for (t, m) in old.iter() {
                    counts.insert(t.clone(), *m);
                }
            }
            for (t, m) in delta_entries {
                let c = counts.entry(t).or_insert(0);
                *c += m;
            }
            let mut merged: Vec<(Tuple, i64)> =
                counts.into_iter().filter(|&(_, m)| m != 0).collect();
            if merged.is_empty() {
                groups.remove(&key);
            } else {
                merged.sort();
                groups.insert(key, Arc::new(merged));
            }
        }
        (PointIndex { groups }, work)
    }

    /// The matching group for `key` (empty when absent).
    fn group(&self, key: &Value) -> Arc<Vec<(Tuple, i64)>> {
        self.groups
            .get(key)
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()))
    }
}

/// One frozen epoch of one view.
pub(crate) struct EpochSnapshot {
    pub(crate) at: Time,
    pub(crate) consumed: Vec<UpdateId>,
    pub(crate) bag: Arc<Bag>,
    /// Lazily built / incrementally derived point indexes, per column.
    indexes: HashMap<usize, Arc<PointIndex>>,
}

struct DeliveredUpdate {
    delivered_at: Time,
    /// Epoch that consumed this update; `None` while still pending.
    consumed_in: Option<u64>,
}

struct ViewState {
    name: String,
    /// Retained epochs, keyed by epoch number. Always contains `latest`;
    /// older entries only while pinned.
    epochs: BTreeMap<u64, EpochSnapshot>,
    latest: u64,
    delivered: HashMap<UpdateId, DeliveredUpdate>,
    pins: HashMap<u64, usize>,
}

/// Counters the store keeps about its own traffic. All exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Update deliveries noted (per affected view).
    pub deliveries_noted: u64,
    /// Installs accepted as new epochs.
    pub snapshots_published: u64,
    /// Replayed installs ignored at the high-water mark (crash recovery).
    pub republished_ignored: u64,
    /// Unpinned non-latest epochs dropped by GC.
    pub snapshots_gced: u64,
    /// Reads answered (point + scan).
    pub reads_answered: u64,
    /// Reads rejected with `TooStale`.
    pub reads_rejected: u64,
    /// Pins taken.
    pub pins_taken: u64,
    /// Pins released.
    pub pins_released: u64,
    /// Install deltas enqueued across all subscribers.
    pub sub_events: u64,
    /// Subscriptions that overflowed their `max_lag` bound.
    pub subs_lagged: u64,
    /// Lagged subscriptions resumed from their resume epoch.
    pub subs_resumed: u64,
    /// Subscriptions removed through `unsubscribe`.
    pub subs_unsubscribed: u64,
    /// Point reads answered through an already-present index.
    pub point_index_hits: u64,
    /// Point reads that found no index for their `(epoch, column)`.
    pub point_index_misses: u64,
    /// Full index builds (first point read on a column).
    pub point_index_builds: u64,
    /// Incremental index derivations at publish.
    pub point_index_derived: u64,
    /// Answer-cache hits.
    pub cache_hits: u64,
    /// Answer-cache misses (cache enabled, entry absent).
    pub cache_misses: u64,
    /// Answer-cache entries evicted at capacity.
    pub cache_evictions: u64,
    /// Tuples examined answering point reads (linear scans, index
    /// builds, and group walks; cache hits examine none).
    pub read_work_tuples: u64,
    /// Tuples examined deriving successor indexes at publish.
    pub index_maintenance_tuples: u64,
    /// Bag deep copies taken on the serve side — exactly one per
    /// accepted install (the freeze step). Reads never bump this.
    pub bags_deep_cloned: u64,
}

type CacheKey = (usize, u64, usize, Value);

/// A cached (or index-served) point answer: total multiplicity plus the
/// `Arc`-shared match group — cloning one is a refcount bump.
type PointHit = (i64, Arc<Vec<(Tuple, i64)>>);

/// Read-through point-answer cache with deterministic FIFO eviction.
/// Epochs are immutable, so entries never go stale; they are purged when
/// their epoch is garbage-collected.
#[derive(Default)]
struct AnswerCache {
    capacity: usize,
    map: HashMap<CacheKey, PointHit>,
    fifo: VecDeque<CacheKey>,
}

impl AnswerCache {
    fn get(&self, key: &CacheKey) -> Option<PointHit> {
        self.map.get(key).map(|(m, v)| (*m, Arc::clone(v)))
    }

    /// Insert, evicting oldest-first at capacity. Returns evictions.
    fn insert(&mut self, key: CacheKey, mult: i64, matches: Arc<Vec<(Tuple, i64)>>) -> u64 {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return 0;
        }
        let mut evicted = 0;
        while self.map.len() >= self.capacity {
            let Some(old) = self.fifo.pop_front() else {
                break;
            };
            if self.map.remove(&old).is_some() {
                evicted += 1;
            }
        }
        self.fifo.push_back(key.clone());
        self.map.insert(key, (mult, matches));
        evicted
    }

    /// Drop every entry answered from `(view, epoch)` (its snapshot is
    /// being garbage-collected).
    fn purge_epoch(&mut self, view: usize, epoch: u64) {
        if self.map.is_empty() {
            return;
        }
        self.fifo.retain(|k| !(k.0 == view && k.1 == epoch));
        self.map.retain(|k, _| !(k.0 == view && k.1 == epoch));
    }
}

/// The store itself (see module docs). Consumers never construct or
/// hold one directly — [`crate::ReadFrontend`] owns it behind a mutex
/// and hands the engine a publisher handle onto it.
pub struct SnapshotStore {
    views: Vec<ViewState>,
    hub: SubscriptionHub,
    stats: ServeStats,
    /// Per-epoch secondary indexing on point-read columns (on by
    /// default; off = every point read is a linear scan).
    index_enabled: bool,
    cache: AnswerCache,
    obs: Obs,
    /// Every accepted install as `(view slot, epoch)`, in publication
    /// order — the documented global ticket order. Under the flat engine
    /// that is apply order; under the sharded engine it is
    /// [`dw_engine::InstallSequencer`] ticket order. A cascaded derived
    /// child's install is published immediately after its parent's,
    /// children in ascending slot order, depth-first — so a base install
    /// and its derived descendants always form one contiguous block.
    /// Replays (crash recovery) are ignored and never re-enter the log.
    publication_log: Vec<(usize, u64)>,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore {
            views: Vec::new(),
            hub: SubscriptionHub::new(),
            stats: ServeStats::default(),
            index_enabled: true,
            cache: AnswerCache::default(),
            obs: Obs::off(),
            publication_log: Vec::new(),
        }
    }
}

impl SnapshotStore {
    /// Register view slot `views.len()` with its initial contents as
    /// epoch 0. Must be called in registry order: slot indices here must
    /// equal the scheduler registry's, or published events land on the
    /// wrong view.
    pub(crate) fn register_view(&mut self, name: &str, initial: Bag, at: Time) -> usize {
        let mut epochs = BTreeMap::new();
        epochs.insert(
            0,
            EpochSnapshot {
                at,
                consumed: Vec::new(),
                bag: Arc::new(initial),
                indexes: HashMap::new(),
            },
        );
        self.views.push(ViewState {
            name: name.to_string(),
            epochs,
            latest: 0,
            delivered: HashMap::new(),
            pins: HashMap::new(),
        });
        self.views.len() - 1
    }

    pub(crate) fn set_point_index(&mut self, on: bool) {
        self.index_enabled = on;
    }

    pub(crate) fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache.capacity = capacity;
    }

    pub(crate) fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    pub(crate) fn view_count(&self) -> usize {
        self.views.len()
    }

    pub(crate) fn view_name(&self, view: usize) -> Result<&str, ServeError> {
        Ok(&self.view(view)?.name)
    }

    fn view(&self, view: usize) -> Result<&ViewState, ServeError> {
        self.views.get(view).ok_or(ServeError::NoSuchView { view })
    }

    fn view_mut(&mut self, view: usize) -> Result<&mut ViewState, ServeError> {
        self.views
            .get_mut(view)
            .ok_or(ServeError::NoSuchView { view })
    }

    pub(crate) fn latest_epoch(&self, view: usize) -> Result<u64, ServeError> {
        Ok(self.view(view)?.latest)
    }

    pub(crate) fn epoch(&self, view: usize, epoch: u64) -> Result<&EpochSnapshot, ServeError> {
        self.view(view)?
            .epochs
            .get(&epoch)
            .ok_or(ServeError::NoSuchEpoch { view, epoch })
    }

    /// Answer a point read: the sorted matching group for `key` on
    /// `column` at the pinned epoch, plus its total multiplicity. Routes
    /// cache → index → linear scan, in that order, bumping the exact
    /// work and hit/miss counters each path costs. Never copies the bag:
    /// the group is `Arc`-shared with the index (or freshly collected by
    /// the linear fallback, allocating only the matches).
    pub(crate) fn point_lookup(
        &mut self,
        view: usize,
        epoch: u64,
        column: usize,
        key: Value,
    ) -> Result<PointHit, ServeError> {
        // Existence check up front so cache/index paths can assume it.
        self.epoch(view, epoch)?;

        let cache_key: CacheKey = (view, epoch, column, key);
        if self.cache.capacity > 0 {
            if let Some((mult, matches)) = self.cache.get(&cache_key) {
                self.stats.cache_hits += 1;
                self.obs.add("serve.cache.hit", 1);
                return Ok((mult, matches));
            }
            self.stats.cache_misses += 1;
            self.obs.add("serve.cache.miss", 1);
        }
        let key = cache_key.3.clone();

        let matches: Arc<Vec<(Tuple, i64)>> = if self.index_enabled {
            let snap = self
                .views
                .get_mut(view)
                .and_then(|v| v.epochs.get_mut(&epoch))
                .expect("checked above");
            let index = match snap.indexes.get(&column) {
                Some(idx) => {
                    self.stats.point_index_hits += 1;
                    self.obs.add("serve.index.hit", 1);
                    Arc::clone(idx)
                }
                None => {
                    self.stats.point_index_misses += 1;
                    self.obs.add("serve.index.miss", 1);
                    let (idx, work) = PointIndex::build(&snap.bag, column);
                    let idx = Arc::new(idx);
                    snap.indexes.insert(column, Arc::clone(&idx));
                    self.stats.point_index_builds += 1;
                    self.stats.read_work_tuples += work;
                    self.obs.add("serve.index.build", 1);
                    idx
                }
            };
            let group = index.group(&key);
            self.stats.read_work_tuples += group.len() as u64;
            group
        } else {
            // Linear fallback: one pass over the frozen bag, allocating
            // only the matches.
            let snap = self.epoch(view, epoch)?;
            let mut found: Vec<(Tuple, i64)> = snap
                .bag
                .iter()
                .filter(|(t, _)| t.at(column) == &key)
                .map(|(t, m)| (t.clone(), m))
                .collect();
            found.sort();
            self.stats.read_work_tuples += self.epoch(view, epoch)?.bag.distinct_len() as u64;
            Arc::new(found)
        };
        let mult = matches.iter().map(|&(_, m)| m).sum();
        self.stats.cache_evictions += self.cache.insert(cache_key, mult, Arc::clone(&matches));
        Ok((mult, matches))
    }

    /// Does `epoch` of `view` reflect every update delivered before
    /// `bound`? Exact: scans the per-view delivery ledger for an update
    /// with `delivered_at < bound` not consumed by any epoch ≤ `epoch`.
    pub(crate) fn admissible(
        &self,
        view: usize,
        epoch: u64,
        bound: Time,
    ) -> Result<bool, ServeError> {
        let v = self.view(view)?;
        Ok(!v
            .delivered
            .values()
            .any(|d| d.delivered_at < bound && d.consumed_in.is_none_or(|e| e > epoch)))
    }

    /// The freshest epoch admitting `bound`, if any. Admissibility is
    /// monotone in the epoch number (later epochs consume supersets), so
    /// this is the latest epoch or nothing.
    pub(crate) fn freshest_admissible(
        &self,
        view: usize,
        bound: Time,
    ) -> Result<Option<u64>, ServeError> {
        let latest = self.latest_epoch(view)?;
        Ok(self.admissible(view, latest, bound)?.then_some(latest))
    }

    pub(crate) fn pin(&mut self, view: usize, epoch: u64) -> Result<(), ServeError> {
        // Existence check first: pinning a GC'd epoch is an error, not a
        // resurrection.
        self.epoch(view, epoch)?;
        *self.view_mut(view)?.pins.entry(epoch).or_insert(0) += 1;
        self.stats.pins_taken += 1;
        Ok(())
    }

    pub(crate) fn unpin(&mut self, view: usize, epoch: u64) -> Result<(), ServeError> {
        let v = self.view_mut(view)?;
        match v.pins.get_mut(&epoch) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                v.pins.remove(&epoch);
            }
            None => return Err(ServeError::NotPinned { view, epoch }),
        }
        self.stats.pins_released += 1;
        self.gc(view);
        Ok(())
    }

    /// Drop unpinned non-latest epochs of `view`, along with their
    /// cached answers (their indexes die with the snapshot).
    fn gc(&mut self, view: usize) {
        let Some(v) = self.views.get_mut(view) else {
            return;
        };
        let latest = v.latest;
        let pins = &v.pins;
        let mut dropped: Vec<u64> = Vec::new();
        v.epochs.retain(|&e, _| {
            let keep = e == latest || pins.get(&e).is_some_and(|&n| n > 0);
            if !keep {
                dropped.push(e);
            }
            keep
        });
        self.stats.snapshots_gced += dropped.len() as u64;
        for e in dropped {
            self.cache.purge_epoch(view, e);
        }
    }

    pub(crate) fn subscribe(
        &mut self,
        view: usize,
        max_lag: Option<usize>,
    ) -> Result<u64, ServeError> {
        let from = self.latest_epoch(view)?;
        Ok(self.hub.subscribe(view, from, max_lag))
    }

    pub(crate) fn unsubscribe(&mut self, sub: u64) -> Result<(), ServeError> {
        match self.hub.unsubscribe(sub) {
            Ok(()) => {
                self.stats.subs_unsubscribed += 1;
                Ok(())
            }
            Err(state) => Err(Self::sub_error(sub, state)),
        }
    }

    pub(crate) fn poll(&mut self, sub: u64) -> Result<Vec<InstallDelta>, ServeError> {
        match self.hub.poll(sub) {
            HubPoll::Deltas(v) => Ok(v),
            state => Err(Self::sub_error(sub, state)),
        }
    }

    /// Flip a lagged subscription live again and pin the snapshot it
    /// must read to catch up — one atomic step, so the resume epoch can
    /// never be garbage-collected between the flip and the read.
    pub(crate) fn resume(&mut self, sub: u64) -> Result<(usize, u64), ServeError> {
        match self.hub.resume(sub) {
            Ok((view, epoch)) => {
                // The resume epoch tracks the view's latest, which
                // retention always keeps — the pin cannot fail.
                self.pin(view, epoch)?;
                self.stats.subs_resumed += 1;
                Ok((view, epoch))
            }
            Err(HubPoll::Deltas(_)) => Err(ServeError::NotLagged { sub }),
            Err(state) => Err(Self::sub_error(sub, state)),
        }
    }

    fn sub_error(sub: u64, state: HubPoll) -> ServeError {
        match state {
            HubPoll::Lagged { resume_epoch } => ServeError::Lagged { sub, resume_epoch },
            HubPoll::Unsubscribed => ServeError::Unsubscribed { sub },
            _ => ServeError::NoSuchSubscription { sub },
        }
    }

    pub(crate) fn stats(&self) -> &ServeStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ServeStats {
        &mut self.stats
    }

    /// Retained epoch numbers of `view` (diagnostics, GC tests).
    pub(crate) fn retained_epochs(&self, view: usize) -> Result<Vec<u64>, ServeError> {
        Ok(self.view(view)?.epochs.keys().copied().collect())
    }

    /// The global publication ledger (see the field docs).
    pub(crate) fn publication_log(&self) -> &[(usize, u64)] {
        &self.publication_log
    }
}

impl InstallPublisher for SnapshotStore {
    fn note_delivery(&mut self, view_index: usize, id: UpdateId, delivered_at: Time) {
        let Some(v) = self.views.get_mut(view_index) else {
            return;
        };
        // Idempotent: a transport may redeliver after a crash; the first
        // noted time stands (it is the time staleness accounts against).
        v.delivered.entry(id).or_insert(DeliveredUpdate {
            delivered_at,
            consumed_in: None,
        });
        self.stats.deliveries_noted += 1;
    }

    fn publish(&mut self, event: InstallEvent) {
        let index_enabled = self.index_enabled;
        let Some(v) = self.views.get_mut(event.view_index) else {
            return;
        };
        if event.epoch <= v.latest {
            // WAL replay after a crash re-runs the apply path; readers
            // already have these epochs.
            self.stats.republished_ignored += 1;
            return;
        }
        debug_assert_eq!(
            event.epoch,
            v.latest + 1,
            "install events must arrive contiguously per view"
        );
        let epoch = v.latest + 1;
        for id in &event.consumed {
            // `or_insert` covers adapters that publish without delivery
            // notices (single-view warehouse policies): the install time
            // then stands in for the delivery time.
            v.delivered
                .entry(*id)
                .or_insert(DeliveredUpdate {
                    delivered_at: event.at,
                    consumed_in: None,
                })
                .consumed_in = Some(epoch);
        }
        let prev = &v.epochs[&v.latest];
        // Successor indexes derive incrementally from the predecessor's:
        // only delta-touched groups are rebuilt, everything else rides
        // the Arc. (Skipped when indexing is off or nothing was built.)
        let mut indexes = HashMap::new();
        let mut derive_work = 0u64;
        let mut derived = 0u64;
        if index_enabled {
            for (&column, idx) in &prev.indexes {
                let (next, work) = idx.derive(&event.delta, column);
                indexes.insert(column, Arc::new(next));
                derive_work += work;
                derived += 1;
            }
        }
        // freeze-step: the one permitted serve-side bag deep copy — COW
        // at epoch granularity, counted so tests can assert reads stay
        // copy-free.
        let mut bag = (*prev.bag).clone(); // freeze-step
        bag.merge(&event.delta);
        self.stats.bags_deep_cloned += 1;
        self.stats.index_maintenance_tuples += derive_work;
        self.stats.point_index_derived += derived;
        if derived > 0 {
            self.obs.add("serve.index.derive", derived);
        }
        v.epochs.insert(
            epoch,
            EpochSnapshot {
                at: event.at,
                consumed: event.consumed.clone(),
                bag: Arc::new(bag),
                indexes,
            },
        );
        v.latest = epoch;
        self.publication_log.push((event.view_index, epoch));
        self.stats.snapshots_published += 1;
        self.gc(event.view_index);
        let out = self.hub.publish(&InstallDelta {
            view: event.view_index,
            epoch,
            at: event.at,
            consumed: event.consumed,
            delta: event.delta,
        });
        self.stats.sub_events += out.reached;
        self.stats.subs_lagged += out.newly_lagged;
    }
}
