//! The reader-facing API: pinned epochs, point/scan reads with optional
//! staleness bounds, and subscription handles with lag recovery.
//!
//! A [`ReadFrontend`] is a cheap `Clone` handle — every clone shares one
//! [`SnapshotStore`] behind a mutex, so a
//! thread-per-reader deployment hands each reader its own clone. The
//! mutex guards only the store's *index* (epoch maps, pin counts);
//! snapshot bags come out as `Arc`s, so readers evaluate queries against
//! frozen data entirely outside the lock and an install can never block
//! on a long-running read.
//!
//! The maintenance side connects through [`ReadFrontend::sink`], which
//! hands the engine a [`dw_engine::SharedInstallPublisher`] onto the
//! same store.

use crate::store::SnapshotStore;
use dw_engine::SharedInstallPublisher;
use dw_relational::{Bag, Tuple, Value};
use dw_simnet::Time;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// A per-query freshness requirement: the answering epoch must reflect
/// every source update delivered to the warehouse before `reflect_before`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StalenessBound {
    /// Exclusive delivery-time horizon the answer must cover.
    pub reflect_before: Time,
}

/// Everything the serve layer can refuse to do, typed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// No view registered at this slot.
    NoSuchView {
        /// The offending slot index.
        view: usize,
    },
    /// The epoch was never published or has been garbage-collected.
    NoSuchEpoch {
        /// View slot.
        view: usize,
        /// The missing epoch.
        epoch: u64,
    },
    /// Unpin of an epoch that holds no pin.
    NotPinned {
        /// View slot.
        view: usize,
        /// The epoch without a pin.
        epoch: u64,
    },
    /// Poll of a subscription id never issued.
    NoSuchSubscription {
        /// The unknown subscription id.
        sub: u64,
    },
    /// Poll of a subscription id that was explicitly unsubscribed —
    /// distinguishable from [`NoSuchSubscription`](Self::NoSuchSubscription)
    /// because ids are never reused.
    Unsubscribed {
        /// The dropped subscription id.
        sub: u64,
    },
    /// The subscription fell more than its `max_lag` bound behind; its
    /// queue was dropped. Recover through [`ReadFrontend::resume`]: pin
    /// and read the snapshot at `resume_epoch`, then keep polling — the
    /// combined history equals the stream an unbounded subscriber saw.
    Lagged {
        /// The lagged subscription id.
        sub: u64,
        /// Latest epoch published to the subscribed view — the snapshot
        /// to catch up from.
        resume_epoch: u64,
    },
    /// [`ReadFrontend::resume`] on a subscription that is not lagged.
    NotLagged {
        /// The live subscription id.
        sub: u64,
    },
    /// The chosen epoch does not satisfy the query's [`StalenessBound`]:
    /// some update delivered before `required` is not yet reflected.
    TooStale {
        /// View slot.
        view: usize,
        /// The epoch that was asked to answer.
        epoch: u64,
        /// The bound it failed (`reflect_before`).
        required: Time,
        /// Freshest retained epoch that *does* satisfy the bound, if any
        /// exists yet — callers can re-pin it or wait.
        freshest_admissible: Option<u64>,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSuchView { view } => write!(f, "no view registered at slot {view}"),
            Self::NoSuchEpoch { view, epoch } => {
                write!(f, "view {view} has no retained epoch {epoch}")
            }
            Self::NotPinned { view, epoch } => {
                write!(f, "view {view} epoch {epoch} holds no pin")
            }
            Self::NoSuchSubscription { sub } => write!(f, "unknown subscription {sub}"),
            Self::Unsubscribed { sub } => write!(f, "subscription {sub} was unsubscribed"),
            Self::Lagged { sub, resume_epoch } => write!(
                f,
                "subscription {sub} lagged past its bound; resume from epoch {resume_epoch}"
            ),
            Self::NotLagged { sub } => {
                write!(f, "subscription {sub} is live, nothing to resume")
            }
            Self::TooStale {
                view,
                epoch,
                required,
                freshest_admissible,
            } => write!(
                f,
                "view {view} epoch {epoch} is too stale for bound {required} \
                 (freshest admissible epoch: {})",
                match freshest_admissible {
                    Some(e) => e.to_string(),
                    None => "none yet".to_string(),
                }
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// A held pin on one epoch of one view. The snapshot it names cannot be
/// garbage-collected until released through [`ReadFrontend::unpin`].
#[derive(Debug, PartialEq, Eq)]
#[must_use = "a pin retains a snapshot until released with unpin()"]
pub struct PinnedEpoch {
    view: usize,
    epoch: u64,
}

impl PinnedEpoch {
    /// The pinned view slot.
    pub fn view(&self) -> usize {
        self.view
    }

    /// The pinned epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Answer to a point read: the tuples of the pinned snapshot whose
/// `column` equals the queried key. The match group is `Arc`-shared with
/// the epoch's point index (or the answer cache) — a point read never
/// copies the snapshot, and a hot key's answers all alias one group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointAnswer {
    /// View slot answered from.
    pub view: usize,
    /// Epoch answered from.
    pub epoch: u64,
    /// Total multiplicity over all matching tuples.
    pub multiplicity: i64,
    /// The matching tuples with their multiplicities, sorted (shared,
    /// never copied).
    pub matches: Arc<Vec<(Tuple, i64)>>,
}

/// Answer to a scan: the whole pinned snapshot, zero-copy.
#[derive(Clone, Debug)]
pub struct ScanAnswer {
    /// View slot answered from.
    pub view: usize,
    /// Epoch answered from.
    pub epoch: u64,
    /// Install time of the answering epoch.
    pub at: Time,
    /// The frozen snapshot itself (shared, never copied).
    pub bag: Arc<Bag>,
}

/// The serve layer's public face (see module docs).
#[derive(Clone, Default)]
pub struct ReadFrontend {
    state: Arc<Mutex<SnapshotStore>>,
}

impl ReadFrontend {
    /// A frontend over a fresh, empty snapshot store.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, SnapshotStore> {
        self.state.lock().expect("snapshot store poisoned")
    }

    /// The publisher handle to hand the maintenance side (e.g.
    /// `MaintenanceScheduler::set_install_publisher`). Every install the
    /// scheduler commits lands in this frontend's store.
    pub fn sink(&self) -> SharedInstallPublisher {
        self.state.clone()
    }

    /// Register the next view slot with its initial contents as epoch 0.
    /// Call in scheduler-registry order so slot indices line up.
    pub fn register_view(&self, name: &str, initial: Bag, at: Time) -> usize {
        self.lock().register_view(name, initial, at)
    }

    /// Enable/disable per-epoch point indexes (on by default). Off means
    /// every point read linearly scans its frozen bag — the E21 baseline
    /// arm, and provably answer-identical to the indexed path.
    pub fn set_point_index(&self, on: bool) {
        self.lock().set_point_index(on)
    }

    /// Set the read-through answer cache's capacity (entries; 0 — the
    /// default — disables it). Eviction is deterministic FIFO.
    pub fn set_answer_cache_capacity(&self, capacity: usize) {
        self.lock().set_cache_capacity(capacity)
    }

    /// Attach an observability handle: index hit/miss/build/derive and
    /// cache hit/miss counters flow to it alongside
    /// [`ServeStats`](crate::ServeStats).
    pub fn set_observer(&self, obs: dw_obs::Obs) {
        self.lock().set_observer(obs)
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.lock().view_count()
    }

    /// Name a view slot was registered under.
    pub fn view_name(&self, view: usize) -> Result<String, ServeError> {
        Ok(self.lock().view_name(view)?.to_string())
    }

    /// The latest published epoch of `view`.
    pub fn latest_epoch(&self, view: usize) -> Result<u64, ServeError> {
        self.lock().latest_epoch(view)
    }

    /// Pin the latest epoch of `view`.
    pub fn pin(&self, view: usize) -> Result<PinnedEpoch, ServeError> {
        let mut s = self.lock();
        let epoch = s.latest_epoch(view)?;
        s.pin(view, epoch)?;
        Ok(PinnedEpoch { view, epoch })
    }

    /// Pin a specific retained epoch of `view` (errors if already
    /// garbage-collected).
    pub fn pin_epoch(&self, view: usize, epoch: u64) -> Result<PinnedEpoch, ServeError> {
        self.lock().pin(view, epoch)?;
        Ok(PinnedEpoch { view, epoch })
    }

    /// Release a pin, letting GC reclaim the epoch once unreferenced.
    pub fn unpin(&self, pin: PinnedEpoch) -> Result<(), ServeError> {
        self.lock().unpin(pin.view, pin.epoch)
    }

    /// Point read at a pinned epoch: every tuple whose `column` is
    /// `Int(key)`, with an optional staleness bound. Routes through the
    /// answer cache and the epoch's point index (see the store docs):
    /// the frozen bag is never cloned, and with the index on only the
    /// matching group is examined.
    pub fn read_point(
        &self,
        pin: &PinnedEpoch,
        column: usize,
        key: i64,
        bound: Option<StalenessBound>,
    ) -> Result<PointAnswer, ServeError> {
        let mut s = self.lock();
        self.admit(&mut s, pin, bound)?;
        let (multiplicity, matches) =
            s.point_lookup(pin.view, pin.epoch, column, Value::Int(key))?;
        s.stats_mut().reads_answered += 1;
        Ok(PointAnswer {
            view: pin.view,
            epoch: pin.epoch,
            multiplicity,
            matches,
        })
    }

    /// Full scan at a pinned epoch, with an optional staleness bound.
    /// Zero-copy: the returned bag *is* the frozen snapshot, shared by
    /// `Arc` — asserted by the `bags_deep_cloned` counter staying at one
    /// per install no matter how many scans run.
    pub fn read_scan(
        &self,
        pin: &PinnedEpoch,
        bound: Option<StalenessBound>,
    ) -> Result<ScanAnswer, ServeError> {
        let mut s = self.lock();
        self.admit(&mut s, pin, bound)?;
        let snap = s.epoch(pin.view, pin.epoch)?;
        let answer = ScanAnswer {
            view: pin.view,
            epoch: pin.epoch,
            at: snap.at,
            bag: Arc::clone(&snap.bag),
        };
        s.stats_mut().reads_answered += 1;
        Ok(answer)
    }

    /// Shared admission path for reads: enforce the bound against the
    /// pinned epoch, bumping the rejected counter on refusal.
    fn admit(
        &self,
        s: &mut SnapshotStore,
        pin: &PinnedEpoch,
        bound: Option<StalenessBound>,
    ) -> Result<(), ServeError> {
        if let Some(b) = bound {
            if !s.admissible(pin.view, pin.epoch, b.reflect_before)? {
                let freshest = s.freshest_admissible(pin.view, b.reflect_before)?;
                s.stats_mut().reads_rejected += 1;
                return Err(ServeError::TooStale {
                    view: pin.view,
                    epoch: pin.epoch,
                    required: b.reflect_before,
                    freshest_admissible: freshest,
                });
            }
        }
        Ok(())
    }

    /// The consumed-update ids of one retained epoch (provenance; equals
    /// the corresponding install record's consumed set).
    pub fn epoch_consumed(
        &self,
        view: usize,
        epoch: u64,
    ) -> Result<Vec<dw_protocol::UpdateId>, ServeError> {
        Ok(self.lock().epoch(view, epoch)?.consumed.clone())
    }

    /// Subscribe to `view`'s future installs (from its current latest
    /// epoch), with an unbounded queue. Returns the subscription id to
    /// [`poll`](Self::poll).
    pub fn subscribe(&self, view: usize) -> Result<u64, ServeError> {
        self.lock().subscribe(view, None)
    }

    /// Subscribe with a bounded queue: once more than `max_lag` installs
    /// pile up undrained, the subscription lags (queue dropped, typed
    /// [`ServeError::Lagged`] on poll) and must [`resume`](Self::resume).
    pub fn subscribe_bounded(&self, view: usize, max_lag: usize) -> Result<u64, ServeError> {
        self.lock().subscribe(view, Some(max_lag))
    }

    /// Remove a subscription, freeing its queue immediately. Polling the
    /// id afterwards reports [`ServeError::Unsubscribed`] — never
    /// confusable with an id that was never issued.
    pub fn unsubscribe(&self, sub: u64) -> Result<(), ServeError> {
        self.lock().unsubscribe(sub)
    }

    /// Drain a subscription's pending install deltas, oldest first. A
    /// lagged subscription returns [`ServeError::Lagged`] with the epoch
    /// to resume from.
    pub fn poll(&self, sub: u64) -> Result<Vec<crate::InstallDelta>, ServeError> {
        self.lock().poll(sub)
    }

    /// Recover a lagged subscription: atomically flip it live (streaming
    /// strictly after its `resume_epoch`) and pin that epoch, returning
    /// the pin. Read the pinned snapshot, then keep polling — snapshot +
    /// resumed stream is equivalent to the stream an unbounded
    /// subscriber received. The flip and the pin share one store lock,
    /// so the resume snapshot can never be collected in between.
    pub fn resume(&self, sub: u64) -> Result<PinnedEpoch, ServeError> {
        let (view, epoch) = self.lock().resume(sub)?;
        Ok(PinnedEpoch { view, epoch })
    }

    /// Snapshot of the store's counters.
    pub fn stats(&self) -> crate::ServeStats {
        self.lock().stats().clone()
    }

    /// Retained epoch numbers of `view` (diagnostics / GC inspection).
    pub fn retained_epochs(&self, view: usize) -> Result<Vec<u64>, ServeError> {
        self.lock().retained_epochs(view)
    }

    /// Every accepted install as `(view slot, epoch)`, in publication
    /// order — the global install-ticket order readers and subscribers
    /// observe. A cascaded derived child's install follows its parent's
    /// immediately (children ascending by slot, depth-first), so a base
    /// install and its derived descendants form one contiguous block;
    /// crash-recovery replays never re-enter the ledger.
    pub fn publication_log(&self) -> Vec<(usize, u64)> {
        self.lock().publication_log().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_engine::InstallEvent;
    use dw_protocol::UpdateId;
    use dw_relational::tup;

    fn id(seq: u64) -> UpdateId {
        UpdateId { source: 0, seq }
    }

    /// Drive one install through the engine-facing sink, exactly as a
    /// scheduler hook would.
    fn install(front: &ReadFrontend, view: usize, epoch: u64, at: Time, key: i64) {
        front.sink().lock().unwrap().publish(InstallEvent {
            view_index: view,
            epoch,
            at,
            consumed: vec![id(epoch)],
            delta: Arc::new(Bag::singleton(tup![key, epoch as i64], 1)),
        });
    }

    #[test]
    fn installs_through_the_sink_become_readable_epochs() {
        let front = ReadFrontend::new();
        let v = front.register_view("V", Bag::singleton(tup![1, 0], 1), 0);
        install(&front, v, 1, 10, 2);
        install(&front, v, 2, 20, 1);
        assert_eq!(front.latest_epoch(v).unwrap(), 2);

        let pin = front.pin(v).unwrap();
        let scan = front.read_scan(&pin, None).unwrap();
        assert_eq!(scan.epoch, 2);
        assert_eq!(scan.at, 20);
        assert_eq!(
            scan.bag.to_sorted_vec(),
            vec![(tup![1, 0], 1), (tup![1, 2], 1), (tup![2, 1], 1)]
        );

        let point = front.read_point(&pin, 0, 1, None).unwrap();
        assert_eq!(point.multiplicity, 2);
        assert_eq!(*point.matches, vec![(tup![1, 0], 1), (tup![1, 2], 1)]);
        front.unpin(pin).unwrap();
        assert_eq!(front.stats().reads_answered, 2);
    }

    #[test]
    fn reads_never_deep_copy_the_snapshot() {
        let front = ReadFrontend::new();
        let v = front.register_view("V", Bag::singleton(tup![1, 0], 1), 0);
        install(&front, v, 1, 10, 1);
        install(&front, v, 2, 20, 2);
        let pin = front.pin(v).unwrap();
        for _ in 0..50 {
            let scan = front.read_scan(&pin, None).unwrap();
            assert!(!scan.bag.is_empty());
            let point = front.read_point(&pin, 0, 1, None).unwrap();
            assert!(point.multiplicity > 0);
        }
        front.unpin(pin).unwrap();
        let stats = front.stats();
        // The freeze step deep-copies exactly once per accepted install;
        // 100 reads added zero copies. This is the "zero-copy promise"
        // the docs make, held as a counter rather than a comment.
        assert_eq!(stats.bags_deep_cloned, stats.snapshots_published);
        assert_eq!(stats.reads_answered, 100);
    }

    #[test]
    fn point_reads_build_then_ride_the_epoch_index() {
        let front = ReadFrontend::new();
        let v = front.register_view("V", Bag::singleton(tup![1, 0], 1), 0);
        install(&front, v, 1, 10, 1);
        let pin = front.pin(v).unwrap();
        let a = front.read_point(&pin, 0, 1, None).unwrap();
        let b = front.read_point(&pin, 0, 1, None).unwrap();
        assert_eq!(a, b);
        let stats = front.stats();
        assert_eq!(stats.point_index_builds, 1, "first read builds");
        assert_eq!(stats.point_index_misses, 1);
        assert_eq!(stats.point_index_hits, 1, "second read rides it");
        // The two answers alias one index group — shared, not re-collected.
        assert!(Arc::ptr_eq(&a.matches, &b.matches));

        // A new install derives the successor index incrementally.
        install(&front, v, 2, 20, 1);
        let pin2 = front.pin(v).unwrap();
        let c = front.read_point(&pin2, 0, 1, None).unwrap();
        assert_eq!(c.multiplicity, 3);
        let stats = front.stats();
        assert_eq!(stats.point_index_derived, 1, "publish derived the index");
        assert_eq!(stats.point_index_builds, 1, "no second full build");
        front.unpin(pin).unwrap();
        front.unpin(pin2).unwrap();
    }

    #[test]
    fn index_on_and_off_agree_exactly() {
        let build = |indexed: bool| {
            let front = ReadFrontend::new();
            front.set_point_index(indexed);
            let v = front.register_view("V", Bag::singleton(tup![3, 9], 2), 0);
            for e in 1..=5 {
                install(&front, v, e, e * 10, (e % 3) as i64);
            }
            let pin = front.pin(v).unwrap();
            let answers: Vec<PointAnswer> = (0..4)
                .map(|k| front.read_point(&pin, 0, k, None).unwrap())
                .collect();
            front.unpin(pin).unwrap();
            (answers, front.stats())
        };
        let (indexed, si) = build(true);
        let (linear, sl) = build(false);
        assert_eq!(indexed, linear, "index must be answer-invisible");
        assert!(si.point_index_builds > 0);
        assert_eq!(sl.point_index_builds, 0);
        assert!(
            sl.read_work_tuples > si.read_work_tuples,
            "linear scans examine more tuples ({} vs {})",
            sl.read_work_tuples,
            si.read_work_tuples
        );
    }

    #[test]
    fn answer_cache_is_invisible_and_evicts_fifo() {
        let run = |capacity: usize| {
            let front = ReadFrontend::new();
            front.set_answer_cache_capacity(capacity);
            let v = front.register_view("V", Bag::new(), 0);
            for e in 1..=4 {
                install(&front, v, e, e * 10, (e % 2) as i64);
            }
            let pin = front.pin(v).unwrap();
            let mut answers = Vec::new();
            for _ in 0..3 {
                for k in 0..3 {
                    answers.push(front.read_point(&pin, 0, k, None).unwrap());
                }
            }
            front.unpin(pin).unwrap();
            (answers, front.stats())
        };
        let (cached, sc) = run(8);
        let (uncached, su) = run(0);
        assert_eq!(cached, uncached, "cache must be answer-invisible");
        assert!(
            sc.cache_hits >= 6,
            "repeat keys hit ({} hits)",
            sc.cache_hits
        );
        assert_eq!(su.cache_hits + su.cache_misses, 0, "disabled cache is free");

        // Capacity 2 over 3 distinct keys: FIFO eviction cycles, still
        // correct, evictions counted.
        let (small, ss) = run(2);
        assert_eq!(small, uncached);
        assert!(ss.cache_evictions > 0);
    }

    #[test]
    fn pinned_epoch_survives_later_installs_and_gc_reclaims_on_unpin() {
        let front = ReadFrontend::new();
        let v = front.register_view("V", Bag::new(), 0);
        install(&front, v, 1, 10, 7);
        let pin = front.pin(v).unwrap();
        assert_eq!(pin.epoch(), 1);

        // Two more installs; the pinned epoch must stay retained and
        // byte-identical, the unpinned intermediate must be collected.
        install(&front, v, 2, 20, 8);
        install(&front, v, 3, 30, 9);
        assert_eq!(front.retained_epochs(v).unwrap(), vec![1, 3]);
        let scan = front.read_scan(&pin, None).unwrap();
        assert_eq!(scan.bag.to_sorted_vec(), vec![(tup![7, 1], 1)]);

        front.unpin(pin).unwrap();
        assert_eq!(front.retained_epochs(v).unwrap(), vec![3]);
        let stats = front.stats();
        assert_eq!(stats.snapshots_published, 3);
        // Dropped: epoch 0 at the first install, epoch 2 once epoch 3
        // superseded it, epoch 1 at unpin.
        assert_eq!(stats.snapshots_gced, 3);
        assert!(front.pin_epoch(v, 1).is_err(), "collected epoch unpinnable");
    }

    #[test]
    fn staleness_bound_rejects_with_freshest_admissible() {
        let front = ReadFrontend::new();
        let v = front.register_view("V", Bag::new(), 0);
        {
            let sink = front.sink();
            let mut s = sink.lock().unwrap();
            s.note_delivery(v, id(1), 5);
            s.note_delivery(v, id(2), 15);
        }
        install(&front, v, 1, 10, 1); // consumes id(1)

        let pin = front.pin(v).unwrap();
        // Bound 12: everything delivered before t=12 (just id(1)) is in
        // epoch 1 — admissible.
        assert!(front
            .read_scan(&pin, Some(StalenessBound { reflect_before: 12 }))
            .is_ok());
        // Bound 20: id(2) (delivered at 15) is unconsumed — too stale,
        // and no retained epoch admits the bound yet.
        let err = front
            .read_scan(&pin, Some(StalenessBound { reflect_before: 20 }))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::TooStale {
                view: v,
                epoch: 1,
                required: 20,
                freshest_admissible: None,
            }
        );

        // Epoch 2 consumes id(2): the same bound is now satisfied, and a
        // stale pin's error names epoch 2 as the freshest admissible.
        front.sink().lock().unwrap().publish(InstallEvent {
            view_index: v,
            epoch: 2,
            at: 30,
            consumed: vec![id(2)],
            delta: Arc::new(Bag::new()),
        });
        let err = front
            .read_scan(&pin, Some(StalenessBound { reflect_before: 20 }))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::TooStale {
                view: v,
                epoch: 1,
                required: 20,
                freshest_admissible: Some(2),
            }
        );
        let fresh = front.pin_epoch(v, 2).unwrap();
        assert!(front
            .read_scan(&fresh, Some(StalenessBound { reflect_before: 20 }))
            .is_ok());
        assert_eq!(front.stats().reads_rejected, 2);
        front.unpin(pin).unwrap();
        front.unpin(fresh).unwrap();
    }

    #[test]
    fn recovery_replays_are_invisible_to_readers_and_subscribers() {
        let front = ReadFrontend::new();
        let v = front.register_view("V", Bag::new(), 0);
        let sub = front.subscribe(v).unwrap();
        install(&front, v, 1, 10, 1);
        install(&front, v, 2, 20, 2);
        // Crash recovery replays both installs through the same hook.
        install(&front, v, 1, 10, 1);
        install(&front, v, 2, 20, 2);

        assert_eq!(front.latest_epoch(v).unwrap(), 2);
        let stats = front.stats();
        assert_eq!(stats.snapshots_published, 2);
        assert_eq!(stats.republished_ignored, 2);
        let stream = front.poll(sub).unwrap();
        assert_eq!(
            stream.iter().map(|d| d.epoch).collect::<Vec<_>>(),
            vec![1, 2],
            "subscriber saw each install exactly once"
        );
        let pin = front.pin(v).unwrap();
        assert_eq!(
            front.read_scan(&pin, None).unwrap().bag.to_sorted_vec(),
            vec![(tup![1, 1], 1), (tup![2, 2], 1)]
        );
        front.unpin(pin).unwrap();
    }

    #[test]
    fn lagged_subscriber_resumes_equivalently() {
        let front = ReadFrontend::new();
        let v = front.register_view("V", Bag::new(), 0);
        let unbounded = front.subscribe(v).unwrap();
        let bounded = front.subscribe_bounded(v, 2).unwrap();
        for e in 1..=5 {
            install(&front, v, e, e * 10, e as i64);
        }
        // Epochs 1–2 queued; 3 overflowed (queue dropped); 4–5 only
        // advanced the resume point.
        let err = front.poll(bounded).unwrap_err();
        assert_eq!(
            err,
            ServeError::Lagged {
                sub: bounded,
                resume_epoch: 5
            }
        );
        let pin = front.resume(bounded).unwrap();
        assert_eq!(pin.epoch(), 5);
        let snap = front.read_scan(&pin, None).unwrap();

        // Equivalence: the resume snapshot plus the post-resume stream
        // equals folding the unbounded subscriber's full stream.
        install(&front, v, 6, 60, 6);
        let mut from_snapshot = (*snap.bag).clone(); // freeze-step exempt: test oracle
        for d in front.poll(bounded).unwrap() {
            from_snapshot.merge(&d.delta);
        }
        let mut from_stream = Bag::new();
        for d in front.poll(unbounded).unwrap() {
            from_stream.merge(&d.delta);
        }
        assert_eq!(from_snapshot, from_stream);
        let stats = front.stats();
        assert_eq!(stats.subs_lagged, 1);
        assert_eq!(stats.subs_resumed, 1);
        front.unpin(pin).unwrap();
    }

    #[test]
    fn unsubscribe_frees_the_slot_with_typed_errors() {
        let front = ReadFrontend::new();
        let v = front.register_view("V", Bag::new(), 0);
        let sub = front.subscribe(v).unwrap();
        install(&front, v, 1, 10, 1);
        front.unsubscribe(sub).unwrap();
        assert_eq!(
            front.poll(sub).unwrap_err(),
            ServeError::Unsubscribed { sub }
        );
        assert_eq!(
            front.unsubscribe(sub).unwrap_err(),
            ServeError::Unsubscribed { sub }
        );
        // Installs after the unsubscribe fan out to nobody.
        install(&front, v, 2, 20, 2);
        let stats = front.stats();
        assert_eq!(stats.sub_events, 1);
        assert_eq!(stats.subs_unsubscribed, 1);
    }

    #[test]
    fn errors_are_typed_and_printable() {
        let front = ReadFrontend::new();
        assert_eq!(
            front.latest_epoch(3).unwrap_err(),
            ServeError::NoSuchView { view: 3 }
        );
        let v = front.register_view("V", Bag::new(), 0);
        assert_eq!(
            front.pin_epoch(v, 9).unwrap_err(),
            ServeError::NoSuchEpoch { view: v, epoch: 9 }
        );
        assert_eq!(
            front.unpin(PinnedEpoch { view: v, epoch: 0 }).unwrap_err(),
            ServeError::NotPinned { view: v, epoch: 0 }
        );
        assert_eq!(
            front.poll(42).unwrap_err(),
            ServeError::NoSuchSubscription { sub: 42 }
        );
        let sub = front.subscribe(v).unwrap();
        assert_eq!(
            front.resume(sub).unwrap_err(),
            ServeError::NotLagged { sub }
        );
        let msg = ServeError::TooStale {
            view: 0,
            epoch: 1,
            required: 20,
            freshest_admissible: Some(2),
        }
        .to_string();
        assert!(msg.contains("too stale"), "{msg}");
        assert!(msg.contains("freshest admissible epoch: 2"), "{msg}");
        let msg = ServeError::Lagged {
            sub: 7,
            resume_epoch: 9,
        }
        .to_string();
        assert!(msg.contains("resume from epoch 9"), "{msg}");
        assert!(ServeError::Unsubscribed { sub: 7 }
            .to_string()
            .contains("unsubscribed"));
    }
}
