//! # dw-serve
//!
//! The warehouse's **read path**: seven PRs of maintenance machinery can
//! install views, and this crate finally lets something *read* them
//! while maintenance runs.
//!
//! The design is an adapter over `dw-engine`'s install publication hook
//! ([`dw_engine::InstallPublisher`]):
//!
//! * every committed install arrives as an epoch-stamped event and is
//!   frozen into an immutable snapshot inside the [`SnapshotStore`] —
//!   epoch `e` is the view after exactly `e` installs, with the install
//!   log's own consumed-update sets as provenance;
//! * the [`ReadFrontend`] answers point/scan queries against a chosen
//!   (usually **pinned**) epoch, so a concurrent sweep can never block
//!   or torn-read a reader — readers hold `Arc` snapshots, installs only
//!   ever *add* new epochs;
//! * each query may carry a [`StalenessBound`] ("must reflect every
//!   source update delivered before `T`"); a violating epoch returns a
//!   typed [`ServeError::TooStale`] naming the freshest admissible
//!   epoch, so callers can retry against it or relax the bound;
//! * point reads route through per-`(view, epoch, column)` **secondary
//!   hash indexes** — lazily built on first touch, incrementally derived
//!   at every publish — with an optional read-through **answer cache**
//!   (`(view, epoch, column, key)`-keyed, FIFO-bounded), so a hot-key
//!   lookup is `O(|group|)` instead of `O(|bag|)` and both layers are
//!   provably invisible to correctness;
//! * a [`SubscriptionHub`] pushes install deltas to registered readers
//!   in install order — under the sharded scheduler that order is the
//!   [`dw_engine::InstallSequencer`] ticket order, so subscription
//!   streams are byte-identical to the install sequence. A subscriber
//!   registered with a `max_lag` bound that stops draining is *lagged*
//!   (queue dropped, typed [`ServeError::Lagged`] on poll) and recovers
//!   by [`ReadFrontend::resume`]: pin the snapshot at `resume_epoch`,
//!   read it, stream deltas from there — equivalent to the unbounded
//!   stream it missed.
//!
//! Old epochs are retained only while pinned (plus the latest); garbage
//! collection runs at publish and unpin. Crash recovery replays installs
//! through the same publication hook; the store deduplicates on
//! `(view, epoch)`, so recovery is invisible to readers — they keep
//! answering from the last committed epoch throughout.
//!
//! Construction discipline: **only this crate builds snapshots**. Every
//! consumer goes through [`ReadFrontend`] (CI greps for stray
//! `SnapshotStore` references outside `crates/serve/src`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod frontend;
pub mod hub;
pub mod store;

pub use frontend::{
    PinnedEpoch, PointAnswer, ReadFrontend, ScanAnswer, ServeError, StalenessBound,
};
pub use hub::{HubPoll, InstallDelta, PublishOutcome, SubscriptionHub};
pub use store::{ServeStats, SnapshotStore};
