//! The shared-sweep maintenance scheduler.
//!
//! On arrival of `ΔR_j` the scheduler computes the set of registered
//! views whose span contains `j` and runs **one** two-leg sweep over the
//! *union* of the affected spans `[L, R]` (contiguous, because every
//! affected span contains `j`):
//!
//! * the **left leg** carries the true delta and hops `j−1, …, L`;
//! * the **right leg** carries the delta's *support* (each distinct
//!   tuple at `+1`, §5.3's parallel-sweep trick) and hops `j+1, …, R`;
//! * after each hop's answer, the paper's on-line error correction (§4)
//!   subtracts `ΔR_k ⋈ Temp` for every queued concurrent update from
//!   the hop source — once, on the shared partial;
//! * a view with span `[lo, hi]` **snapshots** the left partial the
//!   moment it reaches `lo` and the right partial the moment it reaches
//!   `hi`; its own delta is the pivot-merge of its two snapshots
//!   (equating the shared `ΔR_j` columns, multiplying counts), filtered
//!   by its selections, then finalized through its residual predicate
//!   and projection.
//!
//! Message cost: at most `R − L ≤ n−1` queries (plus answers) per
//! update — `≤ 2(n−1)` messages **regardless of the number of views**.
//! [`SchedulerMode::Naive`] instead runs one dedicated sweep per
//! affected view (the `V·2(n−1)` baseline E14 measures against).
//!
//! **Cross-update batching** ([`EngineOptions::batch`] > 1, shared mode
//! only): when the sweep for `ΔR_j` starts, up to `batch − 1` further
//! queued updates *from the same source* are folded into it
//! Nested-SWEEP-style — their deltas merge into one composite seed, the
//! whole batch pays one `2(n−1)`-message sweep, and every affected view
//! consumes all k updates in one delta. Message cost per update falls
//! toward `2(n−1)/k` under bursty arrivals (experiment E15); installs
//! consume whole per-source delivery-order batches, so consistency is
//! strong rather than complete.
//!
//! Installs follow each view's [`ViewPolicy`] cadence: `Sweep` installs
//! every update immediately (complete consistency); `NestedSweep`
//! accumulates while work is in flight and installs at drain;
//! `Deferred { batch }` installs every `batch` relevant updates and at
//! drain (both strong consistency — consumed sets grow by whole
//! delivery-order batches).
//!
//! Global transactions (update type 3) are out of scope for the
//! multi-view layer — tags on incoming updates are ignored.
//!
//! **Crash recovery** ([`MaintenanceScheduler::enable_durability`]): the
//! scheduler journals its sweep lifecycle into a [`DurableStore`] —
//! update arrivals, task formation, query issue, hop completion, and one
//! atomic commit record per finished sweep — and checkpoints the full
//! volatile image every few commits. A warehouse *state crash*
//! ([`MaintenanceScheduler::crash_and_recover`]) rebuilds volatile state
//! from checkpoint + WAL replay: committed sweeps are re-applied from
//! their logged deltas (no re-querying), the in-flight sweep — which
//! never reached its commit record — is still durably *pending*, so it
//! re-seeds through the ordinary `start_next` path with fresh query ids
//! under a bumped epoch. Sources drop queries from superseded epochs and
//! the scheduler drops answers below its post-replay qid floor, making
//! the whole abort-and-reseed cycle idempotent. Off by default — with
//! durability disabled the scheduler's wire behavior and installs are
//! byte-identical to the pre-recovery engine.
//!
//! [`ViewPolicy`]: dw_workload::ViewPolicy

use crate::registry::{MvError, ViewId, ViewRegistry, ViewRuntime};
use dw_engine::{
    dispatch, merge_pivot, support, DurabilityConfig, DurableStats, DurableStore, EngineCore,
    EngineOptions, Leg, LegSlot, PendingUpdate, SpanLabels, SweepPolicy, UpdateQueue, WalRecord,
};
use dw_obs::Obs;
use dw_protocol::{Message, SourceUpdate, UpdateId};
use dw_relational::{Bag, JoinSide, PartialDelta, Predicate, RelationalError, ViewDef};
use dw_simnet::{Delivery, NetHandle, Time};
use dw_warehouse::PolicyMetrics;
use dw_workload::{DerivedSpec, ViewSpec};
use std::collections::VecDeque;

/// The scheduler's trace vocabulary in shared mode.
const SHARED_LABELS: SpanLabels = SpanLabels {
    sweep: "mv.sweep",
    hop: "mv.hop",
    compensations: "mv.compensations",
    query_rows: None,
    comp_rows: None,
    query_counter: Some("mv.shared_queries"),
};

/// The scheduler's trace vocabulary in naive per-view mode.
const NAIVE_LABELS: SpanLabels = SpanLabels {
    sweep: "mv.sweep",
    hop: "mv.hop",
    compensations: "mv.compensations",
    query_rows: None,
    comp_rows: None,
    query_counter: Some("mv.naive_queries"),
};

/// How the scheduler turns one update into sweeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerMode {
    /// One shared sweep over the union of the affected spans; every
    /// affected view reuses the per-hop answers. `≤ 2(n−1)` messages
    /// per update, independent of view count.
    #[default]
    Shared,
    /// One dedicated sweep per affected view — the naive baseline,
    /// `V·2(n−1)` messages per update for `V` full-span views.
    Naive,
}

impl SchedulerMode {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerMode::Shared => "shared-sweep",
            SchedulerMode::Naive => "naive-per-view",
        }
    }
}

/// One unit of sweep work: the batch of updates it services, the span to
/// cover, and the views fed by it. `Clone` because a formed task is
/// journaled verbatim — its consumed set is fixed at formation, so a
/// crash-recovered re-run consumes exactly the same updates.
#[derive(Clone)]
struct SweepTask {
    /// The updates this sweep folds together, in per-source delivery
    /// order. One entry unless cross-update batching folded more in.
    consumed: Vec<(UpdateId, Time)>,
    /// The updated base relation (chain index).
    j: usize,
    delta: Bag,
    /// Span to sweep (union of affected spans in shared mode; the one
    /// view's own span in naive mode).
    lo: usize,
    hi: usize,
    views: Vec<ViewId>,
}

struct ActiveSweep {
    task: SweepTask,
    left: LegSlot,
    right: LegSlot,
    /// Per-view left partials, captured the moment the left leg reached
    /// the view's `lo` (post-compensation for that hop).
    left_snaps: Vec<(ViewId, PartialDelta)>,
    /// Per-view right partials, captured at each view's `hi`.
    right_snaps: Vec<(ViewId, PartialDelta)>,
}

/// The durable image of the scheduler's volatile state, written whole at
/// each checkpoint. The in-flight sweep is deliberately *absent*: a task
/// leaves durable `pending_tasks` only at its commit record, so replay
/// always finds an aborted sweep still queued at the front.
#[derive(Clone)]
struct MvCheckpoint {
    epoch: u64,
    next_qid: u64,
    queue: UpdateQueue,
    pending_tasks: VecDeque<SweepTask>,
    slots: Vec<Option<ViewRuntime>>,
    metrics: PolicyMetrics,
}

/// One view's share of a sweep commit: the finalized delta and the
/// consumed updates, exactly as `apply_delta` will see them.
#[derive(Clone)]
struct ViewApply {
    view: ViewId,
    delta: Bag,
    consumed: Vec<(UpdateId, Time)>,
}

/// Sweep lifecycle journal entries. Records are appended *before* the
/// volatile action they describe takes effect (within one message
/// handling, which is the crash atom in the simulator), so the WAL never
/// under-describes the durable past.
#[derive(Clone)]
enum MvWalRecord {
    /// An update entered the queue.
    UpdateQueued { update: SourceUpdate, at: Time },
    /// A sweep task was formed: its consumed updates leave the queue and
    /// the task joins durable `pending_tasks`.
    TaskFormed { task: SweepTask },
    /// A sweep query was issued. Replay only restores qid monotonicity —
    /// the message itself may or may not have survived the crash; the
    /// re-seeded sweep supersedes it either way.
    QuerySent { qid: u64 },
    /// A hop's answer was folded in, with how many queued concurrent
    /// updates were compensated. Replay ignores it (the sweep re-runs);
    /// it exists for WAL-volume accounting and post-mortem traces.
    HopDone { qid: u64, comps: u64 },
    /// A sweep finished: every per-view finalized delta, applied
    /// atomically. The *only* record that moves durable state forward.
    TaskCommit { at: Time, applies: Vec<ViewApply> },
    /// A policy-cadence drain flush installed view `view`'s accumulated
    /// batch.
    Flush { view: ViewId, at: Time },
}

impl WalRecord for MvWalRecord {
    fn wal_bytes(&self) -> usize {
        const HDR: usize = 16; // record tag + timestamp/qid slot
        HDR + match self {
            MvWalRecord::UpdateQueued { update, .. } => 16 + update.delta.size_bytes(),
            MvWalRecord::TaskFormed { task } => {
                32 + task.delta.size_bytes() + 24 * task.consumed.len() + 8 * task.views.len()
            }
            MvWalRecord::QuerySent { .. } => 0,
            // 8 bytes per compensated concurrent update (its queue ref).
            MvWalRecord::HopDone { comps, .. } => 8 + 8 * (*comps as usize),
            MvWalRecord::TaskCommit { applies, .. } => applies
                .iter()
                .map(|a| 16 + a.delta.size_bytes() + 24 * a.consumed.len())
                .sum::<usize>(),
            MvWalRecord::Flush { .. } => 8,
        }
    }
}

/// What one recovery (or the accumulated total of several) replayed and
/// re-seeded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Completed crash-recovery cycles.
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub wal_records_replayed: u64,
    /// Modeled WAL bytes replayed across all recoveries.
    pub wal_bytes_replayed: u64,
    /// Sweep tasks found durably pending after replay — aborted in-flight
    /// work plus never-started backlog, all re-seeded from scratch.
    pub sweeps_reseeded: u64,
    /// Answers dropped because their qid predates the recovery floor
    /// (responses to queries a dead incarnation sent).
    pub stale_answers_dropped: u64,
}

/// Durability state: the store plus the bookkeeping around it.
struct DurableState {
    cfg: DurabilityConfig,
    store: DurableStore<MvCheckpoint, MvWalRecord>,
    /// Commits since the last checkpoint (cadence counter).
    committed_since_ckpt: usize,
    /// Answers with `qid <` this floor are responses to a dead
    /// incarnation's queries; they are dropped, not errors.
    stale_floor: u64,
    recovery: RecoveryStats,
}

/// The multi-view maintenance scheduler: owns the registry, the update
/// queue, and the shared-sweep state machine. Speaks the same
/// `SweepQuery`/`SweepAnswer` protocol as single-view SWEEP, so the
/// unmodified `dw_source::DataSource` serves it.
pub struct MaintenanceScheduler {
    core: EngineCore,
    registry: ViewRegistry,
    mode: SchedulerMode,
    opts: EngineOptions,
    pending_tasks: VecDeque<SweepTask>,
    active: Option<ActiveSweep>,
    record_snapshots: bool,
    durable: Option<Box<DurableState>>,
}

impl MaintenanceScheduler {
    /// New scheduler over a selection-free, identity-projection base
    /// chain, with default options (no batching).
    pub fn new(base: ViewDef, mode: SchedulerMode) -> Result<Self, MvError> {
        Self::with_options(base, mode, EngineOptions::default())
    }

    /// New scheduler with explicit engine options. Only
    /// [`EngineOptions::batch`] (shared mode only) and
    /// [`EngineOptions::pushdown`] are read here; the SWEEP/Nested-SWEEP
    /// knobs are inert for the scheduler.
    pub fn with_options(
        base: ViewDef,
        mode: SchedulerMode,
        opts: EngineOptions,
    ) -> Result<Self, MvError> {
        opts.validate()?;
        let registry = ViewRegistry::new(base.clone())?;
        let labels = match mode {
            SchedulerMode::Shared => SHARED_LABELS,
            SchedulerMode::Naive => NAIVE_LABELS,
        };
        Ok(MaintenanceScheduler {
            core: EngineCore::new(base, labels),
            registry,
            mode,
            opts,
            pending_tasks: VecDeque::new(),
            active: None,
            record_snapshots: true,
            durable: None,
        })
    }

    /// The configured mode.
    pub fn mode(&self) -> SchedulerMode {
        self.mode
    }

    /// The configured engine options.
    pub fn options(&self) -> EngineOptions {
        self.opts
    }

    /// Register a view. `initial` must be the view's correct current
    /// contents — at start-up the span evaluation of the initial base
    /// relations; mid-run, call at a quiescent point
    /// ([`MaintenanceScheduler::is_quiescent`]) with the span evaluation
    /// of the sources' current state. The view participates in every
    /// sweep started after registration.
    pub fn register(&mut self, spec: &ViewSpec, initial: Bag) -> Result<ViewId, MvError> {
        let id = self.registry.register(spec, initial)?;
        self.registry.runtime_mut(id)?.record_snapshots = self.record_snapshots;
        Ok(id)
    }

    /// Register a derived view over an already-registered parent. The
    /// initial contents are evaluated from the parent's current bag, so
    /// (like [`MaintenanceScheduler::register`]) call at a quiescent
    /// point. Derived views are maintained by the install cascade — they
    /// never join sweeps and never cost source messages.
    pub fn register_derived(&mut self, spec: &DerivedSpec) -> Result<ViewId, MvError> {
        let id = self.registry.register_derived(spec)?;
        self.registry.runtime_mut(id)?.record_snapshots = self.record_snapshots;
        Ok(id)
    }

    /// Register a batch of derived specs in dependency order (the
    /// registry topologically sorts and rejects cycles and unknown
    /// parents deterministically).
    pub fn register_derived_many(&mut self, specs: &[DerivedSpec]) -> Result<Vec<ViewId>, MvError> {
        let ids = self.registry.register_derived_many(specs)?;
        for &id in &ids {
            self.registry.runtime_mut(id)?.record_snapshots = self.record_snapshots;
        }
        Ok(ids)
    }

    /// Deregister a view. Fails with [`MvError::ViewBusy`] while a sweep
    /// feeding the view is in flight or queued — drain first.
    pub fn deregister(&mut self, id: ViewId) -> Result<(), MvError> {
        let busy = self
            .active
            .as_ref()
            .is_some_and(|a| a.task.views.contains(&id))
            || self.pending_tasks.iter().any(|t| t.views.contains(&id));
        if busy {
            return Err(MvError::ViewBusy {
                name: self.registry.name(id)?.to_string(),
            });
        }
        self.registry.deregister(id)
    }

    /// Read access to the registry (per-view bags, metrics, logs).
    pub fn views(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Aggregate scheduler metrics. `installs` stays zero here — install
    /// counts are per view in the registry.
    pub fn metrics(&self) -> &PolicyMetrics {
        &self.core.metrics
    }

    /// No sweep in flight, no queued work. Policy-pending batches are
    /// flushed the moment this becomes true, so quiescent ⇒ installed.
    pub fn is_quiescent(&self) -> bool {
        self.active.is_none() && self.pending_tasks.is_empty() && self.core.queue.is_empty()
    }

    /// Toggle per-install view snapshots in the install logs (needed by
    /// the consistency checker; costly for big runs).
    pub fn set_record_snapshots(&mut self, record: bool) {
        self.record_snapshots = record;
        for rt in self.registry.runtimes_mut() {
            rt.record_snapshots = record;
        }
    }

    /// Attach an install publisher (e.g. a `dw-serve` snapshot store's
    /// sink): every committed install of every current and future view
    /// is announced through it, in install order, keyed by the view's
    /// registry slot — and update arrivals are forwarded as delivery
    /// notices so the consumer can account staleness. Crash recovery
    /// replays committed installs through the same handle with their
    /// original epochs; consumers deduplicate on `(view, epoch)`.
    pub fn set_install_publisher(&mut self, p: dw_engine::SharedInstallPublisher) {
        self.registry.set_install_publisher(p);
    }

    /// Attach an observability recorder: `mv.sweep`/`mv.hop` spans plus
    /// `mv.shared_queries`/`mv.naive_queries`/`mv.compensations`
    /// counters. Per-view staleness histograms live in the registry's
    /// [`PolicyMetrics`].
    pub fn set_observer(&mut self, obs: Obs) {
        self.core.set_observer(obs);
    }

    /// Turn on durable checkpoints + sweep WAL. Call at setup, before
    /// traffic: the initial checkpoint captures the current state, and a
    /// sweep in flight at enable time would be invisible to it. From here
    /// on [`MaintenanceScheduler::crash_and_recover`] can rebuild the
    /// scheduler after a state crash.
    pub fn enable_durability(&mut self, cfg: DurabilityConfig) {
        debug_assert!(
            self.active.is_none(),
            "enable durability at a point with no sweep in flight"
        );
        let snap = self.snapshot();
        let mut st = Box::new(DurableState {
            cfg,
            store: DurableStore::new(),
            committed_since_ckpt: 0,
            stale_floor: 0,
            recovery: RecoveryStats::default(),
        });
        st.store.checkpoint(snap);
        self.durable = Some(st);
    }

    /// Is crash recovery armed?
    pub fn durability_enabled(&self) -> bool {
        self.durable.is_some()
    }

    /// Durable-store write statistics (`None` until durability is
    /// enabled).
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.durable.as_ref().map(|d| d.store.stats())
    }

    /// Accumulated recovery statistics (zeros until durability is
    /// enabled or no crash has happened).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.durable
            .as_ref()
            .map(|d| d.recovery)
            .unwrap_or_default()
    }

    /// A warehouse *state crash*: every volatile structure — queue,
    /// pending tasks, the in-flight sweep, view contents, counters — is
    /// lost; only the durable store survives. Rebuild from the last
    /// checkpoint, replay the WAL (committed sweeps re-apply from their
    /// logged deltas; the in-flight sweep is still durably pending),
    /// fence the dead incarnation (answer floor at the replayed qid
    /// high-water mark, query epoch bumped so sources drop re-delivered
    /// stragglers), persist a fresh checkpoint, and resume by re-seeding
    /// whatever is pending. Idempotent: recovering twice at the same
    /// point replays a WAL the first recovery already truncated to empty.
    ///
    /// No-op (returning default stats) when durability is disabled —
    /// that configuration models an amnesia crash, which this scheduler
    /// does not survive alone.
    pub fn crash_and_recover(
        &mut self,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<RecoveryStats, MvError> {
        if self.durable.is_none() {
            return Ok(RecoveryStats::default());
        }
        let (ckpt, wal_bytes, wal_records) = {
            let d = self.durable.as_ref().expect("checked above");
            let ckpt = d
                .store
                .checkpoint_ref()
                .expect("durability always holds a checkpoint")
                .clone();
            (ckpt, d.store.wal_bytes() as u64, d.store.wal().to_vec())
        };
        // Volatile state dies with the crash; the checkpoint image
        // replaces it wholesale.
        self.active = None;
        self.core.queue = ckpt.queue;
        self.core.metrics = ckpt.metrics;
        self.core.epoch = ckpt.epoch;
        self.core.restore_next_qid(ckpt.next_qid);
        self.pending_tasks = ckpt.pending_tasks;
        self.registry.restore_slots(ckpt.slots);
        // Roll the WAL forward.
        let mut replayed = 0u64;
        for rec in &wal_records {
            replayed += 1;
            match rec {
                MvWalRecord::UpdateQueued { update, at } => {
                    self.core.queue.push(update.clone(), *at);
                }
                MvWalRecord::TaskFormed { task } => {
                    let ids: Vec<UpdateId> = task.consumed.iter().map(|&(id, _)| id).collect();
                    self.core.queue.remove_ids(&ids);
                    self.pending_tasks.push_back(task.clone());
                }
                MvWalRecord::QuerySent { qid } => {
                    self.core.restore_next_qid(qid + 1);
                }
                MvWalRecord::HopDone { qid, comps: _ } => {
                    // Redundant with the QuerySent record, but a hop
                    // completion also proves the qid existed — keep the
                    // floor right even if a QuerySent were ever elided.
                    self.core.restore_next_qid(qid + 1);
                }
                MvWalRecord::TaskCommit { at, applies } => {
                    // Derived children are deliberately absent from the
                    // record: the cascade recomputes them deterministically
                    // from the checkpointed state, so replay re-derives
                    // exactly the installs the dead incarnation made.
                    for a in applies {
                        self.registry
                            .apply_with_cascade(a.view, &a.delta, &a.consumed, *at)?;
                    }
                    if let Some(a) = applies.first() {
                        self.core.record_batch(a.consumed.len());
                    }
                    self.pending_tasks.pop_front();
                }
                MvWalRecord::Flush { view, at } => {
                    self.registry.flush_with_cascade(*view, *at)?;
                }
            }
        }
        // Fence the dead incarnation, then persist the recovered image
        // (which also truncates the replayed WAL — recovery is
        // re-runnable).
        self.core.bump_epoch();
        let floor = self.core.next_qid();
        let reseeded = self.pending_tasks.len() as u64;
        let snap = self.snapshot();
        let d = self.durable.as_mut().expect("checked above");
        d.stale_floor = d.stale_floor.max(floor);
        d.committed_since_ckpt = 0;
        d.store.checkpoint(snap);
        let this_recovery = RecoveryStats {
            recoveries: 1,
            wal_records_replayed: replayed,
            wal_bytes_replayed: wal_bytes,
            sweeps_reseeded: reseeded,
            stale_answers_dropped: 0,
        };
        d.recovery.recoveries += 1;
        d.recovery.wal_records_replayed += replayed;
        d.recovery.wal_bytes_replayed += wal_bytes;
        d.recovery.sweeps_reseeded += reseeded;
        self.core.obs.add("mv.recovery.replays", 1);
        self.core.obs.add("mv.recovery.wal_records", replayed);
        self.core.obs.add("mv.recovery.wal_bytes", wal_bytes);
        self.core.obs.add("mv.recovery.sweeps_reseeded", reseeded);
        // Resume: re-seed the front pending task (fresh qids, new epoch).
        if self.active.is_none() {
            self.start_next(net)?;
        }
        Ok(this_recovery)
    }

    /// The full volatile image, cloned for a checkpoint. Only valid with
    /// no sweep in flight (an active sweep is represented durably by its
    /// still-pending task, not by leg state).
    fn snapshot(&self) -> MvCheckpoint {
        debug_assert!(self.active.is_none());
        MvCheckpoint {
            epoch: self.core.epoch,
            next_qid: self.core.next_qid(),
            queue: self.core.queue.clone(),
            pending_tasks: self.pending_tasks.clone(),
            slots: self.registry.snapshot_slots(),
            metrics: self.core.metrics.clone(),
        }
    }

    /// Append a WAL record (no-op when durability is off).
    fn wal(&mut self, rec: MvWalRecord) {
        if let Some(d) = self.durable.as_mut() {
            d.store.append(rec);
        }
    }

    /// Handle one warehouse delivery.
    pub fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), MvError> {
        dispatch(self, delivery, net)
    }

    /// Pull work until a sweep is in flight or everything has drained.
    fn start_next(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), MvError> {
        debug_assert!(self.active.is_none());
        loop {
            if let Some(task) = self.pending_tasks.pop_front() {
                if self.begin_task(net, task)? {
                    return Ok(());
                }
                continue; // completed inline (no queries needed)
            }
            let Some(PendingUpdate { update, arrived_at }) = self.core.queue.pop() else {
                // Fully drained: install policy-pending batches.
                let now = net.now();
                if self.durable.is_some() {
                    for id in self.registry.ids() {
                        if self.registry.runtime(id)?.has_pending() {
                            self.wal(MvWalRecord::Flush { view: id, at: now });
                        }
                    }
                }
                self.registry.flush_all_with_cascade(now)?;
                return Ok(());
            };
            let j = update.id.source;
            let affected = self.registry.affected_by(j);
            if affected.is_empty() {
                continue; // no registered view references R_j
            }
            match self.mode {
                SchedulerMode::Shared => {
                    let mut lo = j;
                    let mut hi = j;
                    for &v in &affected {
                        let (vlo, vhi) = self.registry.span(v)?;
                        lo = lo.min(vlo);
                        hi = hi.max(vhi);
                    }
                    // Cross-update batching: fold up to batch−1 further
                    // queued updates from the same source into this sweep.
                    let mut delta = update.delta.clone();
                    let mut consumed = vec![(update.id, arrived_at)];
                    let extra = self.opts.batch_width() - 1;
                    if extra > 0 {
                        let (folded, infos) = self.core.fold_same_source(j, extra);
                        delta.merge(&folded);
                        consumed.extend(infos);
                    }
                    let task = SweepTask {
                        consumed,
                        j,
                        delta,
                        lo,
                        hi,
                        views: affected,
                    };
                    if self.durable.is_some() {
                        self.wal(MvWalRecord::TaskFormed { task: task.clone() });
                    }
                    self.pending_tasks.push_back(task);
                }
                SchedulerMode::Naive => {
                    for v in affected {
                        let (lo, hi) = self.registry.span(v)?;
                        let task = SweepTask {
                            consumed: vec![(update.id, arrived_at)],
                            j,
                            delta: update.delta.clone(),
                            lo,
                            hi,
                            views: vec![v],
                        };
                        if self.durable.is_some() {
                            self.wal(MvWalRecord::TaskFormed { task: task.clone() });
                        }
                        self.pending_tasks.push_back(task);
                    }
                }
            }
        }
    }

    /// Seed both legs, snapshot span-endpoint views, fire the first
    /// queries. Returns `false` when the task completed without any
    /// queries (single-relation span).
    fn begin_task(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        task: SweepTask,
    ) -> Result<bool, MvError> {
        let j = task.j;
        self.core.batch = task.consumed.len() as u32;
        if self.opts.pushdown {
            self.core.push_preds = self.derive_push_preds(&task)?;
        }
        self.core.begin_sweep(net.now());
        self.core
            .obs
            .observe("mv.fanout_views", task.views.len() as u64);
        let mut left_seed = PartialDelta::seed(&self.core.view, j, &task.delta)?;
        // Seed tuples failing every task view's σ over R_j die at every
        // view's finalize; drop them here so they never ride a query.
        if let Some(pred) = self.core.push_pred(j) {
            left_seed.bag = left_seed.bag.filter(|t| pred.eval(t));
        }
        let right_seed = PartialDelta {
            lo: j,
            hi: j,
            bag: support(&left_seed.bag),
        };
        let mut active = ActiveSweep {
            left: LegSlot::Done(left_seed.clone()),
            right: LegSlot::Done(right_seed.clone()),
            left_snaps: Vec::new(),
            right_snaps: Vec::new(),
            task,
        };
        snapshot(&self.registry, &mut active, j, JoinSide::Left, &left_seed)?;
        snapshot(&self.registry, &mut active, j, JoinSide::Right, &right_seed)?;
        let first_qid = self.core.next_qid();
        if j > active.task.lo {
            active.left = LegSlot::Running(Leg::launch(
                &mut self.core,
                net,
                left_seed,
                j - 1,
                JoinSide::Left,
            ));
        }
        if j < active.task.hi {
            active.right = LegSlot::Running(Leg::launch(
                &mut self.core,
                net,
                right_seed,
                j + 1,
                JoinSide::Right,
            ));
        }
        if self.durable.is_some() {
            for qid in first_qid..self.core.next_qid() {
                self.wal(MvWalRecord::QuerySent { qid });
            }
        }
        if matches!(
            (&active.left, &active.right),
            (LegSlot::Done(_), LegSlot::Done(_))
        ) {
            self.finish_task(net, active)?;
            return Ok(false);
        }
        self.active = Some(active);
        Ok(true)
    }

    fn answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        qid: u64,
        partial: PartialDelta,
    ) -> Result<(), MvError> {
        if let Some(d) = self.durable.as_mut() {
            if qid < d.stale_floor {
                // An answer to a query a dead incarnation sent. The
                // recovered scheduler superseded that sweep; silently
                // absorbing the straggler is the idempotent move.
                d.recovery.stale_answers_dropped += 1;
                self.core.obs.add("mv.recovery.stale_answers_dropped", 1);
                return Ok(());
            }
        }
        let Some(mut active) = self.active.take() else {
            return Err(MvError::Warehouse(
                dw_warehouse::WarehouseError::UnknownQuery { qid },
            ));
        };
        let use_left = matches!(&active.left, LegSlot::Running(l) if l.qid == qid);
        let use_right = matches!(&active.right, LegSlot::Running(r) if r.qid == qid);
        if !use_left && !use_right {
            self.active = Some(active);
            return Err(MvError::Warehouse(
                dw_warehouse::WarehouseError::UnknownQuery { qid },
            ));
        }
        let slot = if use_left {
            &mut active.left
        } else {
            &mut active.right
        };
        let LegSlot::Running(mut leg) = std::mem::replace(slot, LegSlot::Done(partial.clone()))
        else {
            unreachable!()
        };
        self.core.end_hop(leg.hop, net.now());
        leg.dv = partial;
        let (k, side) = (leg.j, leg.side);
        let temp = leg.temp.clone();
        let comps_before = self.core.metrics.local_compensations;
        self.core.compensate(&mut leg.dv, &temp, k, side)?;
        if self.durable.is_some() {
            let comps = self.core.metrics.local_compensations - comps_before;
            self.wal(MvWalRecord::HopDone { qid, comps });
        }
        // Views whose span ends exactly at this hop peel off the shared
        // partial *after* this hop's compensation.
        snapshot(&self.registry, &mut active, k, side, &leg.dv)?;
        let next = match side {
            JoinSide::Left if k > active.task.lo => Some(k - 1),
            JoinSide::Left => None,
            JoinSide::Right if k < active.task.hi => Some(k + 1),
            JoinSide::Right => None,
        };
        let slot = if use_left {
            &mut active.left
        } else {
            &mut active.right
        };
        match next {
            Some(nj) => {
                let next_qid = self.core.next_qid();
                leg.advance(&mut self.core, net, nj, side);
                if self.durable.is_some() {
                    self.wal(MvWalRecord::QuerySent { qid: next_qid });
                }
                *slot = LegSlot::Running(leg);
            }
            None => *slot = LegSlot::Done(leg.dv),
        }
        if matches!(
            (&active.left, &active.right),
            (LegSlot::Done(_), LegSlot::Done(_))
        ) {
            self.finish_task(net, active)?;
            return self.start_next(net);
        }
        self.active = Some(active);
        Ok(())
    }

    /// Both legs done: merge each view's snapshots on the pivot columns,
    /// apply its σ/residual/Π, and install per its cadence.
    fn finish_task(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        active: ActiveSweep,
    ) -> Result<(), MvError> {
        let now = net.now();
        let task = active.task;
        let mut applies = Vec::with_capacity(task.views.len());
        for &v in &task.views {
            let left = active
                .left_snaps
                .iter()
                .find(|(id, _)| *id == v)
                .map(|(_, p)| p)
                .expect("left leg visited every affected span start");
            let right = active
                .right_snaps
                .iter()
                .find(|(id, _)| *id == v)
                .map(|(_, p)| p)
                .expect("right leg visited every affected span end");
            let merged = merge_pivot(&self.core.view, task.j, left, right);
            let delta = finalize_for_view(&self.registry.runtime(v)?.local, &merged)?;
            applies.push((v, delta));
        }
        // One atomic commit record carrying every per-view delta: replay
        // either re-applies the whole sweep or none of it, and only a
        // committed task leaves durable `pending_tasks`.
        if self.durable.is_some() {
            let logged = applies
                .iter()
                .map(|(v, delta)| ViewApply {
                    view: *v,
                    delta: delta.clone(),
                    consumed: task.consumed.clone(),
                })
                .collect();
            self.wal(MvWalRecord::TaskCommit {
                at: now,
                applies: logged,
            });
        }
        for (v, delta) in &applies {
            self.registry
                .apply_with_cascade(*v, delta, &task.consumed, now)?;
        }
        self.core.record_batch(task.consumed.len());
        self.core.end_sweep(net.now());
        self.core.batch = 1;
        self.core.push_preds.clear();
        // Checkpoint cadence: every `checkpoint_every` commits, replace
        // the durable image and truncate the log. Safe here — the sweep
        // just finished, so no in-flight state exists to miss.
        let due = match self.durable.as_mut() {
            Some(d) => {
                d.committed_since_ckpt += 1;
                d.committed_since_ckpt >= d.cfg.cadence()
            }
            None => false,
        };
        if due {
            let snap = self.snapshot();
            let d = self.durable.as_mut().expect("due implies enabled");
            d.committed_since_ckpt = 0;
            d.store.checkpoint(snap);
        }
        Ok(())
    }

    /// Derive the σ pushed to each source for `task`: for chain position
    /// `k`, the union (OR) of the task views' relation-local selections
    /// at `k`, taken over the views whose span contains `k`. A view with
    /// no selection there contributes `True`, which collapses the union
    /// to "no filter" (`None`) — pushing a vacuous predicate would only
    /// fatten the query. With a single affected view this degenerates to
    /// exactly that view's own σ.
    ///
    /// Soundness: a source tuple dropped by the union fails *every*
    /// affected view's σ over that relation, so [`finalize_for_view`]
    /// would have filtered each of its join extensions anyway — the
    /// pushed filter only changes what travels, never what installs.
    fn derive_push_preds(&self, task: &SweepTask) -> Result<Vec<Option<Predicate>>, MvError> {
        let mut preds: Vec<Option<Predicate>> = vec![None; self.core.n()];
        for (k, slot) in preds.iter_mut().enumerate() {
            if k < task.lo || k > task.hi {
                continue;
            }
            let mut disjuncts = Vec::new();
            let mut any_true = false;
            for &v in &task.views {
                let (lo, hi) = self.registry.span(v)?;
                if k < lo || k > hi {
                    continue;
                }
                let sel = self.registry.local_def(v)?.local_select(k - lo);
                if sel == &Predicate::True {
                    any_true = true;
                    break;
                }
                disjuncts.push(sel.clone());
            }
            if any_true || disjuncts.is_empty() {
                continue;
            }
            *slot = Some(if disjuncts.len() == 1 {
                disjuncts.pop().expect("len checked")
            } else {
                Predicate::Or(disjuncts)
            });
        }
        Ok(preds)
    }
}

impl SweepPolicy for MaintenanceScheduler {
    type Err = MvError;

    fn name(&self) -> &'static str {
        self.mode.name()
    }

    fn core(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn note_update(&mut self, u: &SourceUpdate, at: Time) -> Result<(), MvError> {
        // Journal the arrival before it enters the volatile queue: an
        // update the WAL knows about can never be lost to a crash.
        if self.durable.is_some() {
            self.wal(MvWalRecord::UpdateQueued {
                update: u.clone(),
                at,
            });
        }
        // Delivery footprint includes derived descendants: a source
        // update logically reaches them (the serve layer's staleness
        // ledger needs their delivery entries), even though only base
        // views join the sweep.
        for id in self.registry.affected_with_descendants(u.id.source) {
            self.registry.runtime_mut(id)?.metrics.updates_received += 1;
            if let Some(p) = self.registry.install_publisher() {
                p.lock()
                    .expect("install publisher poisoned")
                    .note_delivery(id.index(), u.id, at);
            }
        }
        Ok(())
    }

    fn kick(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), MvError> {
        if self.active.is_none() {
            self.start_next(net)?;
        }
        Ok(())
    }

    fn on_answer(
        &mut self,
        qid: u64,
        partial: PartialDelta,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), MvError> {
        self.answer(net, qid, partial)
    }
}

/// Record `partial` for every task view whose span endpoint is exactly
/// the hop that just completed. At the seed hop (`k == j`) this captures
/// views that need no leg on that side.
fn snapshot(
    registry: &ViewRegistry,
    active: &mut ActiveSweep,
    k: usize,
    side: JoinSide,
    partial: &PartialDelta,
) -> Result<(), MvError> {
    for &v in &active.task.views {
        let (lo, hi) = registry.span(v)?;
        match side {
            JoinSide::Left if lo == k => active.left_snaps.push((v, partial.clone())),
            JoinSide::Right if hi == k => active.right_snaps.push((v, partial.clone())),
            _ => {}
        }
    }
    Ok(())
}

/// Apply a view's own σ (per-relation selections, shifted to span-tuple
/// offsets), then its residual predicate and projection. Sound because
/// the shared sweep ran on unfiltered tuples and selection commutes
/// with join; subtraction (compensation) distributes over the filter.
pub(crate) fn finalize_for_view(
    local: &ViewDef,
    merged: &PartialDelta,
) -> Result<Bag, RelationalError> {
    let mut bag = merged.bag.clone();
    for r in 0..local.num_relations() {
        let sel = local.local_select(r);
        if sel != &Predicate::True {
            let shifted = sel.shifted(local.offset(r));
            bag = bag.filter(|t| shifted.eval(t));
        }
    }
    PartialDelta {
        lo: 0,
        hi: local.num_relations() - 1,
        bag,
    }
    .finalize(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_protocol::{node_source, source_node, WAREHOUSE_NODE};
    use dw_relational::{eval_view, tup, CmpOp, Schema, Value, ViewDefBuilder};
    use dw_simnet::Network;
    use dw_source::DataSource;
    use dw_workload::ViewPolicy;

    fn base3() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .relation(Schema::new("R3", ["E", "F"]).unwrap())
            .join("R1.B", "R2.C")
            .join("R2.D", "R3.E")
            .build()
            .unwrap()
    }

    fn initial3() -> Vec<Bag> {
        vec![
            Bag::from_tuples([tup![1, 3], tup![2, 3], tup![2, 5]]),
            Bag::from_tuples([tup![3, 5], tup![5, 7], tup![3, 7]]),
            Bag::from_tuples([tup![5, 9], tup![7, 9], tup![7, 11]]),
        ]
    }

    fn specs() -> Vec<ViewSpec> {
        vec![
            ViewSpec::full("full", 3),
            ViewSpec {
                lo: 0,
                hi: 1,
                selects: vec![(1, 1, CmpOp::Ge, Value::Int(6))],
                ..ViewSpec::full("left-pair", 3)
            },
            ViewSpec {
                lo: 1,
                hi: 2,
                projection: Some(vec!["R2.C".to_string(), "R3.F".to_string()]),
                ..ViewSpec::full("right-pair", 3)
            },
            ViewSpec {
                lo: 1,
                hi: 1,
                ..ViewSpec::full("solo", 3)
            },
        ]
    }

    /// Build sources over the base chain, register every spec with its
    /// correct initial contents, inject `txns`, run to quiescence, and
    /// return (scheduler, shadow relations after all txns).
    fn run(
        mode: SchedulerMode,
        view_specs: &[ViewSpec],
        txns: &[(Time, usize, Bag)],
    ) -> (MaintenanceScheduler, Vec<Bag>) {
        run_with_options(mode, EngineOptions::default(), view_specs, txns)
    }

    fn run_with_options(
        mode: SchedulerMode,
        opts: EngineOptions,
        view_specs: &[ViewSpec],
        txns: &[(Time, usize, Bag)],
    ) -> (MaintenanceScheduler, Vec<Bag>) {
        let base = base3();
        let initial = initial3();
        let mut sched = MaintenanceScheduler::with_options(base.clone(), mode, opts).unwrap();
        for spec in view_specs {
            let local = spec.compile(&base).unwrap();
            let refs: Vec<&Bag> = initial[spec.lo..=spec.hi].iter().collect();
            sched
                .register(spec, eval_view(&local, &refs).unwrap())
                .unwrap();
        }
        let mut net: Network<Message> = Network::new(7);
        let mut sources: Vec<DataSource> = (0..3)
            .map(|i| {
                let mut r = dw_relational::BaseRelation::new(base.schema(i).clone());
                r.apply_delta(&initial[i]).unwrap();
                DataSource::new(i, base.clone(), r)
            })
            .collect();
        let mut shadows = initial;
        for &(at, src, ref delta) in txns {
            shadows[src].merge(delta);
            net.inject(
                at,
                source_node(src),
                Message::ApplyTxn {
                    rel: src,
                    delta: delta.clone(),
                    global: None,
                },
            );
        }
        while let Some(d) = net.next() {
            if d.to == WAREHOUSE_NODE {
                sched.on_message(d, &mut net).unwrap();
            } else {
                sources[node_source(d.to)]
                    .handle(d.from, d.msg, &mut net)
                    .unwrap();
            }
        }
        assert!(sched.is_quiescent());
        (sched, shadows)
    }

    /// Dense, interfering transactions hitting every source.
    fn interfering_txns() -> Vec<(Time, usize, Bag)> {
        vec![
            (100, 1, Bag::from_tuples([tup![7, 9]])),
            (150, 0, Bag::from_tuples([tup![4, 7]])),
            (200, 2, Bag::from_tuples([tup![9, 13]])),
            (260, 1, Bag::from_pairs([(tup![3, 5], -1)])),
            (300, 0, Bag::from_tuples([tup![6, 3]])),
            (340, 2, Bag::from_pairs([(tup![5, 9], -1)])),
        ]
    }

    #[test]
    fn every_view_lands_on_ground_truth() {
        for mode in [SchedulerMode::Shared, SchedulerMode::Naive] {
            let (sched, shadows) = run(mode, &specs(), &interfering_txns());
            for (spec, id) in specs().iter().zip(sched.views().ids()) {
                let local = spec.compile(sched.views().base()).unwrap();
                let refs: Vec<&Bag> = shadows[spec.lo..=spec.hi].iter().collect();
                let truth = eval_view(&local, &refs).unwrap();
                assert_eq!(
                    sched.views().view_bag(id).unwrap(),
                    &truth,
                    "{mode:?} view '{}'",
                    spec.name
                );
                assert!(sched.views().view_bag(id).unwrap().all_positive());
            }
        }
    }

    #[test]
    fn shared_mode_message_cost_is_span_bounded() {
        // All four views are registered; the union span is the full
        // chain, so each update costs exactly 2(n−1) = 4 messages no
        // matter that four views were maintained.
        let (sched, _) = run(SchedulerMode::Shared, &specs(), &interfering_txns());
        let n_txns = interfering_txns().len() as u64;
        assert_eq!(sched.metrics().queries_sent, 2 * n_txns);
        assert_eq!(sched.metrics().answers_received, 2 * n_txns);
    }

    #[test]
    fn naive_mode_scales_with_view_count() {
        // Three full-span views: every update pays 3 × 2(n−1).
        let views: Vec<ViewSpec> = (0..3).map(|v| ViewSpec::full(format!("V{v}"), 3)).collect();
        let txns = interfering_txns();
        let (naive, _) = run(SchedulerMode::Naive, &views, &txns);
        let (shared, _) = run(SchedulerMode::Shared, &views, &txns);
        let n_txns = txns.len() as u64;
        assert_eq!(naive.metrics().queries_sent, 3 * 2 * n_txns);
        assert_eq!(shared.metrics().queries_sent, 2 * n_txns);
        // Same final contents either way.
        for id in shared.views().ids() {
            assert_eq!(
                shared.views().view_bag(id).unwrap(),
                naive.views().view_bag(id).unwrap()
            );
        }
    }

    #[test]
    fn single_relation_view_needs_no_queries() {
        let solo = vec![ViewSpec {
            lo: 1,
            hi: 1,
            ..ViewSpec::full("solo", 3)
        }];
        let txns = vec![(100u64, 1usize, Bag::from_tuples([tup![7, 9]]))];
        let (sched, shadows) = run(SchedulerMode::Shared, &solo, &txns);
        assert_eq!(sched.metrics().queries_sent, 0);
        let id = sched.views().ids()[0];
        assert_eq!(sched.views().view_bag(id).unwrap(), &shadows[1]);
        assert_eq!(sched.views().metrics(id).unwrap().installs, 1);
    }

    #[test]
    fn updates_outside_every_span_are_skipped() {
        let right_only = vec![ViewSpec {
            lo: 2,
            hi: 2,
            ..ViewSpec::full("r3-only", 3)
        }];
        let txns = vec![
            (100u64, 0usize, Bag::from_tuples([tup![4, 7]])),
            (200, 2, Bag::from_tuples([tup![9, 13]])),
        ];
        let (sched, shadows) = run(SchedulerMode::Shared, &right_only, &txns);
        assert_eq!(sched.metrics().updates_received, 2);
        assert_eq!(sched.metrics().queries_sent, 0);
        let id = sched.views().ids()[0];
        assert_eq!(sched.views().view_bag(id).unwrap(), &shadows[2]);
        // Only the in-span update was consumed.
        assert_eq!(sched.views().install_log(id).unwrap().len(), 1);
    }

    #[test]
    fn policy_cadence_batches_installs() {
        let mut batched = ViewSpec::full("batched", 3);
        batched.policy = ViewPolicy::Deferred { batch: 3 };
        let (sched, shadows) = run(
            SchedulerMode::Shared,
            &[batched.clone()],
            &interfering_txns(),
        );
        let id = sched.views().ids()[0];
        // 6 updates at batch 3 → exactly 2 installs, still ground truth.
        assert_eq!(sched.views().metrics(id).unwrap().installs, 2);
        let refs: Vec<&Bag> = shadows.iter().collect();
        let truth = eval_view(&batched.compile(sched.views().base()).unwrap(), &refs).unwrap();
        assert_eq!(sched.views().view_bag(id).unwrap(), &truth);
        // Every install consumed a whole delivery-order batch.
        let log = sched.views().install_log(id).unwrap();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|rec| rec.consumed.len() == 3));
    }

    #[test]
    fn cross_update_batching_folds_queued_same_source_updates() {
        // Three same-source updates injected back-to-back: with batch 4
        // the first sweep starts on ΔR2(1) while the other two queue; the
        // second sweep folds them both. Ground truth must still hold and
        // the query count must drop from 3·2(n−1)=12 to 2·2(n−1)... no —
        // to 2 sweeps × 4 = 8. Without batching it is 12.
        let views = vec![ViewSpec::full("full", 3)];
        let txns = vec![
            (100u64, 1usize, Bag::from_tuples([tup![7, 9]])),
            (101, 1, Bag::from_tuples([tup![9, 5]])),
            (102, 1, Bag::from_pairs([(tup![3, 7], -1)])),
        ];
        let (plain, _) = run(SchedulerMode::Shared, &views, &txns);
        assert_eq!(plain.metrics().queries_sent, 3 * 2);
        let (batched, shadows) = run_with_options(
            SchedulerMode::Shared,
            EngineOptions {
                batch: 4,
                ..Default::default()
            },
            &views,
            &txns,
        );
        // First sweep: 1 update; second sweep: the 2 queued folded.
        assert_eq!(batched.metrics().queries_sent, 2 * 2);
        let id = batched.views().ids()[0];
        let refs: Vec<&Bag> = shadows.iter().collect();
        let full = ViewSpec::full("full", 3)
            .compile(batched.views().base())
            .unwrap();
        assert_eq!(
            batched.views().view_bag(id).unwrap(),
            &eval_view(&full, &refs).unwrap()
        );
        // The folded install consumed both updates at once.
        let log = batched.views().install_log(id).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].consumed.len(), 1);
        assert_eq!(log[1].consumed.len(), 2);
    }

    #[test]
    fn derive_push_preds_unions_selects_and_collapses_true() {
        let base = base3();
        let initial = initial3();
        let mut sched = MaintenanceScheduler::with_options(
            base.clone(),
            SchedulerMode::Shared,
            EngineOptions {
                pushdown: true,
                ..Default::default()
            },
        )
        .unwrap();
        let left_pair = ViewSpec {
            lo: 0,
            hi: 1,
            selects: vec![(1, 1, CmpOp::Ge, Value::Int(6))],
            ..ViewSpec::full("lp", 3)
        };
        let mid = ViewSpec {
            lo: 1,
            hi: 2,
            selects: vec![(1, 0, CmpOp::Le, Value::Int(9))],
            ..ViewSpec::full("mid", 3)
        };
        let mut ids = Vec::new();
        for spec in [&left_pair, &mid] {
            let local = spec.compile(&base).unwrap();
            let refs: Vec<&Bag> = initial[spec.lo..=spec.hi].iter().collect();
            ids.push(
                sched
                    .register(spec, eval_view(&local, &refs).unwrap())
                    .unwrap(),
            );
        }
        let task = SweepTask {
            consumed: Vec::new(),
            j: 1,
            delta: Bag::new(),
            lo: 0,
            hi: 2,
            views: ids.clone(),
        };
        let preds = sched.derive_push_preds(&task).unwrap();
        // R1: only left-pair's span contains it and it has no σ there —
        // True collapses the union to "no filter". Same for R3 via mid.
        assert_eq!(preds[0], None);
        assert_eq!(preds[2], None);
        // R2: both views select on it → the union is their OR.
        match &preds[1] {
            Some(Predicate::Or(ds)) => assert_eq!(ds.len(), 2),
            other => panic!("expected Or of two selects, got {other:?}"),
        }

        // A single affected view degenerates to exactly its own σ.
        let solo_task = SweepTask {
            consumed: Vec::new(),
            j: 1,
            delta: Bag::new(),
            lo: 0,
            hi: 1,
            views: vec![ids[0]],
        };
        let solo = sched.derive_push_preds(&solo_task).unwrap();
        assert_eq!(
            solo[1].as_ref(),
            Some(sched.registry.local_def(ids[0]).unwrap().local_select(1)),
            "one affected view pushes exactly its own σ"
        );
    }

    #[test]
    fn pushdown_matches_unpushed_views_and_install_sequences() {
        for mode in [SchedulerMode::Shared, SchedulerMode::Naive] {
            let (plain, shadows) = run(mode, &specs(), &interfering_txns());
            let (pushed, _) = run_with_options(
                mode,
                EngineOptions {
                    pushdown: true,
                    ..Default::default()
                },
                &specs(),
                &interfering_txns(),
            );
            // Same message *count* — pushdown changes payloads, not the
            // number of hops.
            assert_eq!(plain.metrics().queries_sent, pushed.metrics().queries_sent);
            for (spec, id) in specs().iter().zip(plain.views().ids()) {
                assert_eq!(
                    plain.views().view_bag(id).unwrap(),
                    pushed.views().view_bag(id).unwrap(),
                    "{mode:?} view '{}' diverged under pushdown",
                    spec.name
                );
                // Ground truth still holds for the pushed run.
                let local = spec.compile(pushed.views().base()).unwrap();
                let refs: Vec<&Bag> = shadows[spec.lo..=spec.hi].iter().collect();
                assert_eq!(
                    pushed.views().view_bag(id).unwrap(),
                    &eval_view(&local, &refs).unwrap()
                );
                // Identical install sequences: same consumed ids, same
                // post-install snapshots, in the same order.
                let a = plain.views().install_log(id).unwrap();
                let b = pushed.views().install_log(id).unwrap();
                assert_eq!(a.len(), b.len());
                for (ra, rb) in a.iter().zip(b) {
                    assert_eq!(ra.consumed, rb.consumed);
                    assert_eq!(ra.view_after, rb.view_after);
                }
            }
        }
    }

    #[test]
    fn deregister_refused_mid_sweep_then_allowed_at_drain() {
        let base = base3();
        let initial = initial3();
        let mut sched = MaintenanceScheduler::new(base.clone(), SchedulerMode::Shared).unwrap();
        let spec = ViewSpec::full("full", 3);
        let refs: Vec<&Bag> = initial.iter().collect();
        let full = spec.compile(&base).unwrap();
        let id = sched
            .register(&spec, eval_view(&full, &refs).unwrap())
            .unwrap();
        let mut net: Network<Message> = Network::new(0);
        let mut sources: Vec<DataSource> = (0..3)
            .map(|i| {
                let mut r = dw_relational::BaseRelation::new(base.schema(i).clone());
                r.apply_delta(&initial[i]).unwrap();
                DataSource::new(i, base.clone(), r)
            })
            .collect();
        net.inject(
            100,
            source_node(1),
            Message::ApplyTxn {
                rel: 1,
                delta: Bag::from_tuples([tup![7, 9]]),
                global: None,
            },
        );
        let mut refused = false;
        while let Some(d) = net.next() {
            if d.to == WAREHOUSE_NODE {
                sched.on_message(d, &mut net).unwrap();
                if !sched.is_quiescent() && !refused {
                    assert!(matches!(
                        sched.deregister(id),
                        Err(MvError::ViewBusy { .. })
                    ));
                    refused = true;
                }
            } else {
                sources[node_source(d.to)]
                    .handle(d.from, d.msg, &mut net)
                    .unwrap();
            }
        }
        assert!(refused, "the sweep should have been observed in flight");
        assert!(sched.is_quiescent());
        sched.deregister(id).unwrap();
        assert!(sched.views().is_empty());
    }

    #[test]
    fn mid_run_registration_at_quiescent_point() {
        let base = base3();
        let initial = initial3();
        let mut sched = MaintenanceScheduler::new(base.clone(), SchedulerMode::Shared).unwrap();
        let full_spec = ViewSpec::full("early", 3);
        let full = full_spec.compile(&base).unwrap();
        let refs: Vec<&Bag> = initial.iter().collect();
        sched
            .register(&full_spec, eval_view(&full, &refs).unwrap())
            .unwrap();

        let mut net: Network<Message> = Network::new(3);
        let mut sources: Vec<DataSource> = (0..3)
            .map(|i| {
                let mut r = dw_relational::BaseRelation::new(base.schema(i).clone());
                r.apply_delta(&initial[i]).unwrap();
                DataSource::new(i, base.clone(), r)
            })
            .collect();
        let mut shadows = initial;

        // Phase 1: one update drains.
        let d1 = Bag::from_tuples([tup![7, 9]]);
        shadows[1].merge(&d1);
        net.inject(
            100,
            source_node(1),
            Message::ApplyTxn {
                rel: 1,
                delta: d1,
                global: None,
            },
        );
        while let Some(d) = net.next() {
            if d.to == WAREHOUSE_NODE {
                sched.on_message(d, &mut net).unwrap();
            } else {
                sources[node_source(d.to)]
                    .handle(d.from, d.msg, &mut net)
                    .unwrap();
            }
        }
        assert!(sched.is_quiescent());

        // Quiescent: register a late view seeded from the *current*
        // source state.
        let late_spec = ViewSpec {
            lo: 0,
            hi: 1,
            ..ViewSpec::full("late", 3)
        };
        let late = late_spec.compile(&base).unwrap();
        let refs: Vec<&Bag> = shadows[0..=1].iter().collect();
        let late_id = sched
            .register(&late_spec, eval_view(&late, &refs).unwrap())
            .unwrap();

        // Phase 2: more updates; the late view tracks them.
        let d2 = Bag::from_tuples([tup![6, 3]]);
        shadows[0].merge(&d2);
        net.inject(
            10_000,
            source_node(0),
            Message::ApplyTxn {
                rel: 0,
                delta: d2,
                global: None,
            },
        );
        while let Some(d) = net.next() {
            if d.to == WAREHOUSE_NODE {
                sched.on_message(d, &mut net).unwrap();
            } else {
                sources[node_source(d.to)]
                    .handle(d.from, d.msg, &mut net)
                    .unwrap();
            }
        }
        assert!(sched.is_quiescent());
        let refs: Vec<&Bag> = shadows[0..=1].iter().collect();
        assert_eq!(
            sched.views().view_bag(late_id).unwrap(),
            &eval_view(&late, &refs).unwrap()
        );
    }
}
