//! # dw-multiview
//!
//! The multi-view warehouse layer: many SPJ views, one sweep.
//!
//! The paper maintains a single view `V = Π σ (R_1 ⋈ … ⋈ R_n)`. A real
//! warehouse hosts **many** views over overlapping source sets, and
//! maintaining each one independently repeats the same source
//! round-trips. This crate adds:
//!
//! * a [`ViewRegistry`] — register/deregister SPJ views at runtime, each
//!   a contiguous span `[lo, hi]` of one shared base chain with its own
//!   selections, projection, and maintenance cadence
//!   ([`dw_workload::ViewPolicy`]: SWEEP, Nested-SWEEP-style batching,
//!   or deferred refresh);
//! * a [`MaintenanceScheduler`] — on arrival of `ΔR_j` it fans out to
//!   every registered view referencing `R_j` and executes a **shared
//!   sweep**: one two-leg pass over the *union* of the affected spans,
//!   issuing a single incremental query per source hop. Each view peels
//!   its own delta off the shared pass by snapshotting the in-flight
//!   partials at its span endpoints and merging them on the pivot
//!   relation's columns; per-view σ/Π are applied at the warehouse.
//!   The paper's on-line error correction (§4) runs once per hop on the
//!   shared partial, so every view inherits it.
//! * a **maintenance DAG** — derived views registered *over* other views
//!   ([`ViewRegistry::register_derived`], specs from
//!   [`dw_workload::DerivedSpec`]): σ/Π and Σ/group-by operators, stacks
//!   over stacks, cycles and unknown parents rejected deterministically
//!   at registration. Derived views are **never swept**: when a parent
//!   commits an install, the signed delta cascades to each child locally
//!   at the warehouse — children ascending by slot, depth-first, each
//!   child's install consuming the *same* update ids as the parent so
//!   the install logs stay 1:1 epoch-aligned. Identical sibling σ/Π
//!   derivations are evaluated once and shared ([`CascadeStats`] counts
//!   the memo hits); aggregate children each fold the delta into their
//!   own accumulators (group state mutates exactly once, so Σ work is
//!   never shared). The cascade rides the sharded engine's sequenced
//!   install releases and the durability WAL replay unchanged.
//!
//! The message-cost win (experiment E14): a shared sweep costs at most
//! `2(n−1)` messages per update **regardless of how many views**
//! reference `R_j`, where naive per-view maintenance costs `V·2(n−1)`.
//! The DAG extends it (experiment E20): a derived stack of any depth
//! adds **zero** source messages — the `2(n−1)` toll is paid exactly
//! once at the base layer.
//!
//! ## Why span snapshots are sound
//!
//! The base chain carries no selections and an identity projection, so
//! every query/answer and every compensation happens on *unfiltered*
//! join tuples. Selection commutes with join, and bag subtraction
//! distributes over filtering — so filtering the compensated span
//! partial per view yields exactly what a dedicated per-view SWEEP
//! would have computed. The FIFO channel argument (§5) is per-hop and
//! does not care which sweep the hop belongs to.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod registry;
mod scheduler;
mod sharded;

pub use dw_engine::{DurabilityConfig, EngineOptions};
pub use registry::{CascadeStats, MvError, ViewId, ViewRegistry};
pub use scheduler::{MaintenanceScheduler, RecoveryStats, SchedulerMode};
pub use sharded::{ShardStats, ShardedScheduler};
