//! The runtime view registry: per-view materialized state, policy
//! cadence, metrics and install logs, keyed by stable [`ViewId`]s.
//!
//! Since PR 9 the registry is a **maintenance DAG**, not a flat list:
//! a view may be *derived* — defined over another registered view by a
//! σ/Π or Σ/group-by operator ([`dw_workload::DerivedSpec`]). Derived
//! views are never swept: when a parent commits an install, the
//! committed delta is fed locally to each child (σ/Π: re-evaluate the
//! linear operator on the delta; Σ: fold the signed delta into the
//! child's [`dw_relational::AggregateState`]), the child installs, and
//! the cascade recurses — depth-first, children in ascending slot
//! order, so the install/publication order is deterministic and
//! documented. A derived view therefore costs **zero source messages**
//! per update; the paper's `2(n−1)` bill is paid once, at the base
//! layer. Identical σ/Π operators across sibling children are evaluated
//! once per parent delta and shared (the Mistry/Roy/Ramamritham common
//! subexpression idea, applied to the delta stream).

use dw_engine::{InstallEvent, SharedInstallPublisher};
use dw_protocol::UpdateId;
use dw_relational::{AggregateState, Bag, DeltaRelation, RelationalError, ViewDef};
use dw_simnet::Time;
use dw_warehouse::{InstallRecord, MaterializedView, PolicyMetrics, WarehouseError};
use dw_workload::{DerivedOp, DerivedSpec, ViewPolicy, ViewSpec};
use std::fmt;

/// Errors raised by the multi-view layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MvError {
    /// A relational failure (bad span, bad projection, arity mismatch…).
    Relational(RelationalError),
    /// A warehouse failure (negative install, unexpected message…).
    Warehouse(WarehouseError),
    /// The [`ViewId`] does not name a registered view.
    UnknownView {
        /// The offending id's slot index.
        index: usize,
    },
    /// The view cannot be deregistered while a sweep that feeds it is
    /// in flight.
    ViewBusy {
        /// The view's display name.
        name: String,
    },
    /// A derived spec names a parent that is not registered (and, for a
    /// batch registration, not registrable from the batch either).
    UnknownParent {
        /// The derived view's display name.
        name: String,
        /// The parent name it failed to resolve.
        parent: String,
    },
    /// A batch of derived specs contains a dependency cycle.
    DependencyCycle {
        /// Display name of the first spec (in given order) stuck on the
        /// cycle — deterministic, for actionable error messages.
        name: String,
    },
    /// The view still has derived children and cannot be deregistered.
    HasChildren {
        /// The view's display name.
        name: String,
        /// Display names of its live children, in slot order.
        children: Vec<String>,
    },
}

impl fmt::Display for MvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvError::Relational(e) => write!(f, "{e}"),
            MvError::Warehouse(e) => write!(f, "{e}"),
            MvError::UnknownView { index } => write!(f, "no registered view in slot {index}"),
            MvError::ViewBusy { name } => {
                write!(
                    f,
                    "view '{name}' has a sweep in flight; drain before deregistering"
                )
            }
            MvError::UnknownParent { name, parent } => {
                write!(f, "derived view '{name}' names unknown parent '{parent}'")
            }
            MvError::DependencyCycle { name } => {
                write!(
                    f,
                    "derived view '{name}' sits on a dependency cycle; \
                     the maintenance DAG must be acyclic"
                )
            }
            MvError::HasChildren { name, children } => {
                write!(
                    f,
                    "view '{name}' still feeds derived children [{}]; \
                     deregister them first",
                    children.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for MvError {}

impl From<RelationalError> for MvError {
    fn from(e: RelationalError) -> Self {
        MvError::Relational(e)
    }
}

impl From<WarehouseError> for MvError {
    fn from(e: WarehouseError) -> Self {
        MvError::Warehouse(e)
    }
}

/// Stable handle to a registered view. Ids are never reused within one
/// registry, so a dangling handle fails loudly instead of aliasing a
/// newer view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(usize);

impl ViewId {
    /// The underlying slot index (stable for the registry's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}", self.0)
    }
}

/// How a registered view is maintained: from base-source sweeps, or
/// locally from a parent view's committed install deltas.
#[derive(Clone)]
pub(crate) enum ViewKind {
    /// Maintained by SWEEP over the base chain span `[lo, hi]`.
    Base,
    /// Maintained by the cascade: fed its parent's install deltas.
    Derived {
        /// The parent's slot index.
        parent: usize,
        /// The operator over the parent's rows.
        op: DerivedOp,
        /// Incremental Σ state — `Some` iff the op is an aggregate. Rides
        /// checkpoint clones, so crash recovery restores group
        /// accumulators (and MIN/MAX support multisets) exactly.
        agg: Option<AggregateState>,
    },
}

/// Counters for the cascade machinery (registry-level, not
/// checkpointed: fault-free runs measure them; recovery replays rebuild
/// view state, not bookkeeping).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Child installs performed by the cascade (one per child per parent
    /// install, including empty deltas — epochs stay 1:1 aligned).
    pub child_installs: u64,
    /// Child deltas answered from a sibling's memoized σ/Π evaluation
    /// instead of re-evaluating the shared operator.
    pub shared_derivations: u64,
    /// σ/Π delta evaluations actually performed (the memo's miss count).
    pub linear_evals: u64,
}

/// A committed install: the delta that landed and the update ids it
/// consumed — exactly what the cascade feeds to derived children.
#[derive(Clone)]
pub(crate) struct Installed {
    pub(crate) delta: Bag,
    pub(crate) consumed: Vec<(UpdateId, Time)>,
}

/// Everything the scheduler keeps per registered view. `Clone` because
/// a durable checkpoint is a deep copy of every live runtime.
#[derive(Clone)]
pub(crate) struct ViewRuntime {
    pub(crate) name: String,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    /// The compiled span-local definition (selections, projection).
    pub(crate) local: ViewDef,
    pub(crate) policy: ViewPolicy,
    pub(crate) view: MaterializedView,
    pub(crate) metrics: PolicyMetrics,
    /// Install log in *global* chain coordinates (consumed ids carry the
    /// base-chain source index).
    pub(crate) install_log: Vec<InstallRecord>,
    /// Accumulated-but-uninstalled delta (NestedSweep / Deferred).
    pub(crate) pending_delta: Bag,
    pub(crate) pending_consumed: Vec<(UpdateId, Time)>,
    pub(crate) since_flush: usize,
    pub(crate) record_snapshots: bool,
    /// This runtime's registry slot index — the coordinate install
    /// events are published under.
    pub(crate) slot: usize,
    /// Base (swept) or derived (cascade-fed) maintenance.
    pub(crate) kind: ViewKind,
    /// Slot indices of direct derived children, ascending (registration
    /// order) — the documented cascade order.
    pub(crate) children: Vec<usize>,
    /// Width of this view's output rows (what children validate against).
    pub(crate) out_width: usize,
    /// Where committed installs are announced (e.g. a `dw-serve`
    /// snapshot store). Shared handle: checkpoint clones keep feeding
    /// the same consumer, which deduplicates recovery replays on
    /// `(slot, epoch)`.
    pub(crate) publisher: Option<SharedInstallPublisher>,
}

impl ViewRuntime {
    /// Fold one finalized sweep delta into the view according to the
    /// policy cadence. `consumed` lists the update(s) the sweep serviced
    /// (one entry unless cross-update batching folded several in), in
    /// per-source delivery order. Empty deltas are still *consumed* so
    /// install logs keep the per-source prefix discipline.
    ///
    /// Returns what was actually **installed** this call — `Some` with
    /// the committed delta and its consumed ids (the Sweep path installs
    /// immediately; a Deferred auto-flush installs the whole pending
    /// batch), `None` when the delta merely accumulated. The cascade
    /// feeds the returned delta, never the argument: children must see
    /// exactly what the parent committed.
    pub(crate) fn apply_delta(
        &mut self,
        delta: &Bag,
        consumed: &[(UpdateId, Time)],
        now: Time,
    ) -> Result<Option<Installed>, WarehouseError> {
        match self.policy {
            ViewPolicy::Sweep => {
                self.view.install(delta)?;
                self.metrics.installs += 1;
                for &(_, delivered_at) in consumed {
                    self.metrics.record_staleness(delivered_at, now);
                }
                self.install_log.push(InstallRecord {
                    at: now,
                    consumed: consumed.iter().map(|&(id, _)| id).collect(),
                    view_after: self.record_snapshots.then(|| self.view.bag().clone()),
                });
                self.publish_install(delta, consumed, now);
                Ok(Some(Installed {
                    delta: delta.clone(),
                    consumed: consumed.to_vec(),
                }))
            }
            ViewPolicy::NestedSweep | ViewPolicy::Deferred { .. } => {
                self.pending_delta.merge(delta);
                self.pending_consumed.extend_from_slice(consumed);
                self.since_flush += consumed.len();
                if let ViewPolicy::Deferred { batch } = self.policy {
                    if self.since_flush >= batch {
                        return self.flush(now);
                    }
                }
                Ok(None)
            }
        }
    }

    /// Is there an accumulated-but-uninstalled batch? (Durability logs a
    /// `Flush` WAL record only for views where the flush will install.)
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending_consumed.is_empty()
    }

    /// Install whatever has accumulated (no-op when nothing is pending).
    /// Returns the installed delta and consumed ids, like
    /// [`ViewRuntime::apply_delta`].
    pub(crate) fn flush(&mut self, now: Time) -> Result<Option<Installed>, WarehouseError> {
        if self.pending_consumed.is_empty() {
            return Ok(None);
        }
        self.view.install(&self.pending_delta)?;
        self.metrics.installs += 1;
        for &(_, delivered) in &self.pending_consumed {
            self.metrics.record_staleness(delivered, now);
        }
        self.install_log.push(InstallRecord {
            at: now,
            consumed: self.pending_consumed.iter().map(|&(id, _)| id).collect(),
            view_after: self.record_snapshots.then(|| self.view.bag().clone()),
        });
        self.publish_install(&self.pending_delta, &self.pending_consumed, now);
        let installed = Installed {
            delta: std::mem::take(&mut self.pending_delta),
            consumed: std::mem::take(&mut self.pending_consumed),
        };
        self.since_flush = 0;
        Ok(Some(installed))
    }

    /// Announce the install just logged (no-op without a publisher). The
    /// epoch is the install-log length *after* the push — a 1-based
    /// install ordinal, with epoch 0 reserved for the registered initial
    /// contents — so a crash-recovery replay of the same install carries
    /// the same epoch and consumers can deduplicate.
    fn publish_install(&self, delta: &Bag, consumed: &[(UpdateId, Time)], now: Time) {
        if let Some(p) = &self.publisher {
            p.lock()
                .expect("install publisher poisoned")
                .publish(InstallEvent {
                    view_index: self.slot,
                    epoch: self.install_log.len() as u64,
                    at: now,
                    consumed: consumed.iter().map(|&(id, _)| id).collect(),
                    delta: std::sync::Arc::new(delta.clone()),
                });
        }
    }
}

/// The registry: a slab of registered views over one shared base chain.
///
/// Slots are never reused, so [`ViewId`]s stay unambiguous for the
/// registry's lifetime; a deregistered id fails with
/// [`MvError::UnknownView`].
pub struct ViewRegistry {
    base: ViewDef,
    slots: Vec<Option<ViewRuntime>>,
    /// Attached install publisher, propagated to every current and
    /// future runtime (and re-attached across checkpoint restores).
    publisher: Option<SharedInstallPublisher>,
    /// Cascade bookkeeping (child installs, shared σ/Π evaluations).
    stats: CascadeStats,
}

impl ViewRegistry {
    /// New empty registry over `base` — which must be selection-free
    /// with an identity projection (per-view σ/Π live in the specs).
    pub fn new(base: ViewDef) -> Result<ViewRegistry, MvError> {
        for k in 0..base.num_relations() {
            if base.local_select(k) != &dw_relational::Predicate::True {
                return Err(MvError::Relational(RelationalError::BadRange {
                    reason: format!(
                        "base chain relation {} carries a local selection; \
                         per-view selections belong in the ViewSpec",
                        base.schema(k).name()
                    ),
                }));
            }
        }
        if base.projection().len() != base.total_arity() {
            return Err(MvError::Relational(RelationalError::BadRange {
                reason: "base chain must keep the identity projection".to_string(),
            }));
        }
        Ok(ViewRegistry {
            base,
            slots: Vec::new(),
            publisher: None,
            stats: CascadeStats::default(),
        })
    }

    /// The shared base chain.
    pub fn base(&self) -> &ViewDef {
        &self.base
    }

    /// Register a view. `initial` must be the view's correct current
    /// contents (at experiment start: the span evaluation of the initial
    /// base relations; at a mid-run quiescent point: the span evaluation
    /// of the sources' current state).
    pub fn register(&mut self, spec: &ViewSpec, initial: Bag) -> Result<ViewId, MvError> {
        let local = spec.compile(&self.base)?;
        let out_width = local.projection().len();
        let view = MaterializedView::new(initial)?;
        let id = ViewId(self.slots.len());
        self.slots.push(Some(ViewRuntime {
            name: spec.name.clone(),
            lo: spec.lo,
            hi: spec.hi,
            local,
            policy: spec.policy,
            view,
            metrics: PolicyMetrics::default(),
            install_log: Vec::new(),
            pending_delta: Bag::new(),
            pending_consumed: Vec::new(),
            since_flush: 0,
            record_snapshots: true,
            slot: id.0,
            kind: ViewKind::Base,
            children: Vec::new(),
            out_width,
            publisher: self.publisher.clone(),
        }));
        Ok(id)
    }

    /// Register a derived view over an already-registered parent (base or
    /// derived — stacks compose). The initial contents are computed here,
    /// by evaluating the operator over the parent's *current* bag, so
    /// registration at any quiescent point is consistent by construction.
    ///
    /// The parent reference is resolved by name among live views; because
    /// a child can only name an existing view and ids are never reused,
    /// single registrations cannot create cycles — the batch form
    /// ([`ViewRegistry::register_derived_many`]) is where cycle rejection
    /// has teeth.
    pub fn register_derived(&mut self, spec: &DerivedSpec) -> Result<ViewId, MvError> {
        let parent_slot = self
            .resolve(&spec.parent)
            .ok_or_else(|| MvError::UnknownParent {
                name: spec.name.clone(),
                parent: spec.parent.clone(),
            })?
            .0;
        let (parent_bag, parent_width, lo, hi) = {
            let rt = self.slots[parent_slot].as_ref().expect("resolved slot");
            (rt.view.bag().clone(), rt.out_width, rt.lo, rt.hi)
        };
        spec.op.validate(parent_width)?;
        let initial = spec.op.eval(&parent_bag)?;
        let agg = match &spec.op {
            DerivedOp::Aggregate(aspec) => {
                let mut state = AggregateState::new(aspec.clone());
                state.apply(&DeltaRelation::from_bag(parent_bag))?;
                debug_assert_eq!(state.current(), initial);
                Some(state)
            }
            DerivedOp::Select { .. } => None,
        };
        let id = ViewId(self.slots.len());
        self.slots.push(Some(ViewRuntime {
            name: spec.name.clone(),
            lo,
            hi,
            // The span-local join definition is the parent's chain; the
            // derived operator lives in `kind`. Derived views are never
            // swept, so this is only carried for display/span accounting.
            local: self.slots[parent_slot]
                .as_ref()
                .expect("live")
                .local
                .clone(),
            // Derived views install at every parent install: the cascade
            // is the cadence, so the policy is pinned to Sweep.
            policy: ViewPolicy::Sweep,
            view: MaterializedView::new(initial)?,
            metrics: PolicyMetrics::default(),
            install_log: Vec::new(),
            pending_delta: Bag::new(),
            pending_consumed: Vec::new(),
            since_flush: 0,
            record_snapshots: true,
            slot: id.0,
            kind: ViewKind::Derived {
                parent: parent_slot,
                op: spec.op.clone(),
                agg,
            },
            children: Vec::new(),
            out_width: spec.op.output_width(parent_width),
            publisher: self.publisher.clone(),
        }));
        self.slots[parent_slot]
            .as_mut()
            .expect("live")
            .children
            .push(id.0);
        Ok(id)
    }

    /// Register a batch of derived specs, topologically: each pass
    /// registers every spec whose parent is already live, in given
    /// order, until the batch drains. A spec whose parent is neither
    /// live nor in the batch fails with [`MvError::UnknownParent`]; a
    /// batch where a pass makes no progress while specs remain (and all
    /// parents are batch-internal) is a cycle, reported deterministically
    /// as the first stuck spec in given order.
    pub fn register_derived_many(&mut self, specs: &[DerivedSpec]) -> Result<Vec<ViewId>, MvError> {
        let mut ids: Vec<Option<ViewId>> = vec![None; specs.len()];
        let mut remaining: Vec<usize> = (0..specs.len()).collect();
        while !remaining.is_empty() {
            let mut registered_this_pass = Vec::new();
            for &i in &remaining {
                if self.resolve(&specs[i].parent).is_some() {
                    ids[i] = Some(self.register_derived(&specs[i])?);
                    registered_this_pass.push(i);
                }
            }
            if registered_this_pass.is_empty() {
                let first = remaining[0];
                let batch_has_parent = remaining
                    .iter()
                    .any(|&j| specs[j].name == specs[first].parent);
                return Err(if batch_has_parent {
                    MvError::DependencyCycle {
                        name: specs[first].name.clone(),
                    }
                } else {
                    MvError::UnknownParent {
                        name: specs[first].name.clone(),
                        parent: specs[first].parent.clone(),
                    }
                });
            }
            remaining.retain(|i| !registered_this_pass.contains(i));
        }
        Ok(ids
            .into_iter()
            .map(|i| i.expect("all registered"))
            .collect())
    }

    /// Resolve a live view by display name (first match in slot order).
    pub fn resolve(&self, name: &str) -> Option<ViewId> {
        self.slots.iter().enumerate().find_map(|(i, s)| match s {
            Some(rt) if rt.name == name => Some(ViewId(i)),
            _ => None,
        })
    }

    /// Remove a view. The scheduler's wrapper refuses while the view has
    /// a sweep in flight; the bare registry removal refuses only while
    /// the view still feeds live derived children (deregister leaves
    /// first).
    pub fn deregister(&mut self, id: ViewId) -> Result<(), MvError> {
        let rt = self.runtime(id)?;
        let live_children: Vec<String> = rt
            .children
            .iter()
            .filter_map(|&c| self.slots[c].as_ref().map(|child| child.name.clone()))
            .collect();
        if !live_children.is_empty() {
            return Err(MvError::HasChildren {
                name: rt.name.clone(),
                children: live_children,
            });
        }
        let parent = match rt.kind {
            ViewKind::Derived { parent, .. } => Some(parent),
            ViewKind::Base => None,
        };
        self.slots[id.0] = None;
        if let Some(p) = parent {
            if let Some(prt) = self.slots[p].as_mut() {
                prt.children.retain(|&c| c != id.0);
            }
        }
        Ok(())
    }

    /// Live view ids, in registration order.
    pub fn ids(&self) -> Vec<ViewId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| ViewId(i)))
            .collect()
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live **base** views whose span contains base relation `j` — the
    /// views a source update's sweep must service. Derived views are
    /// excluded by construction: they are maintained by the cascade, not
    /// by sweeps, and must never contribute to sweep formation or the
    /// source-message bill.
    pub fn affected_by(&self, j: usize) -> Vec<ViewId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Some(rt) if matches!(rt.kind, ViewKind::Base) && rt.lo <= j && j <= rt.hi => {
                    Some(ViewId(i))
                }
                _ => None,
            })
            .collect()
    }

    /// [`ViewRegistry::affected_by`] plus the transitive derived
    /// descendants of every affected base view, deduplicated, ascending
    /// by slot. This is the *delivery* footprint of an update: an update
    /// that changes a parent logically reaches its children too (the
    /// serve layer's staleness ledger needs delivery entries for derived
    /// views, even though no source message is ever sent on their
    /// behalf).
    pub fn affected_with_descendants(&self, j: usize) -> Vec<ViewId> {
        let mut hit = vec![false; self.slots.len()];
        let mut stack: Vec<usize> = self.affected_by(j).iter().map(|id| id.0).collect();
        while let Some(slot) = stack.pop() {
            if std::mem::replace(&mut hit[slot], true) {
                continue;
            }
            if let Some(rt) = &self.slots[slot] {
                stack.extend(rt.children.iter().copied());
            }
        }
        hit.iter()
            .enumerate()
            .filter_map(|(i, &h)| h.then_some(ViewId(i)))
            .collect()
    }

    pub(crate) fn runtime(&self, id: ViewId) -> Result<&ViewRuntime, MvError> {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or(MvError::UnknownView { index: id.0 })
    }

    pub(crate) fn runtime_mut(&mut self, id: ViewId) -> Result<&mut ViewRuntime, MvError> {
        self.slots
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(MvError::UnknownView { index: id.0 })
    }

    pub(crate) fn runtimes_mut(&mut self) -> impl Iterator<Item = &mut ViewRuntime> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Apply a finalized sweep delta to `id` and, if it installed,
    /// cascade the committed delta through the view's derived
    /// descendants. Every install site in the schedulers routes through
    /// here so children can never be skipped.
    pub(crate) fn apply_with_cascade(
        &mut self,
        id: ViewId,
        delta: &Bag,
        consumed: &[(UpdateId, Time)],
        now: Time,
    ) -> Result<(), MvError> {
        if let Some(installed) = self.runtime_mut(id)?.apply_delta(delta, consumed, now)? {
            self.cascade_children(id.index(), &installed, now)?;
        }
        Ok(())
    }

    /// Flush `id`'s accumulated batch and cascade the installed delta.
    pub(crate) fn flush_with_cascade(&mut self, id: ViewId, now: Time) -> Result<(), MvError> {
        if let Some(installed) = self.runtime_mut(id)?.flush(now)? {
            self.cascade_children(id.index(), &installed, now)?;
        }
        Ok(())
    }

    /// Flush every live view (registration order), cascading each
    /// install. Derived views have nothing pending by construction
    /// (their cadence is the cascade itself), so this only ever installs
    /// at base views and recurses downward.
    pub(crate) fn flush_all_with_cascade(&mut self, now: Time) -> Result<(), MvError> {
        for id in self.ids() {
            self.flush_with_cascade(id, now)?;
        }
        Ok(())
    }

    /// Feed a committed parent install to every direct child — ascending
    /// slot order, depth-first recursion — installing each child's delta
    /// with the *same consumed ids* so child epochs stay 1:1 aligned
    /// with the parent's (empty deltas included). σ/Π children reuse a
    /// sibling's evaluation when the operators are identical; Σ children
    /// each fold the delta into their own [`AggregateState`] (group
    /// accumulators must mutate exactly once, so aggregate work is never
    /// shared).
    fn cascade_children(
        &mut self,
        parent_slot: usize,
        installed: &Installed,
        now: Time,
    ) -> Result<(), MvError> {
        let children = match &self.slots[parent_slot] {
            Some(rt) if !rt.children.is_empty() => rt.children.clone(),
            _ => return Ok(()),
        };
        let mut memo: Vec<(DerivedOp, Bag)> = Vec::new();
        for child_slot in children {
            let (child_delta, linear_hit) = {
                let rt = match self.slots[child_slot].as_mut() {
                    Some(rt) => rt,
                    None => continue, // child deregistered: nothing to feed
                };
                match &mut rt.kind {
                    ViewKind::Derived {
                        agg: Some(state), ..
                    } => (
                        state.apply(&DeltaRelation::from_bag(installed.delta.clone()))?,
                        None,
                    ),
                    ViewKind::Derived { op, agg: None, .. } => {
                        if let Some((_, shared)) = memo.iter().find(|(o, _)| o == op) {
                            (shared.clone(), Some(true))
                        } else {
                            let fresh = op.eval(&installed.delta)?;
                            memo.push((op.clone(), fresh.clone()));
                            (fresh, Some(false))
                        }
                    }
                    ViewKind::Base => unreachable!("base view listed as a derived child"),
                }
            };
            match linear_hit {
                Some(true) => self.stats.shared_derivations += 1,
                Some(false) => self.stats.linear_evals += 1,
                None => {}
            }
            self.stats.child_installs += 1;
            let child_installed = self.slots[child_slot]
                .as_mut()
                .expect("checked live above")
                .apply_delta(&child_delta, &installed.consumed, now)?;
            if let Some(inst) = child_installed {
                self.cascade_children(child_slot, &inst, now)?;
            }
        }
        Ok(())
    }

    /// Cascade counters accumulated so far.
    pub fn cascade_stats(&self) -> CascadeStats {
        self.stats
    }

    /// Is the view derived (cascade-fed) rather than swept?
    pub fn is_derived(&self, id: ViewId) -> Result<bool, MvError> {
        Ok(matches!(self.runtime(id)?.kind, ViewKind::Derived { .. }))
    }

    /// The view's parent in the maintenance DAG (`None` for base views).
    pub fn parent_of(&self, id: ViewId) -> Result<Option<ViewId>, MvError> {
        Ok(match self.runtime(id)?.kind {
            ViewKind::Derived { parent, .. } => Some(ViewId(parent)),
            ViewKind::Base => None,
        })
    }

    /// Live direct children, ascending slot order (the cascade order).
    pub fn children_of(&self, id: ViewId) -> Result<Vec<ViewId>, MvError> {
        Ok(self
            .runtime(id)?
            .children
            .iter()
            .filter(|&&c| self.slots[c].is_some())
            .map(|&c| ViewId(c))
            .collect())
    }

    /// The derived operator (`None` for base views).
    pub fn derived_op(&self, id: ViewId) -> Result<Option<&DerivedOp>, MvError> {
        Ok(match &self.runtime(id)?.kind {
            ViewKind::Derived { op, .. } => Some(op),
            ViewKind::Base => None,
        })
    }

    /// Width of the view's output rows.
    pub fn out_width(&self, id: ViewId) -> Result<usize, MvError> {
        Ok(self.runtime(id)?.out_width)
    }

    /// Deep copy of every slot — the registry half of a durable
    /// checkpoint. Slot *positions* are part of the image so restored
    /// [`ViewId`]s keep meaning.
    pub(crate) fn snapshot_slots(&self) -> Vec<Option<ViewRuntime>> {
        self.slots.clone()
    }

    /// Replace the live slots with a checkpoint image (crash recovery).
    /// The attached publisher survives the restore even when the
    /// checkpoint predates the attachment.
    pub(crate) fn restore_slots(&mut self, slots: Vec<Option<ViewRuntime>>) {
        self.slots = slots;
        if let Some(p) = self.publisher.clone() {
            for rt in self.runtimes_mut() {
                rt.publisher = Some(p.clone());
            }
        }
    }

    /// Attach an install publisher: every current and future runtime
    /// announces its committed installs (and crash-recovery replays of
    /// them) through this handle.
    pub(crate) fn set_install_publisher(&mut self, p: SharedInstallPublisher) {
        for rt in self.runtimes_mut() {
            rt.publisher = Some(p.clone());
        }
        self.publisher = Some(p);
    }

    /// The attached publisher handle, if any.
    pub(crate) fn install_publisher(&self) -> Option<&SharedInstallPublisher> {
        self.publisher.as_ref()
    }

    /// Display name of a view.
    pub fn name(&self, id: ViewId) -> Result<&str, MvError> {
        Ok(&self.runtime(id)?.name)
    }

    /// The `[lo, hi]` base-chain span of a view.
    pub fn span(&self, id: ViewId) -> Result<(usize, usize), MvError> {
        let rt = self.runtime(id)?;
        Ok((rt.lo, rt.hi))
    }

    /// The view's maintenance cadence.
    pub fn policy(&self, id: ViewId) -> Result<ViewPolicy, MvError> {
        Ok(self.runtime(id)?.policy)
    }

    /// The compiled span-local definition.
    pub fn local_def(&self, id: ViewId) -> Result<&ViewDef, MvError> {
        Ok(&self.runtime(id)?.local)
    }

    /// Current materialized contents.
    pub fn view_bag(&self, id: ViewId) -> Result<&Bag, MvError> {
        Ok(self.runtime(id)?.view.bag())
    }

    /// Per-view metrics (installs, staleness histogram, …).
    pub fn metrics(&self, id: ViewId) -> Result<&PolicyMetrics, MvError> {
        Ok(&self.runtime(id)?.metrics)
    }

    /// Per-view install log. Consumed [`UpdateId`]s are in *global*
    /// chain coordinates; shift `source` by `-lo` to replay against a
    /// span-local recorder.
    pub fn install_log(&self, id: ViewId) -> Result<&[InstallRecord], MvError> {
        Ok(&self.runtime(id)?.install_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::{tup, Schema, ViewDefBuilder};

    fn base3() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .relation(Schema::new("R3", ["E", "F"]).unwrap())
            .join("R1.B", "R2.C")
            .join("R2.D", "R3.E")
            .build()
            .unwrap()
    }

    #[test]
    fn ids_are_stable_across_deregistration() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let a = reg.register(&ViewSpec::full("A", 3), Bag::new()).unwrap();
        let b = reg.register(&ViewSpec::full("B", 3), Bag::new()).unwrap();
        reg.deregister(a).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.name(b).unwrap(), "B");
        assert!(matches!(reg.runtime(a), Err(MvError::UnknownView { .. })));
        // Slot is not reused.
        let c = reg.register(&ViewSpec::full("C", 3), Bag::new()).unwrap();
        assert_ne!(a.index(), c.index());
    }

    #[test]
    fn affected_by_filters_on_span() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let full = reg
            .register(&ViewSpec::full("full", 3), Bag::new())
            .unwrap();
        let left = reg
            .register(
                &ViewSpec {
                    lo: 0,
                    hi: 1,
                    ..ViewSpec::full("left", 3)
                },
                Bag::new(),
            )
            .unwrap();
        let right = reg
            .register(
                &ViewSpec {
                    lo: 2,
                    hi: 2,
                    ..ViewSpec::full("right", 3)
                },
                Bag::new(),
            )
            .unwrap();
        assert_eq!(reg.affected_by(0), vec![full, left]);
        assert_eq!(reg.affected_by(1), vec![full, left]);
        assert_eq!(reg.affected_by(2), vec![full, right]);
    }

    #[test]
    fn base_with_projection_rejected() {
        let projected = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .join("R1.B", "R2.C")
            .project(["R1.A"])
            .build()
            .unwrap();
        assert!(ViewRegistry::new(projected).is_err());
    }

    #[test]
    fn negative_initial_contents_rejected() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let bad = Bag::from_pairs([(tup![1, 2, 2, 3, 3, 4], -1)]);
        assert!(reg.register(&ViewSpec::full("neg", 3), bad).is_err());
    }

    use dw_relational::{AggFn, AggregateSpec, CmpOp, Value};

    fn seeded_base(reg: &mut ViewRegistry) -> ViewId {
        let initial = Bag::from_tuples([tup![1, 2, 2, 3, 3, 4], tup![5, 6, 6, 7, 7, 8]]);
        reg.register(&ViewSpec::full("base", 3), initial).unwrap()
    }

    fn hot_spec() -> DerivedSpec {
        DerivedSpec {
            name: "hot".into(),
            parent: "base".into(),
            op: DerivedOp::Select {
                selects: vec![(0, CmpOp::Ge, Value::Int(3))],
                projection: Some(vec![0, 5]),
            },
        }
    }

    fn counts_spec() -> DerivedSpec {
        DerivedSpec {
            name: "counts".into(),
            parent: "base".into(),
            op: DerivedOp::Aggregate(AggregateSpec {
                group_by: vec![0],
                aggs: vec![AggFn::CountRows],
            }),
        }
    }

    #[test]
    fn derived_initial_contents_evaluate_over_parent() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        seeded_base(&mut reg);
        let ids = reg
            .register_derived_many(&[hot_spec(), counts_spec()])
            .unwrap();
        assert_eq!(
            reg.view_bag(ids[0]).unwrap(),
            &Bag::from_tuples([tup![5, 8]])
        );
        assert_eq!(
            reg.view_bag(ids[1]).unwrap(),
            &Bag::from_tuples([tup![1, 1], tup![5, 1]])
        );
        assert!(reg.is_derived(ids[0]).unwrap());
        assert_eq!(reg.parent_of(ids[0]).unwrap(), reg.resolve("base"));
    }

    #[test]
    fn cascade_feeds_children_with_aligned_epochs() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let base = seeded_base(&mut reg);
        let ids = reg
            .register_derived_many(&[hot_spec(), counts_spec()])
            .unwrap();
        let delta = Bag::from_pairs([(tup![5, 6, 6, 7, 7, 8], -1), (tup![9, 2, 2, 3, 3, 4], 1)]);
        let upd = UpdateId { source: 0, seq: 0 };
        reg.apply_with_cascade(base, &delta, &[(upd, 10)], 20)
            .unwrap();
        // σ/Π child: linear, so its contents are eval over the new parent bag.
        assert_eq!(
            reg.view_bag(ids[0]).unwrap(),
            &Bag::from_tuples([tup![9, 4]])
        );
        // Σ child: group 5 retracted to zero rows, group 9 appears.
        assert_eq!(
            reg.view_bag(ids[1]).unwrap(),
            &Bag::from_tuples([tup![1, 1], tup![9, 1]])
        );
        // Epochs stay 1:1 aligned, children consume the same update ids.
        for &id in std::iter::once(&base).chain(ids.iter()) {
            let log = reg.install_log(id).unwrap();
            assert_eq!(log.len(), 1, "{}", reg.name(id).unwrap());
            assert_eq!(log[0].consumed, vec![upd]);
        }
        assert_eq!(reg.cascade_stats().child_installs, 2);
    }

    #[test]
    fn identical_sibling_selects_share_one_evaluation() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let base = seeded_base(&mut reg);
        let twin = DerivedSpec {
            name: "hot2".into(),
            ..hot_spec()
        };
        reg.register_derived_many(&[hot_spec(), twin]).unwrap();
        let delta = Bag::from_tuples([tup![7, 2, 2, 3, 3, 4]]);
        reg.apply_with_cascade(base, &delta, &[(UpdateId { source: 0, seq: 0 }, 5)], 9)
            .unwrap();
        let stats = reg.cascade_stats();
        assert_eq!(stats.linear_evals, 1, "first sibling evaluates");
        assert_eq!(stats.shared_derivations, 1, "second reuses the memo");
        assert_eq!(
            reg.view_bag(reg.resolve("hot").unwrap()).unwrap(),
            reg.view_bag(reg.resolve("hot2").unwrap()).unwrap()
        );
    }

    #[test]
    fn stacked_derivation_cascades_transitively() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let base = seeded_base(&mut reg);
        // counts over base, then a σ over counts (a view over a view).
        let over_counts = DerivedSpec {
            name: "busy".into(),
            parent: "counts".into(),
            op: DerivedOp::Select {
                selects: vec![(1, CmpOp::Ge, Value::Int(2))],
                projection: None,
            },
        };
        // Given out of order: the batch registration topo-sorts.
        let ids = reg
            .register_derived_many(&[over_counts, counts_spec()])
            .unwrap();
        let delta = Bag::from_tuples([tup![1, 6, 6, 7, 7, 8]]);
        reg.apply_with_cascade(base, &delta, &[(UpdateId { source: 1, seq: 0 }, 3)], 7)
            .unwrap();
        // Group 1 now has 2 rows, so it crosses the σ threshold.
        assert_eq!(
            reg.view_bag(ids[0]).unwrap(),
            &Bag::from_tuples([tup![1, 2]])
        );
        assert_eq!(reg.install_log(ids[0]).unwrap().len(), 1);
    }

    #[test]
    fn cycle_and_unknown_parent_rejected_deterministically() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        seeded_base(&mut reg);
        let a = DerivedSpec {
            name: "a".into(),
            parent: "b".into(),
            op: hot_spec().op,
        };
        let b = DerivedSpec {
            name: "b".into(),
            parent: "a".into(),
            op: hot_spec().op,
        };
        assert_eq!(
            reg.register_derived_many(&[a.clone(), b]),
            Err(MvError::DependencyCycle { name: "a".into() })
        );
        assert_eq!(
            reg.register_derived_many(&[a]),
            Err(MvError::UnknownParent {
                name: "a".into(),
                parent: "b".into(),
            })
        );
        assert!(matches!(
            reg.register_derived(&DerivedSpec {
                name: "self".into(),
                parent: "self".into(),
                op: hot_spec().op,
            }),
            Err(MvError::UnknownParent { .. })
        ));
    }

    #[test]
    fn deregister_refuses_while_children_live() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let base = seeded_base(&mut reg);
        let hot = reg.register_derived(&hot_spec()).unwrap();
        assert!(matches!(
            reg.deregister(base),
            Err(MvError::HasChildren { .. })
        ));
        reg.deregister(hot).unwrap();
        reg.deregister(base).unwrap();
        assert!(reg.is_empty());
    }

    #[test]
    fn affected_by_excludes_derived_views() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let base = seeded_base(&mut reg);
        let hot = reg.register_derived(&hot_spec()).unwrap();
        for j in 0..3 {
            assert_eq!(reg.affected_by(j), vec![base], "source {j}");
            assert_eq!(reg.affected_with_descendants(j), vec![base, hot]);
        }
    }
}
