//! The runtime view registry: per-view materialized state, policy
//! cadence, metrics and install logs, keyed by stable [`ViewId`]s.

use dw_engine::{InstallEvent, SharedInstallPublisher};
use dw_protocol::UpdateId;
use dw_relational::{Bag, RelationalError, ViewDef};
use dw_simnet::Time;
use dw_warehouse::{InstallRecord, MaterializedView, PolicyMetrics, WarehouseError};
use dw_workload::{ViewPolicy, ViewSpec};
use std::fmt;

/// Errors raised by the multi-view layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MvError {
    /// A relational failure (bad span, bad projection, arity mismatch…).
    Relational(RelationalError),
    /// A warehouse failure (negative install, unexpected message…).
    Warehouse(WarehouseError),
    /// The [`ViewId`] does not name a registered view.
    UnknownView {
        /// The offending id's slot index.
        index: usize,
    },
    /// The view cannot be deregistered while a sweep that feeds it is
    /// in flight.
    ViewBusy {
        /// The view's display name.
        name: String,
    },
}

impl fmt::Display for MvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvError::Relational(e) => write!(f, "{e}"),
            MvError::Warehouse(e) => write!(f, "{e}"),
            MvError::UnknownView { index } => write!(f, "no registered view in slot {index}"),
            MvError::ViewBusy { name } => {
                write!(
                    f,
                    "view '{name}' has a sweep in flight; drain before deregistering"
                )
            }
        }
    }
}

impl std::error::Error for MvError {}

impl From<RelationalError> for MvError {
    fn from(e: RelationalError) -> Self {
        MvError::Relational(e)
    }
}

impl From<WarehouseError> for MvError {
    fn from(e: WarehouseError) -> Self {
        MvError::Warehouse(e)
    }
}

/// Stable handle to a registered view. Ids are never reused within one
/// registry, so a dangling handle fails loudly instead of aliasing a
/// newer view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(usize);

impl ViewId {
    /// The underlying slot index (stable for the registry's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}", self.0)
    }
}

/// Everything the scheduler keeps per registered view. `Clone` because
/// a durable checkpoint is a deep copy of every live runtime.
#[derive(Clone)]
pub(crate) struct ViewRuntime {
    pub(crate) name: String,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    /// The compiled span-local definition (selections, projection).
    pub(crate) local: ViewDef,
    pub(crate) policy: ViewPolicy,
    pub(crate) view: MaterializedView,
    pub(crate) metrics: PolicyMetrics,
    /// Install log in *global* chain coordinates (consumed ids carry the
    /// base-chain source index).
    pub(crate) install_log: Vec<InstallRecord>,
    /// Accumulated-but-uninstalled delta (NestedSweep / Deferred).
    pub(crate) pending_delta: Bag,
    pub(crate) pending_consumed: Vec<(UpdateId, Time)>,
    pub(crate) since_flush: usize,
    pub(crate) record_snapshots: bool,
    /// This runtime's registry slot index — the coordinate install
    /// events are published under.
    pub(crate) slot: usize,
    /// Where committed installs are announced (e.g. a `dw-serve`
    /// snapshot store). Shared handle: checkpoint clones keep feeding
    /// the same consumer, which deduplicates recovery replays on
    /// `(slot, epoch)`.
    pub(crate) publisher: Option<SharedInstallPublisher>,
}

impl ViewRuntime {
    /// Fold one finalized sweep delta into the view according to the
    /// policy cadence. `consumed` lists the update(s) the sweep serviced
    /// (one entry unless cross-update batching folded several in), in
    /// per-source delivery order. Empty deltas are still *consumed* so
    /// install logs keep the per-source prefix discipline.
    pub(crate) fn apply_delta(
        &mut self,
        delta: &Bag,
        consumed: &[(UpdateId, Time)],
        now: Time,
    ) -> Result<(), WarehouseError> {
        match self.policy {
            ViewPolicy::Sweep => {
                self.view.install(delta)?;
                self.metrics.installs += 1;
                for &(_, delivered_at) in consumed {
                    self.metrics.record_staleness(delivered_at, now);
                }
                self.install_log.push(InstallRecord {
                    at: now,
                    consumed: consumed.iter().map(|&(id, _)| id).collect(),
                    view_after: self.record_snapshots.then(|| self.view.bag().clone()),
                });
                self.publish_install(delta, consumed, now);
            }
            ViewPolicy::NestedSweep | ViewPolicy::Deferred { .. } => {
                self.pending_delta.merge(delta);
                self.pending_consumed.extend_from_slice(consumed);
                self.since_flush += consumed.len();
                if let ViewPolicy::Deferred { batch } = self.policy {
                    if self.since_flush >= batch {
                        self.flush(now)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Is there an accumulated-but-uninstalled batch? (Durability logs a
    /// `Flush` WAL record only for views where the flush will install.)
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending_consumed.is_empty()
    }

    /// Install whatever has accumulated (no-op when nothing is pending).
    pub(crate) fn flush(&mut self, now: Time) -> Result<(), WarehouseError> {
        if self.pending_consumed.is_empty() {
            return Ok(());
        }
        self.view.install(&self.pending_delta)?;
        self.metrics.installs += 1;
        for &(_, delivered) in &self.pending_consumed {
            self.metrics.record_staleness(delivered, now);
        }
        self.install_log.push(InstallRecord {
            at: now,
            consumed: self.pending_consumed.iter().map(|&(id, _)| id).collect(),
            view_after: self.record_snapshots.then(|| self.view.bag().clone()),
        });
        self.publish_install(&self.pending_delta, &self.pending_consumed, now);
        self.pending_delta = Bag::new();
        self.pending_consumed.clear();
        self.since_flush = 0;
        Ok(())
    }

    /// Announce the install just logged (no-op without a publisher). The
    /// epoch is the install-log length *after* the push — a 1-based
    /// install ordinal, with epoch 0 reserved for the registered initial
    /// contents — so a crash-recovery replay of the same install carries
    /// the same epoch and consumers can deduplicate.
    fn publish_install(&self, delta: &Bag, consumed: &[(UpdateId, Time)], now: Time) {
        if let Some(p) = &self.publisher {
            p.lock()
                .expect("install publisher poisoned")
                .publish(InstallEvent {
                    view_index: self.slot,
                    epoch: self.install_log.len() as u64,
                    at: now,
                    consumed: consumed.iter().map(|&(id, _)| id).collect(),
                    delta: delta.clone(),
                });
        }
    }
}

/// The registry: a slab of registered views over one shared base chain.
///
/// Slots are never reused, so [`ViewId`]s stay unambiguous for the
/// registry's lifetime; a deregistered id fails with
/// [`MvError::UnknownView`].
pub struct ViewRegistry {
    base: ViewDef,
    slots: Vec<Option<ViewRuntime>>,
    /// Attached install publisher, propagated to every current and
    /// future runtime (and re-attached across checkpoint restores).
    publisher: Option<SharedInstallPublisher>,
}

impl ViewRegistry {
    /// New empty registry over `base` — which must be selection-free
    /// with an identity projection (per-view σ/Π live in the specs).
    pub fn new(base: ViewDef) -> Result<ViewRegistry, MvError> {
        for k in 0..base.num_relations() {
            if base.local_select(k) != &dw_relational::Predicate::True {
                return Err(MvError::Relational(RelationalError::BadRange {
                    reason: format!(
                        "base chain relation {} carries a local selection; \
                         per-view selections belong in the ViewSpec",
                        base.schema(k).name()
                    ),
                }));
            }
        }
        if base.projection().len() != base.total_arity() {
            return Err(MvError::Relational(RelationalError::BadRange {
                reason: "base chain must keep the identity projection".to_string(),
            }));
        }
        Ok(ViewRegistry {
            base,
            slots: Vec::new(),
            publisher: None,
        })
    }

    /// The shared base chain.
    pub fn base(&self) -> &ViewDef {
        &self.base
    }

    /// Register a view. `initial` must be the view's correct current
    /// contents (at experiment start: the span evaluation of the initial
    /// base relations; at a mid-run quiescent point: the span evaluation
    /// of the sources' current state).
    pub fn register(&mut self, spec: &ViewSpec, initial: Bag) -> Result<ViewId, MvError> {
        let local = spec.compile(&self.base)?;
        let view = MaterializedView::new(initial)?;
        let id = ViewId(self.slots.len());
        self.slots.push(Some(ViewRuntime {
            name: spec.name.clone(),
            lo: spec.lo,
            hi: spec.hi,
            local,
            policy: spec.policy,
            view,
            metrics: PolicyMetrics::default(),
            install_log: Vec::new(),
            pending_delta: Bag::new(),
            pending_consumed: Vec::new(),
            since_flush: 0,
            record_snapshots: true,
            slot: id.0,
            publisher: self.publisher.clone(),
        }));
        Ok(id)
    }

    /// Remove a view. The scheduler's wrapper refuses while the view has
    /// a sweep in flight; the bare registry removal always succeeds for
    /// a live id.
    pub fn deregister(&mut self, id: ViewId) -> Result<(), MvError> {
        let slot = self
            .slots
            .get_mut(id.0)
            .ok_or(MvError::UnknownView { index: id.0 })?;
        if slot.take().is_none() {
            return Err(MvError::UnknownView { index: id.0 });
        }
        Ok(())
    }

    /// Live view ids, in registration order.
    pub fn ids(&self) -> Vec<ViewId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| ViewId(i)))
            .collect()
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live views whose span contains base relation `j`.
    pub fn affected_by(&self, j: usize) -> Vec<ViewId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Some(rt) if rt.lo <= j && j <= rt.hi => Some(ViewId(i)),
                _ => None,
            })
            .collect()
    }

    pub(crate) fn runtime(&self, id: ViewId) -> Result<&ViewRuntime, MvError> {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or(MvError::UnknownView { index: id.0 })
    }

    pub(crate) fn runtime_mut(&mut self, id: ViewId) -> Result<&mut ViewRuntime, MvError> {
        self.slots
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(MvError::UnknownView { index: id.0 })
    }

    pub(crate) fn runtimes_mut(&mut self) -> impl Iterator<Item = &mut ViewRuntime> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Deep copy of every slot — the registry half of a durable
    /// checkpoint. Slot *positions* are part of the image so restored
    /// [`ViewId`]s keep meaning.
    pub(crate) fn snapshot_slots(&self) -> Vec<Option<ViewRuntime>> {
        self.slots.clone()
    }

    /// Replace the live slots with a checkpoint image (crash recovery).
    /// The attached publisher survives the restore even when the
    /// checkpoint predates the attachment.
    pub(crate) fn restore_slots(&mut self, slots: Vec<Option<ViewRuntime>>) {
        self.slots = slots;
        if let Some(p) = self.publisher.clone() {
            for rt in self.runtimes_mut() {
                rt.publisher = Some(p.clone());
            }
        }
    }

    /// Attach an install publisher: every current and future runtime
    /// announces its committed installs (and crash-recovery replays of
    /// them) through this handle.
    pub(crate) fn set_install_publisher(&mut self, p: SharedInstallPublisher) {
        for rt in self.runtimes_mut() {
            rt.publisher = Some(p.clone());
        }
        self.publisher = Some(p);
    }

    /// The attached publisher handle, if any.
    pub(crate) fn install_publisher(&self) -> Option<&SharedInstallPublisher> {
        self.publisher.as_ref()
    }

    /// Display name of a view.
    pub fn name(&self, id: ViewId) -> Result<&str, MvError> {
        Ok(&self.runtime(id)?.name)
    }

    /// The `[lo, hi]` base-chain span of a view.
    pub fn span(&self, id: ViewId) -> Result<(usize, usize), MvError> {
        let rt = self.runtime(id)?;
        Ok((rt.lo, rt.hi))
    }

    /// The view's maintenance cadence.
    pub fn policy(&self, id: ViewId) -> Result<ViewPolicy, MvError> {
        Ok(self.runtime(id)?.policy)
    }

    /// The compiled span-local definition.
    pub fn local_def(&self, id: ViewId) -> Result<&ViewDef, MvError> {
        Ok(&self.runtime(id)?.local)
    }

    /// Current materialized contents.
    pub fn view_bag(&self, id: ViewId) -> Result<&Bag, MvError> {
        Ok(self.runtime(id)?.view.bag())
    }

    /// Per-view metrics (installs, staleness histogram, …).
    pub fn metrics(&self, id: ViewId) -> Result<&PolicyMetrics, MvError> {
        Ok(&self.runtime(id)?.metrics)
    }

    /// Per-view install log. Consumed [`UpdateId`]s are in *global*
    /// chain coordinates; shift `source` by `-lo` to replay against a
    /// span-local recorder.
    pub fn install_log(&self, id: ViewId) -> Result<&[InstallRecord], MvError> {
        Ok(&self.runtime(id)?.install_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::{tup, Schema, ViewDefBuilder};

    fn base3() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .relation(Schema::new("R3", ["E", "F"]).unwrap())
            .join("R1.B", "R2.C")
            .join("R2.D", "R3.E")
            .build()
            .unwrap()
    }

    #[test]
    fn ids_are_stable_across_deregistration() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let a = reg.register(&ViewSpec::full("A", 3), Bag::new()).unwrap();
        let b = reg.register(&ViewSpec::full("B", 3), Bag::new()).unwrap();
        reg.deregister(a).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.name(b).unwrap(), "B");
        assert!(matches!(reg.runtime(a), Err(MvError::UnknownView { .. })));
        // Slot is not reused.
        let c = reg.register(&ViewSpec::full("C", 3), Bag::new()).unwrap();
        assert_ne!(a.index(), c.index());
    }

    #[test]
    fn affected_by_filters_on_span() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let full = reg
            .register(&ViewSpec::full("full", 3), Bag::new())
            .unwrap();
        let left = reg
            .register(
                &ViewSpec {
                    lo: 0,
                    hi: 1,
                    ..ViewSpec::full("left", 3)
                },
                Bag::new(),
            )
            .unwrap();
        let right = reg
            .register(
                &ViewSpec {
                    lo: 2,
                    hi: 2,
                    ..ViewSpec::full("right", 3)
                },
                Bag::new(),
            )
            .unwrap();
        assert_eq!(reg.affected_by(0), vec![full, left]);
        assert_eq!(reg.affected_by(1), vec![full, left]);
        assert_eq!(reg.affected_by(2), vec![full, right]);
    }

    #[test]
    fn base_with_projection_rejected() {
        let projected = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .join("R1.B", "R2.C")
            .project(["R1.A"])
            .build()
            .unwrap();
        assert!(ViewRegistry::new(projected).is_err());
    }

    #[test]
    fn negative_initial_contents_rejected() {
        let mut reg = ViewRegistry::new(base3()).unwrap();
        let bad = Bag::from_pairs([(tup![1, 2, 2, 3, 3, 4], -1)]);
        assert!(reg.register(&ViewSpec::full("neg", 3), bad).is_err());
    }
}
