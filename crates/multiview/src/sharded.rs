//! The sharded warehouse scheduler: S per-shard sweeps in flight at
//! once, one global install order.
//!
//! ## Partitioned concurrency, unchanged deltas
//!
//! A [`ShardMap`] bands every attribute *value* into one of `S` shards.
//! A tuple is **pure** in shard `s` when every one of its values lands
//! in `s`; pure tuples of different shards can never join (equality
//! joins compare values, and the bands are disjoint). That disjointness
//! is the whole concurrency argument: a sweep whose delta is pure in
//! shard `s` only ever meets shard-`s` tuples, so sweeps over *distinct*
//! shards touch disjoint data and may run concurrently without ever
//! seeing each other.
//!
//! Impure tuples (values straddling bands) break the argument, so the
//! scheduler tracks **shard groups** — a union-find over bands. Every
//! individually-impure resident tuple (in the initial data, or installed
//! later by an escalated sweep) unions the bands it straddles; a sweep
//! then runs per *group*, scoping its queries to the group's band mask
//! (sources answer from the matching slices plus the mixed slice, see
//! [`dw_relational::ShardedRelation`]). An update whose delta is not
//! pure in a single group **escalates** to a global sweep that runs
//! alone — the classic SWEEP, queue fence and all.
//!
//! ## One queue, full compensation
//!
//! All lanes share one [`EngineCore`] — one FIFO update queue, one qid
//! space, one metrics block. Every hop compensates against the *full*
//! queue exactly as the unsharded engine does: queued updates pure in a
//! foreign group join the lane's `TempView` to an empty error term
//! (disjoint bands), so the subtraction is a no-op for them and exact
//! for same-group interferers. The per-update install deltas are
//! therefore *identical* to the unsharded engine's — concurrency changes
//! when answers arrive, never what they add up to.
//!
//! ## One install order
//!
//! Lanes finish out of arrival order; installs must not. An
//! [`InstallSequencer`] ticket is issued for every update the moment it
//! arrives, and finished sweeps are buffered until every earlier ticket
//! has released — so the install order is arrival order, the same order
//! the unsharded scheduler installs in (the conformance suite holds the
//! two engines to byte equality on this).
//!
//! ## Shard-scoped crashes
//!
//! [`ShardedScheduler::crash_shard`] models one shard's sweep worker
//! dying: its in-flight lane is aborted, the outstanding qids are
//! poisoned (late answers are counted and dropped), and the *same* task
//! is re-seeded immediately with fresh qids. Other lanes never stop —
//! "surviving shards keep installing" is the recovery suite's claim.

use crate::registry::{MvError, ViewId, ViewRegistry};
use crate::scheduler::finalize_for_view;
use dw_engine::{
    dispatch, merge_pivot, support, EngineCore, EngineOptions, InstallSequencer, Leg, LegSlot,
    SequencedInstall, SpanLabels, SweepPolicy,
};
use dw_obs::Obs;
use dw_protocol::{Message, SourceUpdate, UpdateId};
use dw_relational::{Bag, DeltaClass, JoinSide, PartialDelta, ShardMap, ShardScope, ViewDef};
use dw_simnet::{Delivery, NetHandle, Time};
use dw_warehouse::PolicyMetrics;
use dw_workload::{DerivedSpec, ViewSpec};
use std::collections::{HashMap, HashSet};

/// The sharded scheduler's trace vocabulary.
const SHARD_LABELS: SpanLabels = SpanLabels {
    sweep: "shard.sweep",
    hop: "shard.hop",
    compensations: "shard.compensations",
    query_rows: None,
    comp_rows: None,
    query_counter: Some("shard.queries"),
};

/// Lane key of the escalated global sweep (never a valid shard root —
/// shard counts are capped at 64).
const GLOBAL: usize = usize::MAX;

/// Counters the sharded scheduler keeps on top of [`PolicyMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Updates that escalated to a global (unscoped, solo) sweep.
    pub escalations: u64,
    /// Updates serviced by a shard-scoped lane.
    pub shard_local: u64,
    /// Updates skipped because no registered view referenced their
    /// source (their sequencer slot released empty).
    pub skipped: u64,
    /// [`ShardedScheduler::crash_shard`] invocations (no-op ones
    /// included).
    pub shard_crashes: u64,
    /// Lanes aborted by a crash and re-seeded with fresh qids.
    pub sweeps_reseeded: u64,
    /// Answers to a crashed lane's poisoned qids, dropped on arrival.
    pub stale_answers_dropped: u64,
    /// Every lane completion: `(lane key, finish time)`. The key is the
    /// group root, or `usize::MAX` for the global lane. The recovery
    /// suite reads this to prove surviving shards kept sweeping through
    /// another shard's crash window.
    pub completions: Vec<(usize, Time)>,
    /// High-water mark of concurrently in-flight lanes.
    pub max_concurrent_lanes: usize,
}

/// One unit of lane work — the sharded analogue of the unsharded
/// scheduler's `SweepTask`, plus its sequencer ticket. Kept whole so a
/// shard crash can re-seed the identical task.
struct LaneTask {
    ticket: u64,
    consumed: Vec<(UpdateId, Time)>,
    j: usize,
    delta: Bag,
    lo: usize,
    hi: usize,
    views: Vec<ViewId>,
}

/// An in-flight per-group sweep: the task, the two legs, and the
/// per-view span-endpoint snapshots (same peeling as the shared sweep).
struct Lane {
    task: LaneTask,
    /// Query scope stamped on every hop: the group's band mask for a
    /// shard-local lane, `None` (full relations) for the global lane.
    scope: Option<ShardScope>,
    /// Band masks of the escalated delta's individually-impure tuples —
    /// installed residents that union their bands when the global lane
    /// finishes. Empty for shard-local lanes.
    escalate_masks: Vec<u64>,
    left: LegSlot,
    right: LegSlot,
    left_snaps: Vec<(ViewId, PartialDelta)>,
    right_snaps: Vec<(ViewId, PartialDelta)>,
}

/// What one queue scan decided to do (decisions are collected first,
/// executed after — the scan must not mutate the queue it walks).
enum Action {
    /// No registered view references the update's source: drop it and
    /// release its sequencer slot empty.
    Skip { id: UpdateId },
    /// Start a shard-local lane for group root `key`.
    Launch {
        update: SourceUpdate,
        at: Time,
        key: usize,
        mask: u64,
    },
    /// Start the global lane (queue head, nothing else in flight).
    Escalate {
        update: SourceUpdate,
        at: Time,
        masks: Vec<u64>,
    },
}

/// The sharded maintenance scheduler (see module docs). Speaks the same
/// `SweepQuery`/`SweepAnswer` protocol as every other engine adapter;
/// the only wire difference is the `scope` it stamps on queries.
pub struct ShardedScheduler {
    core: EngineCore,
    registry: ViewRegistry,
    map: ShardMap,
    /// Union-find parent vector over shard bands (roots are minimal —
    /// deterministic group naming).
    dsu: Vec<usize>,
    /// In-flight lanes, keyed by group root ([`GLOBAL`] for the
    /// escalated lane). At most one lane per key.
    lanes: HashMap<usize, Lane>,
    sequencer: InstallSequencer,
    /// Ticket issued at arrival for every update, claimed at launch.
    tickets: HashMap<UpdateId, u64>,
    /// In-flight qid → lane key.
    qid_routes: HashMap<u64, usize>,
    /// Qids of crash-aborted legs; their answers are dropped, counted.
    dead_qids: HashSet<u64>,
    stats: ShardStats,
    record_snapshots: bool,
}

impl ShardedScheduler {
    /// New sharded scheduler over a selection-free, identity-projection
    /// base chain, partitioned by `map`, with default engine options.
    pub fn new(base: ViewDef, map: ShardMap) -> Result<Self, MvError> {
        Self::with_options(base, map, EngineOptions::default())
    }

    /// New sharded scheduler with explicit options. Cross-update
    /// batching and σ pushdown are refused: batching folds queue entries
    /// a concurrent lane may need for compensation, and pushdown's
    /// predicate algebra has not been proven against scoped slices.
    pub fn with_options(
        base: ViewDef,
        map: ShardMap,
        opts: EngineOptions,
    ) -> Result<Self, MvError> {
        opts.validate()?;
        if opts.batch_width() > 1 {
            return Err(MvError::Warehouse(dw_warehouse::WarehouseError::Config {
                reason: format!(
                    "sharded scheduler does not support cross-update batching (batch={})",
                    opts.batch_width()
                ),
            }));
        }
        if opts.pushdown {
            return Err(MvError::Warehouse(dw_warehouse::WarehouseError::Config {
                reason: "sharded scheduler does not support predicate pushdown".into(),
            }));
        }
        let registry = ViewRegistry::new(base.clone())?;
        let dsu = (0..map.shards()).collect();
        Ok(ShardedScheduler {
            core: EngineCore::new(base, SHARD_LABELS),
            registry,
            map,
            dsu,
            lanes: HashMap::new(),
            sequencer: InstallSequencer::new(),
            tickets: HashMap::new(),
            qid_routes: HashMap::new(),
            dead_qids: HashSet::new(),
            stats: ShardStats::default(),
            record_snapshots: true,
        })
    }

    /// The partitioner.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Fold one base relation's *initial* contents into the shard
    /// groups: every individually-impure tuple unions the bands it
    /// straddles. Call once per relation before traffic starts —
    /// resident impure tuples a lane could join must already have
    /// collapsed their bands into one group, or scoped sweeps would
    /// wrongly run concurrently against shared rows.
    pub fn seed_groups(&mut self, initial: &Bag) {
        for (t, _) in initial.iter() {
            let mask = self.map.tuple_bands(t);
            if mask.count_ones() > 1 {
                self.union_mask(mask);
            }
        }
    }

    /// Register a view (same contract as the unsharded scheduler's
    /// `register`).
    pub fn register(&mut self, spec: &ViewSpec, initial: Bag) -> Result<ViewId, MvError> {
        let id = self.registry.register(spec, initial)?;
        self.registry.runtime_mut(id)?.record_snapshots = self.record_snapshots;
        Ok(id)
    }

    /// Register a derived view (same contract as the unsharded
    /// scheduler's `register_derived`): children are fed by the install
    /// cascade when the sequencer releases their parent's install.
    pub fn register_derived(&mut self, spec: &DerivedSpec) -> Result<ViewId, MvError> {
        let id = self.registry.register_derived(spec)?;
        self.registry.runtime_mut(id)?.record_snapshots = self.record_snapshots;
        Ok(id)
    }

    /// Register a batch of derived specs in dependency order.
    pub fn register_derived_many(&mut self, specs: &[DerivedSpec]) -> Result<Vec<ViewId>, MvError> {
        let ids = self.registry.register_derived_many(specs)?;
        for &id in &ids {
            self.registry.runtime_mut(id)?.record_snapshots = self.record_snapshots;
        }
        Ok(ids)
    }

    /// Deregister a view. Refused until fully drained — with concurrent
    /// lanes "a sweep that feeds it" is any in-flight or queued work.
    pub fn deregister(&mut self, id: ViewId) -> Result<(), MvError> {
        if !self.is_quiescent() {
            return Err(MvError::ViewBusy {
                name: self.registry.name(id)?.to_string(),
            });
        }
        self.registry.deregister(id)
    }

    /// Read access to the registry (per-view bags, metrics, logs).
    pub fn views(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Aggregate engine metrics (shared across all lanes).
    pub fn metrics(&self) -> &PolicyMetrics {
        &self.core.metrics
    }

    /// Sharding counters.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// No lane in flight, no queued update, every ticket released.
    pub fn is_quiescent(&self) -> bool {
        self.lanes.is_empty() && self.core.queue.is_empty() && self.sequencer.is_drained()
    }

    /// Lanes currently in flight.
    pub fn active_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The band mask of the group shard `s` currently belongs to.
    pub fn group_mask_of(&self, s: usize) -> u64 {
        self.group_mask(self.find(s))
    }

    /// Toggle per-install view snapshots (consistency checker on, big
    /// benchmark runs off).
    pub fn set_record_snapshots(&mut self, record: bool) {
        self.record_snapshots = record;
        for rt in self.registry.runtimes_mut() {
            rt.record_snapshots = record;
        }
    }

    /// Route traces/counters to a shared observer.
    pub fn set_observer(&mut self, obs: Obs) {
        self.core.set_observer(obs);
    }

    /// Attach an install publisher (same contract as the unsharded
    /// scheduler's `set_install_publisher`). Installs are announced when
    /// the sequencer releases them, so the published epoch stream is in
    /// install-ticket order even though lanes complete out of order.
    pub fn set_install_publisher(&mut self, p: dw_engine::SharedInstallPublisher) {
        self.registry.set_install_publisher(p);
    }

    /// Handle one delivery addressed to the warehouse.
    pub fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), MvError> {
        dispatch(self, delivery, net)
    }

    /// Crash shard `s`'s sweep worker: abort the lane of `s`'s group (or
    /// the global lane, which sweeps on every shard's behalf), poison
    /// its outstanding qids, and re-seed the identical task with fresh
    /// qids. Lanes of other groups are untouched. A crash with nothing
    /// in flight for `s` only counts the crash.
    pub fn crash_shard(
        &mut self,
        s: usize,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), MvError> {
        self.stats.shard_crashes += 1;
        self.core.obs.add("shard.crashes", 1);
        let root = self.find(s);
        let key = if self.lanes.contains_key(&root) {
            root
        } else if self.lanes.contains_key(&GLOBAL) {
            GLOBAL
        } else {
            return Ok(());
        };
        let lane = self.lanes.remove(&key).expect("key checked above");
        for slot in [&lane.left, &lane.right] {
            if let LegSlot::Running(leg) = slot {
                self.qid_routes.remove(&leg.qid);
                self.dead_qids.insert(leg.qid);
            }
        }
        self.stats.sweeps_reseeded += 1;
        self.core.obs.add("shard.sweeps_reseeded", 1);
        self.begin_lane(net, lane.task, key, lane.scope, lane.escalate_masks)
    }

    // ---- union-find over shard bands ------------------------------------

    fn find(&self, mut s: usize) -> usize {
        while self.dsu[s] != s {
            s = self.dsu[s];
        }
        s
    }

    /// Union every band set in `mask` into one group (rooted at the
    /// lowest band, so roots are deterministic).
    fn union_mask(&mut self, mask: u64) {
        let first = mask.trailing_zeros() as usize;
        let mut root = self.find(first);
        for b in (first + 1)..self.map.shards() {
            if mask & (1 << b) != 0 {
                let rb = self.find(b);
                if rb != root {
                    let (lo, hi) = (root.min(rb), root.max(rb));
                    self.dsu[hi] = lo;
                    root = lo;
                }
            }
        }
    }

    /// Band mask of the group rooted at `root`.
    fn group_mask(&self, root: usize) -> u64 {
        let mut mask = 0u64;
        for b in 0..self.map.shards() {
            if self.find(b) == root {
                mask |= 1 << b;
            }
        }
        mask
    }

    // ---- scheduling -----------------------------------------------------

    /// Walk the queue in arrival order and decide what may start now.
    /// Rules (the correctness core — see module docs):
    ///
    /// * while the global lane runs, nothing starts;
    /// * a pure update may start iff its group has no lane in flight and
    ///   none was launched earlier in this same scan (first-per-group
    ///   keeps same-group FIFO); a claimed group's update stays queued —
    ///   the in-flight lane compensates for it;
    /// * an escalating update is a **fence**: it may start only from the
    ///   effective queue head with nothing in flight (its global sweep
    ///   compensates against the whole queue, so every prior update must
    ///   still *be* in the queue), and nothing behind it may start
    ///   before it does.
    fn plan_scan(&self) -> Vec<Action> {
        if self.lanes.contains_key(&GLOBAL) {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let mut launched: HashSet<usize> = HashSet::new();
        let mut blocked_earlier = false;
        for pu in self.core.queue.iter() {
            let id = pu.update.id;
            if self.registry.affected_by(id.source).is_empty() {
                actions.push(Action::Skip { id });
                continue;
            }
            match self.map.classify_delta(&pu.update.delta) {
                DeltaClass::Escalate { impure_masks } => {
                    if self.lanes.is_empty() && launched.is_empty() && !blocked_earlier {
                        actions.push(Action::Escalate {
                            update: pu.update.clone(),
                            at: pu.arrived_at,
                            masks: impure_masks,
                        });
                    }
                    break; // fence: nothing behind an escalating update starts
                }
                class => {
                    // An empty delta is vacuously pure; route it through
                    // shard 0's lane so it still consumes its ticket the
                    // way the unsharded engine consumes the update.
                    let s = match class {
                        DeltaClass::Pure(s) => s,
                        _ => 0,
                    };
                    let key = self.find(s);
                    if self.lanes.contains_key(&key) || launched.contains(&key) {
                        blocked_earlier = true;
                        continue; // stays queued; the lane compensates
                    }
                    launched.insert(key);
                    actions.push(Action::Launch {
                        update: pu.update.clone(),
                        at: pu.arrived_at,
                        key,
                        mask: self.group_mask(key),
                    });
                }
            }
        }
        actions
    }

    /// Start everything the scan rules allow, then release sequenced
    /// installs. Loops because an inline-completing lane (single-relation
    /// span) frees its group for the next queued update immediately.
    fn pump(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), MvError> {
        loop {
            let actions = self.plan_scan();
            if actions.is_empty() {
                break;
            }
            for action in actions {
                match action {
                    Action::Skip { id } => {
                        self.core.queue.remove_ids(&[id]);
                        let ticket = self.tickets.remove(&id).expect("ticket issued at arrival");
                        self.sequencer.complete(ticket, None);
                        self.stats.skipped += 1;
                    }
                    Action::Launch {
                        update,
                        at,
                        key,
                        mask,
                    } => {
                        self.stats.shard_local += 1;
                        let scope = Some(ShardScope {
                            map: self.map.clone(),
                            mask,
                        });
                        self.launch_update(net, update, at, key, scope, Vec::new())?;
                    }
                    Action::Escalate { update, at, masks } => {
                        self.stats.escalations += 1;
                        self.core.obs.add("shard.escalations", 1);
                        self.launch_update(net, update, at, GLOBAL, None, masks)?;
                    }
                }
            }
        }
        self.drain_installs(net)
    }

    /// Remove `update` from the queue and start its lane.
    fn launch_update(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        update: SourceUpdate,
        at: Time,
        key: usize,
        scope: Option<ShardScope>,
        escalate_masks: Vec<u64>,
    ) -> Result<(), MvError> {
        // Out of the queue *before* any hop answer can compensate — a
        // sweep must never subtract its own delta.
        self.core.queue.remove_ids(&[update.id]);
        let j = update.id.source;
        let views = self.registry.affected_by(j);
        let (mut lo, mut hi) = (j, j);
        for &v in &views {
            let (vlo, vhi) = self.registry.span(v)?;
            lo = lo.min(vlo);
            hi = hi.max(vhi);
        }
        let ticket = self
            .tickets
            .remove(&update.id)
            .expect("ticket issued at arrival");
        let task = LaneTask {
            ticket,
            consumed: vec![(update.id, at)],
            j,
            delta: update.delta,
            lo,
            hi,
            views,
        };
        self.begin_lane(net, task, key, scope, escalate_masks)
    }

    /// Seed both legs, snapshot span-endpoint views, fire the first
    /// queries under the lane's scope. Also the crash-reseed path.
    fn begin_lane(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        task: LaneTask,
        key: usize,
        scope: Option<ShardScope>,
        escalate_masks: Vec<u64>,
    ) -> Result<(), MvError> {
        let j = task.j;
        self.core
            .obs
            .observe("mv.fanout_views", task.views.len() as u64);
        let left_seed = PartialDelta::seed(&self.core.view, j, &task.delta)?;
        let right_seed = PartialDelta {
            lo: j,
            hi: j,
            bag: support(&left_seed.bag),
        };
        let mut lane = Lane {
            task,
            scope,
            escalate_masks,
            left: LegSlot::Done(left_seed.clone()),
            right: LegSlot::Done(right_seed.clone()),
            left_snaps: Vec::new(),
            right_snaps: Vec::new(),
        };
        self.snapshot(&mut lane, j, JoinSide::Left, &left_seed)?;
        self.snapshot(&mut lane, j, JoinSide::Right, &right_seed)?;
        self.core.scope = lane.scope.clone();
        if j > lane.task.lo {
            let leg = Leg::launch(&mut self.core, net, left_seed, j - 1, JoinSide::Left);
            self.qid_routes.insert(leg.qid, key);
            lane.left = LegSlot::Running(leg);
        }
        if j < lane.task.hi {
            let leg = Leg::launch(&mut self.core, net, right_seed, j + 1, JoinSide::Right);
            self.qid_routes.insert(leg.qid, key);
            lane.right = LegSlot::Running(leg);
        }
        self.core.scope = None;
        if matches!(
            (&lane.left, &lane.right),
            (LegSlot::Done(_), LegSlot::Done(_))
        ) {
            return self.finish_lane(net, lane);
        }
        self.lanes.insert(key, lane);
        self.stats.max_concurrent_lanes = self.stats.max_concurrent_lanes.max(self.lanes.len());
        Ok(())
    }

    /// Record `partial` for every lane view whose span endpoint is the
    /// hop that just completed (same peeling as the shared sweep).
    fn snapshot(
        &self,
        lane: &mut Lane,
        k: usize,
        side: JoinSide,
        partial: &PartialDelta,
    ) -> Result<(), MvError> {
        for &v in &lane.task.views {
            let (lo, hi) = self.registry.span(v)?;
            match side {
                JoinSide::Left if lo == k => lane.left_snaps.push((v, partial.clone())),
                JoinSide::Right if hi == k => lane.right_snaps.push((v, partial.clone())),
                _ => {}
            }
        }
        Ok(())
    }

    fn answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        qid: u64,
        partial: PartialDelta,
    ) -> Result<(), MvError> {
        if self.dead_qids.remove(&qid) {
            self.stats.stale_answers_dropped += 1;
            self.core.obs.add("shard.stale_answers_dropped", 1);
            return Ok(());
        }
        let Some(key) = self.qid_routes.remove(&qid) else {
            return Err(MvError::Warehouse(
                dw_warehouse::WarehouseError::UnknownQuery { qid },
            ));
        };
        let mut lane = self.lanes.remove(&key).expect("routed qid has a lane");
        let use_left = matches!(&lane.left, LegSlot::Running(l) if l.qid == qid);
        let slot = if use_left {
            &mut lane.left
        } else {
            &mut lane.right
        };
        let LegSlot::Running(mut leg) = std::mem::replace(slot, LegSlot::Done(partial.clone()))
        else {
            unreachable!("routed qid matches a running leg");
        };
        self.core.end_hop(leg.hop, net.now());
        leg.dv = partial;
        let (k, side) = (leg.j, leg.side);
        let temp = leg.temp.clone();
        // Full-queue compensation: foreign-group queued deltas join the
        // scoped TempView to nothing, same-group ones subtract exactly.
        self.core.compensate(&mut leg.dv, &temp, k, side)?;
        self.snapshot(&mut lane, k, side, &leg.dv)?;
        let next = match side {
            JoinSide::Left if k > lane.task.lo => Some(k - 1),
            JoinSide::Left => None,
            JoinSide::Right if k < lane.task.hi => Some(k + 1),
            JoinSide::Right => None,
        };
        let slot = if use_left {
            &mut lane.left
        } else {
            &mut lane.right
        };
        match next {
            Some(nj) => {
                self.core.scope = lane.scope.clone();
                leg.advance(&mut self.core, net, nj, side);
                self.core.scope = None;
                self.qid_routes.insert(leg.qid, key);
                *slot = LegSlot::Running(leg);
            }
            None => *slot = LegSlot::Done(leg.dv),
        }
        if matches!(
            (&lane.left, &lane.right),
            (LegSlot::Done(_), LegSlot::Done(_))
        ) {
            self.finish_lane(net, lane)?;
            return self.pump(net);
        }
        self.lanes.insert(key, lane);
        self.drain_installs(net)
    }

    /// Both legs done: peel each view's delta off the lane's snapshots
    /// and hand the sequencer the install payload. Nothing installs here
    /// — the sequencer releases it when every earlier ticket has.
    fn finish_lane(&mut self, net: &mut dyn NetHandle<Message>, lane: Lane) -> Result<(), MvError> {
        let now = net.now();
        let task = lane.task;
        let mut deltas = Vec::with_capacity(task.views.len());
        for &v in &task.views {
            let left = lane
                .left_snaps
                .iter()
                .find(|(id, _)| *id == v)
                .map(|(_, p)| p)
                .expect("left leg visited every affected span start");
            let right = lane
                .right_snaps
                .iter()
                .find(|(id, _)| *id == v)
                .map(|(_, p)| p)
                .expect("right leg visited every affected span end");
            let merged = merge_pivot(&self.core.view, task.j, left, right);
            let delta = finalize_for_view(&self.registry.runtime(v)?.local, &merged)?;
            deltas.push((v.index(), delta));
        }
        // An escalated delta's impure tuples are residents now: their
        // bands share rows and must sweep as one group from here on.
        for mask in &lane.escalate_masks {
            self.union_mask(*mask);
        }
        self.core.record_batch(task.consumed.len());
        let lane_key = match &lane.scope {
            Some(scope) if lane.escalate_masks.is_empty() => {
                self.find(scope.mask.trailing_zeros() as usize)
            }
            _ => GLOBAL,
        };
        self.stats.completions.push((lane_key, now));
        self.sequencer.complete(
            task.ticket,
            Some(SequencedInstall {
                consumed: task.consumed,
                deltas,
            }),
        );
        Ok(())
    }

    /// Release every install whose ticket is next in order, then — at
    /// full drain, the same logical point where the unsharded scheduler
    /// drain-flushes — install policy-pending batches.
    fn drain_installs(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), MvError> {
        let now = net.now();
        for inst in self.sequencer.drain() {
            let consumed = inst.consumed;
            for (index, delta) in inst.deltas {
                let id = self
                    .registry
                    .ids()
                    .into_iter()
                    .find(|v| v.index() == index)
                    .ok_or(MvError::UnknownView { index })?;
                // Cascade inside the sequenced release: derived children
                // install immediately after their parent, still inside
                // this ticket's slot, so the global install order is
                // parent-then-children per released ticket.
                self.registry
                    .apply_with_cascade(id, &delta, &consumed, now)?;
            }
        }
        if self.is_quiescent() {
            self.registry.flush_all_with_cascade(now)?;
        }
        Ok(())
    }
}

impl SweepPolicy for ShardedScheduler {
    type Err = MvError;

    fn name(&self) -> &'static str {
        "sharded-sweep"
    }

    fn core(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn note_update(&mut self, u: &SourceUpdate, at: Time) -> Result<(), MvError> {
        // The ticket at arrival IS the install order — issued before any
        // scheduling decision, claimed at launch, released in order.
        let ticket = self.sequencer.issue();
        self.tickets.insert(u.id, ticket);
        for id in self.registry.affected_with_descendants(u.id.source) {
            self.registry.runtime_mut(id)?.metrics.updates_received += 1;
            if let Some(p) = self.registry.install_publisher() {
                p.lock()
                    .expect("install publisher poisoned")
                    .note_delivery(id.index(), u.id, at);
            }
        }
        Ok(())
    }

    fn kick(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), MvError> {
        self.pump(net)
    }

    fn on_answer(
        &mut self,
        qid: u64,
        partial: PartialDelta,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), MvError> {
        self.answer(net, qid, partial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{MaintenanceScheduler, SchedulerMode};
    use dw_protocol::{node_source, source_node, WAREHOUSE_NODE};
    use dw_relational::{eval_view, tup, Schema, ViewDefBuilder};
    use dw_simnet::Network;
    use dw_source::DataSource;

    fn base3() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .relation(Schema::new("R3", ["E", "F"]).unwrap())
            .join("R1.B", "R2.C")
            .join("R2.D", "R3.E")
            .build()
            .unwrap()
    }

    /// Initial data banded by `ShardMap::range(100, 2)`: shard 0 holds
    /// values 0..100, shard 1 the rest. Every tuple is pure.
    fn banded_initial() -> Vec<Bag> {
        vec![
            Bag::from_tuples([tup![1, 3], tup![101, 103]]),
            Bag::from_tuples([tup![3, 5], tup![103, 105]]),
            Bag::from_tuples([tup![5, 9], tup![105, 109]]),
        ]
    }

    /// Drive a sharded scheduler to quiescence over `txns`, crashing
    /// shards per `crash_on_first_answer`. Returns (scheduler, shadows).
    fn run_sharded(
        map: ShardMap,
        initial: Vec<Bag>,
        view_specs: &[ViewSpec],
        txns: &[(Time, usize, Bag)],
        crash_on_first_answer: &[usize],
    ) -> (ShardedScheduler, Vec<Bag>) {
        let base = base3();
        let mut sched = ShardedScheduler::new(base.clone(), map).unwrap();
        for bag in &initial {
            sched.seed_groups(bag);
        }
        for spec in view_specs {
            let local = spec.compile(&base).unwrap();
            let refs: Vec<&Bag> = initial[spec.lo..=spec.hi].iter().collect();
            sched
                .register(spec, eval_view(&local, &refs).unwrap())
                .unwrap();
        }
        let mut net: Network<Message> = Network::new(7);
        let mut sources: Vec<DataSource> = (0..3)
            .map(|i| {
                let mut r = dw_relational::BaseRelation::new(base.schema(i).clone());
                r.apply_delta(&initial[i]).unwrap();
                DataSource::new(i, base.clone(), r)
            })
            .collect();
        let mut shadows = initial;
        for &(at, src, ref delta) in txns {
            shadows[src].merge(delta);
            net.inject(
                at,
                source_node(src),
                Message::ApplyTxn {
                    rel: src,
                    delta: delta.clone(),
                    global: None,
                },
            );
        }
        let mut crashed = false;
        while let Some(d) = net.next() {
            if d.to == WAREHOUSE_NODE {
                if !crashed
                    && !crash_on_first_answer.is_empty()
                    && matches!(d.msg, Message::SweepAnswer { .. })
                {
                    crashed = true;
                    for &s in crash_on_first_answer {
                        sched.crash_shard(s, &mut net).unwrap();
                    }
                }
                sched.on_message(d, &mut net).unwrap();
            } else {
                sources[node_source(d.to)]
                    .handle(d.from, d.msg, &mut net)
                    .unwrap();
            }
        }
        assert!(sched.is_quiescent());
        (sched, shadows)
    }

    fn assert_ground_truth(sched_views: &ViewRegistry, specs: &[ViewSpec], shadows: &[Bag]) {
        for (spec, id) in specs.iter().zip(sched_views.ids()) {
            let local = spec.compile(sched_views.base()).unwrap();
            let refs: Vec<&Bag> = shadows[spec.lo..=spec.hi].iter().collect();
            let truth = eval_view(&local, &refs).unwrap();
            assert_eq!(
                sched_views.view_bag(id).unwrap(),
                &truth,
                "view '{}'",
                spec.name
            );
        }
    }

    #[test]
    fn shard_local_updates_sweep_concurrently() {
        let specs = vec![ViewSpec::full("full", 3)];
        // Two pure updates, one per shard, 50µs apart with 1000µs links:
        // the second lane must start while the first is in flight.
        let txns = vec![
            (100u64, 1usize, Bag::from_tuples([tup![3, 5]])),
            (150, 1, Bag::from_tuples([tup![103, 105]])),
        ];
        let (sched, shadows) = run_sharded(
            ShardMap::range(100, 2),
            banded_initial(),
            &specs,
            &txns,
            &[],
        );
        assert_ground_truth(sched.views(), &specs, &shadows);
        assert_eq!(sched.stats().max_concurrent_lanes, 2);
        assert_eq!(sched.stats().shard_local, 2);
        assert_eq!(sched.stats().escalations, 0);
        // Shard-locality is free: still exactly 2(n−1) messages each.
        assert_eq!(sched.metrics().queries_sent, 4);
        assert_eq!(sched.metrics().answers_received, 4);
    }

    #[test]
    fn out_of_order_completions_install_in_arrival_order() {
        let specs = vec![ViewSpec::full("full", 3)];
        // Update A (src 0, shard 0) needs a 2-hop sequential right leg
        // (~4000µs); update B (src 1, shard 1) needs one parallel
        // round-trip (~2000µs) and finishes first — but must install
        // second.
        let txns = vec![
            (100u64, 0usize, Bag::from_tuples([tup![2, 3]])),
            (150, 1, Bag::from_tuples([tup![103, 105]])),
        ];
        let (sched, shadows) = run_sharded(
            ShardMap::range(100, 2),
            banded_initial(),
            &specs,
            &txns,
            &[],
        );
        assert_ground_truth(sched.views(), &specs, &shadows);
        assert_eq!(sched.stats().max_concurrent_lanes, 2);
        let id = sched.views().ids()[0];
        let consumed: Vec<Vec<UpdateId>> = sched
            .views()
            .install_log(id)
            .unwrap()
            .iter()
            .map(|rec| rec.consumed.clone())
            .collect();
        assert_eq!(
            consumed,
            vec![
                vec![UpdateId { source: 0, seq: 0 }],
                vec![UpdateId { source: 1, seq: 0 }],
            ],
            "sequencer must hold B's install behind A's"
        );
    }

    #[test]
    fn cross_shard_update_escalates_and_unions_the_groups() {
        let specs = vec![ViewSpec::full("full", 3)];
        let map = ShardMap::range(100, 2);
        // The impure R2 tuple [3, 103] straddles both bands: global
        // sweep, then shards 0 and 1 are one group forever after.
        let txns = vec![
            (100u64, 1usize, Bag::from_tuples([tup![3, 103]])),
            (10_000, 1, Bag::from_tuples([tup![3, 5]])),
            (10_050, 1, Bag::from_tuples([tup![103, 105]])),
        ];
        let (sched, shadows) = run_sharded(map, banded_initial(), &specs, &txns, &[]);
        assert_ground_truth(sched.views(), &specs, &shadows);
        assert_eq!(sched.stats().escalations, 1);
        assert_eq!(sched.stats().shard_local, 2);
        assert_eq!(sched.group_mask_of(0), 0b11);
        assert_eq!(sched.group_mask_of(1), 0b11);
        // Merged group ⇒ the two post-escalation updates serialized.
        assert_eq!(sched.stats().max_concurrent_lanes, 1);
    }

    #[test]
    fn impure_initial_data_seeds_merged_groups() {
        let base = base3();
        let mut sched = ShardedScheduler::new(base, ShardMap::range(4, 3)).unwrap();
        // [5, 9] has bands {1, 2}: one impure resident merges them.
        sched.seed_groups(&Bag::from_tuples([tup![1, 2], tup![5, 9]]));
        assert_eq!(sched.group_mask_of(0), 0b001);
        assert_eq!(sched.group_mask_of(1), 0b110);
        assert_eq!(sched.group_mask_of(2), 0b110);
    }

    #[test]
    fn sharded_matches_unsharded_on_interfering_txns() {
        // The unsharded scheduler's own hostile workload: dense,
        // interfering, with escalations (range-8 bands cut through the
        // values) and impure initial residents. Byte-equal installs.
        let specs = vec![
            ViewSpec::full("full", 3),
            ViewSpec {
                lo: 1,
                hi: 2,
                ..ViewSpec::full("right-pair", 3)
            },
        ];
        let initial = vec![
            Bag::from_tuples([tup![1, 3], tup![2, 3], tup![2, 5]]),
            Bag::from_tuples([tup![3, 5], tup![5, 7], tup![3, 7]]),
            Bag::from_tuples([tup![5, 9], tup![7, 9], tup![7, 11]]),
        ];
        let txns = vec![
            (100u64, 1usize, Bag::from_tuples([tup![7, 9]])),
            (150, 0, Bag::from_tuples([tup![4, 7]])),
            (200, 2, Bag::from_tuples([tup![9, 13]])),
            (260, 1, Bag::from_pairs([(tup![3, 5], -1)])),
            (300, 0, Bag::from_tuples([tup![6, 3]])),
            (340, 2, Bag::from_pairs([(tup![5, 9], -1)])),
        ];
        let (sharded, shadows) =
            run_sharded(ShardMap::range(8, 2), initial.clone(), &specs, &txns, &[]);
        assert_ground_truth(sharded.views(), &specs, &shadows);

        // Unsharded reference run over the identical scenario.
        let base = base3();
        let mut flat = MaintenanceScheduler::new(base.clone(), SchedulerMode::Shared).unwrap();
        for spec in &specs {
            let local = spec.compile(&base).unwrap();
            let refs: Vec<&Bag> = initial[spec.lo..=spec.hi].iter().collect();
            flat.register(spec, eval_view(&local, &refs).unwrap())
                .unwrap();
        }
        let mut net: Network<Message> = Network::new(7);
        let mut sources: Vec<DataSource> = (0..3)
            .map(|i| {
                let mut r = dw_relational::BaseRelation::new(base.schema(i).clone());
                r.apply_delta(&initial[i]).unwrap();
                DataSource::new(i, base.clone(), r)
            })
            .collect();
        for &(at, src, ref delta) in &txns {
            net.inject(
                at,
                source_node(src),
                Message::ApplyTxn {
                    rel: src,
                    delta: delta.clone(),
                    global: None,
                },
            );
        }
        while let Some(d) = net.next() {
            if d.to == WAREHOUSE_NODE {
                flat.on_message(d, &mut net).unwrap();
            } else {
                sources[node_source(d.to)]
                    .handle(d.from, d.msg, &mut net)
                    .unwrap();
            }
        }
        assert!(flat.is_quiescent());

        assert_eq!(sharded.metrics().queries_sent, flat.metrics().queries_sent);
        for (sid, fid) in sharded.views().ids().into_iter().zip(flat.views().ids()) {
            assert_eq!(
                sharded.views().view_bag(sid).unwrap(),
                flat.views().view_bag(fid).unwrap()
            );
            let fp = |log: &[dw_engine::InstallRecord]| -> Vec<Vec<UpdateId>> {
                log.iter().map(|r| r.consumed.clone()).collect()
            };
            assert_eq!(
                fp(sharded.views().install_log(sid).unwrap()),
                fp(flat.views().install_log(fid).unwrap())
            );
        }
    }

    #[test]
    fn shard_crash_reseeds_the_lane_and_converges() {
        let specs = vec![ViewSpec::full("full", 3)];
        let txns = vec![
            (100u64, 1usize, Bag::from_tuples([tup![3, 5]])),
            (150, 1, Bag::from_tuples([tup![103, 105]])),
        ];
        let (sched, shadows) = run_sharded(
            ShardMap::range(100, 2),
            banded_initial(),
            &specs,
            &txns,
            &[0, 1], // crash both shards at the first answer delivery
        );
        assert_ground_truth(sched.views(), &specs, &shadows);
        assert_eq!(sched.stats().shard_crashes, 2);
        assert_eq!(sched.stats().sweeps_reseeded, 2);
        // Each aborted lane had in-flight queries whose answers landed
        // after the crash — dropped, not folded.
        assert!(sched.stats().stale_answers_dropped >= 2);
        // Install order still arrival order.
        let id = sched.views().ids()[0];
        let consumed: Vec<Vec<UpdateId>> = sched
            .views()
            .install_log(id)
            .unwrap()
            .iter()
            .map(|rec| rec.consumed.clone())
            .collect();
        assert_eq!(
            consumed,
            vec![
                vec![UpdateId { source: 1, seq: 0 }],
                vec![UpdateId { source: 1, seq: 1 }],
            ]
        );
    }

    #[test]
    fn batching_and_pushdown_are_refused() {
        let base = base3();
        let batched = EngineOptions {
            batch: 4,
            ..EngineOptions::default()
        };
        assert!(matches!(
            ShardedScheduler::with_options(base.clone(), ShardMap::hash(2), batched),
            Err(MvError::Warehouse(
                dw_warehouse::WarehouseError::Config { .. }
            ))
        ));
        let pushed = EngineOptions {
            pushdown: true,
            ..EngineOptions::default()
        };
        assert!(matches!(
            ShardedScheduler::with_options(base, ShardMap::hash(2), pushed),
            Err(MvError::Warehouse(
                dw_warehouse::WarehouseError::Config { .. }
            ))
        ));
    }

    #[test]
    fn updates_nobody_references_release_their_ticket() {
        // Only a view over R3: an R1 update must release its sequencer
        // slot (None) or the R3 install behind it would block forever.
        let specs = vec![ViewSpec {
            lo: 2,
            hi: 2,
            ..ViewSpec::full("r3-only", 3)
        }];
        let txns = vec![
            (100u64, 0usize, Bag::from_tuples([tup![4, 7]])),
            (200, 2, Bag::from_tuples([tup![9, 13]])),
        ];
        let (sched, shadows) = run_sharded(
            ShardMap::range(100, 2),
            banded_initial(),
            &specs,
            &txns,
            &[],
        );
        assert_eq!(sched.stats().skipped, 1);
        let id = sched.views().ids()[0];
        assert_eq!(sched.views().install_log(id).unwrap().len(), 1);
        let refs: Vec<&Bag> = shadows[2..=2].iter().collect();
        let truth = eval_view(&specs[0].compile(sched.views().base()).unwrap(), &refs).unwrap();
        assert_eq!(sched.views().view_bag(id).unwrap(), &truth);
    }

    #[test]
    fn escalation_fence_holds_back_later_pure_updates() {
        let specs = vec![ViewSpec::full("full", 3)];
        // A pure update in flight, then an escalating one, then another
        // pure one in a *free* shard: the fence must hold the third back
        // until the global sweep has run, and everything still installs
        // in arrival order.
        let txns = vec![
            (100u64, 1usize, Bag::from_tuples([tup![3, 5]])),
            (150, 1, Bag::from_tuples([tup![3, 103]])),
            (200, 1, Bag::from_tuples([tup![103, 105]])),
        ];
        let (sched, shadows) = run_sharded(
            ShardMap::range(100, 2),
            banded_initial(),
            &specs,
            &txns,
            &[],
        );
        assert_ground_truth(sched.views(), &specs, &shadows);
        assert_eq!(sched.stats().escalations, 1);
        // The fence forbids overlap here: one lane at a time throughout.
        assert_eq!(sched.stats().max_concurrent_lanes, 1);
        let id = sched.views().ids()[0];
        let consumed: Vec<u64> = sched
            .views()
            .install_log(id)
            .unwrap()
            .iter()
            .flat_map(|rec| rec.consumed.iter().map(|u| u.seq))
            .collect();
        assert_eq!(consumed, vec![0, 1, 2]);
    }
}
