//! # dw-protocol
//!
//! The wire protocol of the warehouse architecture (paper Figure 1): what
//! flows between the `n` data-source sites and the warehouse site.
//!
//! Three conversations exist:
//!
//! * **Update stream** (source → warehouse): every atomic source
//!   transaction is forwarded as one [`SourceUpdate`] — a signed delta bag
//!   over that source's base relation. FIFO delivery of this stream relative
//!   to query answers is what makes SWEEP's *local* compensation sound.
//! * **Sweep queries** (warehouse → source → warehouse): the
//!   `ComputeJoin(ΔV, R)` request/reply of Figure 3. The query carries the
//!   partially evaluated view change and which side to extend; the answer
//!   carries the widened partial. The Strobe family reuses the same shape.
//! * **ECA queries** (warehouse → the single source site): full SPJ
//!   expressions with delta substitutions and signs, evaluated atomically at
//!   the one source site ECA assumes. Their [`Payload::size_bytes`] grows
//!   with the number of compensation terms — the paper's "quadratic message
//!   size" claim is measured directly off this.

#![warn(missing_docs)]

pub mod transport;

use dw_relational::{Bag, PartialDelta, Predicate, ShardScope};
use dw_simnet::{NodeId, Payload};

pub use transport::{Endpoint, TransportConfig, TransportConfigError, TransportNet};

/// Chain position of a data source, `0..n` (the paper's subscript `i`).
pub type SourceIndex = usize;

/// The warehouse is always node 0 in the simulation topology.
pub const WAREHOUSE_NODE: NodeId = 0;

/// Node id of source `i` (sources occupy nodes `1..=n`).
pub fn source_node(i: SourceIndex) -> NodeId {
    i + 1
}

/// Inverse of [`source_node`].
pub fn node_source(node: NodeId) -> SourceIndex {
    debug_assert!(node >= 1);
    node - 1
}

/// Globally unique identifier of an atomic source transaction: the source's
/// chain position plus a per-source sequence number (sources number their
/// own transactions; FIFO channels keep them ordered).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateId {
    /// Originating source.
    pub source: SourceIndex,
    /// Per-source sequence number, starting at 0.
    pub seq: u64,
}

/// Membership tag for a *global transaction* (update type 3 of §2): a
/// transaction whose parts execute at several sources. Each part's update
/// message carries the transaction id and the total part count, so the
/// warehouse can incorporate the whole transaction atomically — the
/// \[ZGMW96]-style extension the paper points to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GlobalPart {
    /// Global transaction id (unique across sources).
    pub gid: u64,
    /// Total number of parts in the transaction.
    pub parts: u32,
}

/// An atomic update forwarded from a source to the warehouse: a *single
/// update transaction* (one tuple), a *source local transaction* (several
/// tuples, one source) — update types 1 and 2 of §2 — or one part of a
/// *global transaction* (type 3) when `global` is set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceUpdate {
    /// Unique id.
    pub id: UpdateId,
    /// Signed delta over the source's base relation (`+` insert, `−`
    /// delete; a *modify* is a delete plus an insert in one transaction).
    pub delta: Bag,
    /// Global-transaction membership, if any.
    pub global: Option<GlobalPart>,
}

pub use dw_relational::JoinSide;

/// A `ComputeJoin` request: "join your base relation onto this partial view
/// change and send it back".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepQuery {
    /// Correlates the answer with the in-flight sweep step.
    pub qid: u64,
    /// The partially evaluated `ΔV` (range + bag).
    pub partial: PartialDelta,
    /// Side on which the receiving source's relation joins.
    pub side: JoinSide,
    /// How many queued updates the issuing sweep folded into this
    /// partial (cross-update batching); `1` for a plain per-update
    /// sweep. Informational for sources — the join they compute is the
    /// same either way.
    pub batch: u32,
    /// Optional σ pushed down to the receiving source: apply this
    /// predicate to the local base relation *before* joining, so only
    /// qualifying tuples travel back. `None` means join against the
    /// full relation (the pre-pushdown wire behavior). The predicate
    /// references attributes by position within the receiving relation.
    pub pred: Option<Predicate>,
    /// Sweep epoch of the issuing warehouse. `0` until the warehouse
    /// recovers from a state-crash for the first time; each recovery
    /// bumps it. Sources remember the highest epoch they have served and
    /// drop queries from older epochs, so a re-seeded sweep never races
    /// the stale in-flight queries of its aborted predecessor. Counted
    /// inside the query's fixed header ([`Payload::size_bytes`]), so the
    /// wire accounting is unchanged from the pre-recovery protocol.
    pub epoch: u64,
    /// Shard scope of the issuing sweep, set only by the sharded
    /// scheduler: the source joins against the union of its relation's
    /// slices for the shards in `scope.mask` (plus the mixed slice of
    /// impure tuples) instead of the full relation. `None` — every
    /// unsharded executor — keeps the wire byte-identical to the
    /// pre-sharding protocol.
    pub scope: Option<ShardScope>,
}

/// Answer to a [`SweepQuery`]: the widened partial delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepAnswer {
    /// Echoed query id.
    pub qid: u64,
    /// The widened `ΔV`.
    pub partial: PartialDelta,
}

/// One slot of an ECA term: either the current base relation or an
/// explicit delta carried in the query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcaSlot {
    /// Use the site's current contents of this chain relation.
    Base,
    /// Substitute this delta.
    Delta(Bag),
}

/// One signed product term `± (S_1 ⋈ … ⋈ S_n)` of an ECA query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcaTerm {
    /// `+1` or `−1`.
    pub sign: i8,
    /// One slot per chain relation.
    pub slots: Vec<EcaSlot>,
}

/// An ECA query: a sum of signed substitution terms, evaluated atomically
/// at the single source site and returned as a projected view delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcaQuery {
    /// Correlates the answer.
    pub qid: u64,
    /// The signed terms.
    pub terms: Vec<EcaTerm>,
}

/// Answer to an [`EcaQuery`]: the projected view delta `Σ sign·Π σ(term)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcaAnswer {
    /// Echoed query id.
    pub qid: u64,
    /// Projected view delta.
    pub result: Bag,
}

/// Everything that can travel in the simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// ENV → source: execute this transaction atomically (workload driver).
    /// `rel` selects the chain relation — always the source's own for
    /// distributed topologies, any relation for the single-site ECA model.
    ApplyTxn {
        /// Target chain relation.
        rel: SourceIndex,
        /// Signed transaction delta.
        delta: Bag,
        /// Global-transaction membership, if any.
        global: Option<GlobalPart>,
    },
    /// Source → warehouse: an atomic update happened.
    Update(SourceUpdate),
    /// Warehouse → source: sweep/Strobe incremental query.
    SweepQuery(SweepQuery),
    /// Source → warehouse: incremental answer.
    SweepAnswer(SweepAnswer),
    /// Warehouse → source site: ECA substitution query.
    EcaQuery(EcaQuery),
    /// Source site → warehouse: ECA answer.
    EcaAnswer(EcaAnswer),
    /// Warehouse → source: send your full current relation (used by the
    /// full-recompute baseline).
    DumpQuery {
        /// Correlates the answer.
        qid: u64,
    },
    /// Source → warehouse: full relation contents.
    DumpAnswer {
        /// Echoed query id.
        qid: u64,
        /// Current relation contents (all counts positive).
        relation: Bag,
    },
    /// Transport: a sequenced envelope around an application message.
    /// Frames are what actually crosses an unreliable link; the receiver
    /// unwraps them exactly-once and in-order (see [`transport`]).
    Frame {
        /// Per-directed-link monotone sequence number.
        seq: u64,
        /// True on retransmission — counted as physical, not logical
        /// traffic.
        retransmit: bool,
        /// The application message being carried.
        inner: Box<Message>,
    },
    /// Transport: cumulative acknowledgement — "I have received every
    /// frame with `seq < cum` from you".
    Ack {
        /// The receiver's next expected sequence number.
        cum: u64,
    },
    /// Transport: crash-recovery handshake. The sender (typically a
    /// restarted source) tells the peer its receive cursor so both sides
    /// can prune acknowledged frames and retransmit the rest.
    Resync {
        /// The sender's next expected sequence number for the peer's
        /// stream.
        recv_cum: u64,
    },
    /// Transport: reply to [`Message::Resync`], carrying the responder's
    /// own receive cursor.
    ResyncAck {
        /// The responder's next expected sequence number for the
        /// requester's stream.
        recv_cum: u64,
    },
    /// Transport: self-addressed retransmission timer (never crosses a
    /// link).
    RetxTick {
        /// The peer whose outbox this timer guards.
        peer: NodeId,
    },
    /// Transport: self-addressed resync retry timer (never crosses a
    /// link).
    ResyncTick {
        /// The peer whose resync handshake this timer guards.
        peer: NodeId,
    },
    /// ENV → node: the node restarts after a crash window. The transport
    /// re-arms its timers and initiates resync with every peer.
    Restart,
}

impl Payload for Message {
    fn size_bytes(&self) -> usize {
        const HDR: usize = 16;
        HDR + match self {
            Message::ApplyTxn { delta, .. } => delta.size_bytes(),
            Message::Update(u) => u.delta.size_bytes(),
            // The fixed 16-byte query header covers qid/side/batch/epoch.
            Message::SweepQuery(q) => {
                q.partial.bag.size_bytes()
                    + 16
                    + q.pred.as_ref().map_or(0, Predicate::size_bytes)
                    + q.scope.as_ref().map_or(0, ShardScope::size_bytes)
            }
            Message::SweepAnswer(a) => a.partial.bag.size_bytes() + 16,
            Message::EcaQuery(q) => q
                .terms
                .iter()
                .map(|t| {
                    1 + t
                        .slots
                        .iter()
                        .map(|s| match s {
                            EcaSlot::Base => 1,
                            EcaSlot::Delta(b) => b.size_bytes(),
                        })
                        .sum::<usize>()
                })
                .sum::<usize>(),
            Message::EcaAnswer(a) => a.result.size_bytes(),
            Message::DumpQuery { .. } => 8,
            Message::DumpAnswer { relation, .. } => relation.size_bytes(),
            // seq + flag on top of the carried message (its own header
            // included — a frame is a real second header on the wire).
            Message::Frame { inner, .. } => 12 + inner.size_bytes(),
            Message::Ack { .. } => 8,
            Message::Resync { .. } => 8,
            Message::ResyncAck { .. } => 8,
            // Timer ticks and restarts never cross a link.
            Message::RetxTick { .. } | Message::ResyncTick { .. } | Message::Restart => 0,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Message::ApplyTxn { .. } => "txn",
            Message::Update(_) => "update",
            Message::SweepQuery(_) => "query",
            Message::SweepAnswer(_) => "answer",
            Message::EcaQuery(_) => "eca_query",
            Message::EcaAnswer(_) => "eca_answer",
            Message::DumpQuery { .. } => "dump_query",
            Message::DumpAnswer { .. } => "dump_answer",
            // Frames keep the carried message's bucket so per-label
            // statistics stay meaningful with the transport on.
            Message::Frame { inner, .. } => inner.label(),
            Message::Ack { .. } => "ack",
            Message::Resync { .. } => "resync",
            Message::ResyncAck { .. } => "resync_ack",
            Message::RetxTick { .. } | Message::ResyncTick { .. } => "tick",
            Message::Restart => "restart",
        }
    }

    fn is_retransmit(&self) -> bool {
        matches!(
            self,
            Message::Frame {
                retransmit: true,
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::tup;

    #[test]
    fn node_mapping_roundtrips() {
        for i in 0..10 {
            assert_eq!(node_source(source_node(i)), i);
            assert_ne!(source_node(i), WAREHOUSE_NODE);
        }
    }

    #[test]
    fn update_ids_order_by_source_then_seq() {
        let a = UpdateId { source: 0, seq: 5 };
        let b = UpdateId { source: 1, seq: 0 };
        assert!(a < b);
    }

    #[test]
    fn labels_distinguish_kinds() {
        let m = Message::ApplyTxn {
            rel: 0,
            delta: Bag::new(),
            global: None,
        };
        assert_eq!(m.label(), "txn");
        let u = Message::Update(SourceUpdate {
            id: UpdateId { source: 0, seq: 0 },
            delta: Bag::new(),
            global: None,
        });
        assert_eq!(u.label(), "update");
    }

    #[test]
    fn eca_query_size_grows_with_terms() {
        let delta = Bag::from_tuples([tup![1, 2], tup![3, 4]]);
        let term = |k: usize| EcaTerm {
            sign: 1,
            slots: (0..3)
                .map(|i| {
                    if i < k {
                        EcaSlot::Delta(delta.clone())
                    } else {
                        EcaSlot::Base
                    }
                })
                .collect(),
        };
        let small = Message::EcaQuery(EcaQuery {
            qid: 0,
            terms: vec![term(1)],
        });
        let big = Message::EcaQuery(EcaQuery {
            qid: 0,
            terms: vec![term(1), term(2), term(2), term(2)],
        });
        assert!(big.size_bytes() > small.size_bytes());
    }

    #[test]
    fn sweep_query_size_tracks_partial() {
        let empty = Message::SweepQuery(SweepQuery {
            qid: 0,
            partial: PartialDelta {
                lo: 0,
                hi: 0,
                bag: Bag::new(),
            },
            side: JoinSide::Right,
            batch: 1,
            pred: None,
            epoch: 0,
            scope: None,
        });
        let full = Message::SweepQuery(SweepQuery {
            qid: 0,
            partial: PartialDelta {
                lo: 0,
                hi: 0,
                bag: Bag::from_tuples((0..100).map(|i| tup![i, i])),
            },
            side: JoinSide::Right,
            batch: 1,
            pred: None,
            epoch: 0,
            scope: None,
        });
        assert!(full.size_bytes() > empty.size_bytes() + 1000);
    }
}
