//! The reliability transport: earns back, over unreliable links, the
//! reliable-FIFO contract the SWEEP paper assumes (§2).
//!
//! Every node owns one [`Endpoint`]. Application messages are wrapped in
//! [`Message::Frame`]s carrying a per-directed-link monotone sequence
//! number; the receiver delivers frames **exactly once, in send order**,
//! buffering out-of-order arrivals and discarding duplicates. Cumulative
//! [`Message::Ack`]s let the sender prune its outbox; unacknowledged
//! frames are retransmitted on a timer with exponential backoff plus
//! seeded jitter. Timers are self-addressed messages scheduled through
//! [`NetHandle::send_after`], so the whole machine stays inside the
//! deterministic simulation.
//!
//! **Crash recovery.** Endpoint state models a write-ahead-logged
//! transport: the outbox and receive cursors survive a crash (a real
//! source journals its forwarding state next to its database). What a
//! crash *does* destroy is the in-flight timer chain — self-ticks are
//! dropped while the node is down. On [`Message::Restart`] the endpoint
//! runs a [`Message::Resync`] handshake with every peer: each side reports
//! its receive cursor, prunes acknowledged frames, resets its backoff,
//! retransmits the remainder, and re-arms its timers. The handshake is
//! itself retried until acknowledged, so it survives the same faulty
//! links as everything else.
//!
//! The state machines in `dw-source` and `dw-warehouse` are untouched:
//! the orchestrator wraps their network handle in a [`TransportNet`], so
//! `net.send(...)` transparently becomes `endpoint.send(...)`, and
//! inbound frames are unwrapped by [`Endpoint::on_delivery`] before
//! dispatch.

use crate::Message;
use dw_rng::Rng64;
use dw_simnet::{Delivery, NetHandle, NodeId, Time};
use std::collections::{BTreeMap, HashMap};

/// Retransmission and resync timing knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportConfig {
    /// First retransmission timeout (µs). Should comfortably exceed one
    /// round trip.
    pub rto_initial: Time,
    /// Backoff ceiling (µs).
    pub rto_max: Time,
    /// Maximum seeded jitter added to every armed timer (µs) — keeps
    /// retransmissions from synchronizing across links.
    pub jitter: Time,
    /// Retry interval for the resync handshake (µs).
    pub resync_interval: Time,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            rto_initial: 30_000,
            rto_max: 480_000,
            jitter: 5_000,
            resync_interval: 30_000,
        }
    }
}

/// A rejected [`TransportConfig`]: which relation between the knobs is
/// violated. Raised by [`TransportConfig::validate`] before any endpoint
/// is built, so a nonsensical timer setup fails loudly at construction
/// instead of silently mis-pacing retransmissions mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportConfigError {
    /// `rto_max < rto_initial`: the backoff ceiling sits below the
    /// starting timeout, so the very first doubling would *shrink* it.
    BackoffCeilingBelowInitial {
        /// Configured first timeout.
        rto_initial: Time,
        /// Configured (too-low) ceiling.
        rto_max: Time,
    },
    /// `jitter >= rto_initial`: the random spread dominates the timeout
    /// itself, so a timer can fire after up to twice its nominal RTO and
    /// the backoff trajectory becomes noise.
    JitterSwampsRto {
        /// Configured first timeout.
        rto_initial: Time,
        /// Configured (too-large) jitter bound.
        jitter: Time,
    },
}

impl std::fmt::Display for TransportConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportConfigError::BackoffCeilingBelowInitial {
                rto_initial,
                rto_max,
            } => write!(
                f,
                "transport config: rto_max ({rto_max}µs) is below rto_initial ({rto_initial}µs)"
            ),
            TransportConfigError::JitterSwampsRto {
                rto_initial,
                jitter,
            } => write!(
                f,
                "transport config: jitter ({jitter}µs) must be below rto_initial ({rto_initial}µs)"
            ),
        }
    }
}

impl std::error::Error for TransportConfigError {}

impl TransportConfig {
    /// A config tuned to a link's mean latency: RTO of roughly three
    /// round trips, never below 4 ms.
    pub fn for_latency_mean(mean: f64) -> Self {
        let rto = ((mean * 6.0) as Time).max(4_000);
        TransportConfig {
            rto_initial: rto,
            rto_max: rto.saturating_mul(16),
            jitter: (rto / 8).max(500),
            resync_interval: rto,
        }
    }

    /// Reject configurations whose timers cannot behave: a backoff
    /// ceiling below the initial timeout, or jitter at least as large as
    /// the timeout it perturbs. [`TransportConfig::default`] and every
    /// [`TransportConfig::for_latency_mean`] output validate cleanly.
    pub fn validate(&self) -> Result<(), TransportConfigError> {
        if self.rto_max < self.rto_initial {
            return Err(TransportConfigError::BackoffCeilingBelowInitial {
                rto_initial: self.rto_initial,
                rto_max: self.rto_max,
            });
        }
        if self.jitter >= self.rto_initial {
            return Err(TransportConfigError::JitterSwampsRto {
                rto_initial: self.rto_initial,
                jitter: self.jitter,
            });
        }
        Ok(())
    }
}

/// Per-peer transport state (one directed pair of streams).
#[derive(Debug, Default)]
struct PeerState {
    /// Next sequence number to assign to an outgoing frame.
    next_seq: u64,
    /// Sent but unacknowledged frames, by sequence number. This is the
    /// journaled part of the sender: it survives crashes.
    outbox: BTreeMap<u64, Message>,
    /// Current retransmission timeout (doubles per timer firing).
    rto_cur: Time,
    /// A retransmission timer is in flight.
    timer_armed: bool,
    /// Oldest unacknowledged sequence number when the timer was armed.
    /// If the tick finds this frame acknowledged, the link made progress
    /// during the window — newer frames haven't aged a full RTO yet, so
    /// the timer re-arms instead of retransmitting them spuriously.
    oldest_at_arm: u64,
    /// Next expected incoming sequence number (the receive cursor).
    recv_next: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    reorder: BTreeMap<u64, Message>,
    /// A resync handshake is awaiting its ack.
    resync_pending: bool,
}

/// One node's half of the reliability transport.
#[derive(Debug)]
pub struct Endpoint {
    node: NodeId,
    cfg: TransportConfig,
    rng: Rng64,
    peers: HashMap<NodeId, PeerState>,
    retransmits: u64,
    obs: dw_obs::Obs,
}

impl Endpoint {
    /// A fresh endpoint for `node`. The seed drives timer jitter only.
    pub fn new(node: NodeId, cfg: TransportConfig, seed: u64) -> Self {
        Endpoint {
            node,
            cfg,
            rng: Rng64::new(seed),
            peers: HashMap::new(),
            retransmits: 0,
            obs: dw_obs::Obs::off(),
        }
    }

    /// Attach an observability recorder: retransmission counts, the RTO
    /// backoff trajectory (`transport.rto`), and armed-timer delays
    /// (`transport.retx_delay`). `Obs::off()` detaches.
    pub fn set_observer(&mut self, obs: dw_obs::Obs) {
        self.obs = obs;
    }

    fn peer(&mut self, peer: NodeId) -> &mut PeerState {
        let rto = self.cfg.rto_initial;
        self.peers.entry(peer).or_insert_with(|| PeerState {
            rto_cur: rto,
            ..Default::default()
        })
    }

    /// Reliably send an application message to `peer`: wrap it in a
    /// sequenced frame, journal it, put it on the wire, and make sure a
    /// retransmission timer is running.
    pub fn send(&mut self, peer: NodeId, msg: Message, net: &mut dyn NetHandle<Message>) {
        debug_assert!(
            !matches!(
                msg,
                Message::Frame { .. }
                    | Message::Ack { .. }
                    | Message::Resync { .. }
                    | Message::ResyncAck { .. }
                    | Message::RetxTick { .. }
                    | Message::ResyncTick { .. }
                    | Message::Restart
            ),
            "transport messages are not re-wrapped"
        );
        let node = self.node;
        let state = self.peer(peer);
        let seq = state.next_seq;
        state.next_seq += 1;
        state.outbox.insert(seq, msg.clone());
        net.send(
            node,
            peer,
            Message::Frame {
                seq,
                retransmit: false,
                inner: Box::new(msg),
            },
        );
        self.arm_retx(peer, net);
    }

    /// Process one delivery addressed to this node. Transport messages
    /// are consumed; the returned list holds application messages now
    /// ready for dispatch, in order, with `from` set to the originating
    /// peer. Non-transport deliveries (ENV injections, traffic from nodes
    /// not speaking the transport) pass through unchanged.
    pub fn on_delivery(
        &mut self,
        d: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Vec<Delivery<Message>> {
        debug_assert_eq!(d.to, self.node);
        match d.msg {
            Message::Frame { seq, inner, .. } => self.on_frame(d.from, seq, *inner, d.at, net),
            Message::Ack { cum } => {
                self.on_ack(d.from, cum);
                Vec::new()
            }
            Message::Resync { recv_cum } => {
                self.on_resync(d.from, recv_cum, net);
                Vec::new()
            }
            Message::ResyncAck { recv_cum } => {
                self.on_resync_ack(d.from, recv_cum, net);
                Vec::new()
            }
            Message::RetxTick { peer } => {
                self.on_retx_tick(peer, net);
                Vec::new()
            }
            Message::ResyncTick { peer } => {
                self.on_resync_tick(peer, net);
                Vec::new()
            }
            Message::Restart => {
                self.on_restart(net);
                Vec::new()
            }
            // Unsequenced traffic (e.g. ENV injections) passes through.
            msg => vec![Delivery {
                at: d.at,
                from: d.from,
                to: d.to,
                msg,
            }],
        }
    }

    fn on_frame(
        &mut self,
        from: NodeId,
        seq: u64,
        inner: Message,
        at: Time,
        net: &mut dyn NetHandle<Message>,
    ) -> Vec<Delivery<Message>> {
        let node = self.node;
        let state = self.peer(from);
        let mut ready = Vec::new();
        if seq == state.recv_next {
            state.recv_next += 1;
            ready.push(inner);
            // The gap is closed — drain any consecutive run that was
            // buffered behind it.
            while let Some(next) = state.reorder.remove(&state.recv_next) {
                state.recv_next += 1;
                ready.push(next);
            }
        } else if seq > state.recv_next {
            state.reorder.entry(seq).or_insert(inner);
        }
        // seq < recv_next: duplicate of something already delivered —
        // drop it, but still ack so the sender can prune.
        let cum = state.recv_next;
        net.send(node, from, Message::Ack { cum });
        ready
            .into_iter()
            .map(|msg| Delivery {
                at,
                from,
                to: node,
                msg,
            })
            .collect()
    }

    fn on_ack(&mut self, from: NodeId, cum: u64) {
        let rto = self.cfg.rto_initial;
        let state = self.peer(from);
        let before = state.outbox.len();
        state.outbox = state.outbox.split_off(&cum);
        if state.outbox.len() < before {
            // Progress: the link is alive, restart the backoff clock.
            state.rto_cur = rto;
        }
    }

    fn arm_retx(&mut self, peer: NodeId, net: &mut dyn NetHandle<Message>) {
        let node = self.node;
        let jitter = if self.cfg.jitter == 0 {
            0
        } else {
            self.rng.u64_in(0, self.cfg.jitter)
        };
        let state = self.peer(peer);
        if state.timer_armed || state.outbox.is_empty() {
            return;
        }
        state.timer_armed = true;
        state.oldest_at_arm = *state.outbox.keys().next().expect("outbox non-empty");
        let delay = state.rto_cur.saturating_add(jitter);
        self.obs.observe("transport.retx_delay", delay);
        net.send_after(node, node, Message::RetxTick { peer }, delay);
    }

    fn on_retx_tick(&mut self, peer: NodeId, net: &mut dyn NetHandle<Message>) {
        let node = self.node;
        let rto_max = self.cfg.rto_max;
        let state = self.peer(peer);
        state.timer_armed = false;
        if state.outbox.is_empty() || state.resync_pending {
            return;
        }
        if *state.outbox.keys().next().expect("checked non-empty") > state.oldest_at_arm {
            // Acks advanced past the frame this timer was watching: the
            // link is alive and the remaining frames are younger than one
            // RTO. Watch the new oldest frame instead of retransmitting.
            self.arm_retx(peer, net);
            return;
        }
        // Go-back-N: everything unacknowledged goes out again. Outboxes
        // are small (a sweep keeps one query in flight per leg), so the
        // simplicity beats selective repeat here.
        let frames: Vec<(u64, Message)> = state
            .outbox
            .iter()
            .map(|(&seq, msg)| (seq, msg.clone()))
            .collect();
        state.rto_cur = state.rto_cur.saturating_mul(2).min(rto_max);
        // The backed-off RTO that will govern the *next* wait on this peer.
        let rto_next = state.rto_cur;
        self.obs.observe("transport.rto", rto_next);
        for (seq, msg) in frames {
            self.retransmits += 1;
            self.obs.add("transport.retransmits", 1);
            net.send(
                node,
                peer,
                Message::Frame {
                    seq,
                    retransmit: true,
                    inner: Box::new(msg),
                },
            );
        }
        self.arm_retx(peer, net);
    }

    /// Restart after a crash window: the journaled state is intact but
    /// every timer died with the process. Reset the timer flags and run
    /// the resync handshake with each known peer.
    pub fn on_restart(&mut self, net: &mut dyn NetHandle<Message>) {
        let node = self.node;
        let rto = self.cfg.rto_initial;
        let peers: Vec<NodeId> = self.peers.keys().copied().collect();
        for peer in peers {
            let state = self.peer(peer);
            state.timer_armed = false;
            state.rto_cur = rto;
            state.resync_pending = true;
            let recv_cum = state.recv_next;
            self.obs.add("transport.resyncs", 1);
            net.send(node, peer, Message::Resync { recv_cum });
            self.arm_resync(peer, net);
        }
    }

    fn arm_resync(&mut self, peer: NodeId, net: &mut dyn NetHandle<Message>) {
        let node = self.node;
        let delay = self
            .cfg
            .resync_interval
            .saturating_add(self.rng.u64_in(0, self.cfg.jitter));
        net.send_after(node, node, Message::ResyncTick { peer }, delay);
    }

    fn on_resync_tick(&mut self, peer: NodeId, net: &mut dyn NetHandle<Message>) {
        let node = self.node;
        let state = self.peer(peer);
        if !state.resync_pending {
            return;
        }
        let recv_cum = state.recv_next;
        net.send(node, peer, Message::Resync { recv_cum });
        self.arm_resync(peer, net);
    }

    fn on_resync(&mut self, from: NodeId, recv_cum: u64, net: &mut dyn NetHandle<Message>) {
        // The peer told us its receive cursor for our stream: prune what
        // it already has, retransmit the rest, and answer with our own
        // cursor. Idempotent, so duplicated/retried resyncs are harmless.
        let node = self.node;
        let rto = self.cfg.rto_initial;
        let state = self.peer(from);
        state.outbox = state.outbox.split_off(&recv_cum);
        state.rto_cur = rto;
        let my_cum = state.recv_next;
        let frames: Vec<(u64, Message)> = state
            .outbox
            .iter()
            .map(|(&seq, msg)| (seq, msg.clone()))
            .collect();
        net.send(node, from, Message::ResyncAck { recv_cum: my_cum });
        for (seq, msg) in frames {
            self.retransmits += 1;
            net.send(
                node,
                from,
                Message::Frame {
                    seq,
                    retransmit: true,
                    inner: Box::new(msg),
                },
            );
        }
        self.arm_retx(from, net);
    }

    fn on_resync_ack(&mut self, from: NodeId, recv_cum: u64, net: &mut dyn NetHandle<Message>) {
        let node = self.node;
        let rto = self.cfg.rto_initial;
        let state = self.peer(from);
        state.resync_pending = false;
        state.outbox = state.outbox.split_off(&recv_cum);
        state.rto_cur = rto;
        let frames: Vec<(u64, Message)> = state
            .outbox
            .iter()
            .map(|(&seq, msg)| (seq, msg.clone()))
            .collect();
        for (seq, msg) in frames {
            self.retransmits += 1;
            net.send(
                node,
                from,
                Message::Frame {
                    seq,
                    retransmit: true,
                    inner: Box::new(msg),
                },
            );
        }
        self.arm_retx(from, net);
    }

    /// Frames this endpoint has retransmitted (timer or resync driven).
    pub fn retransmit_count(&self) -> u64 {
        self.retransmits
    }

    /// Unacknowledged frames currently journaled for `peer`.
    pub fn outbox_len(&self, peer: NodeId) -> usize {
        self.peers.get(&peer).map_or(0, |s| s.outbox.len())
    }

    /// True when nothing is pending anywhere: all frames acknowledged,
    /// no reorder buffers holding data, no resync in flight.
    pub fn is_quiescent(&self) -> bool {
        self.peers
            .values()
            .all(|s| s.outbox.is_empty() && s.reorder.is_empty() && !s.resync_pending)
    }

    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

/// A [`NetHandle`] adapter that routes sends through an [`Endpoint`]: the
/// source and warehouse state machines call `net.send(...)` exactly as
/// before, and the transport takes it from there. Timer scheduling passes
/// straight through to the real network.
pub struct TransportNet<'a> {
    endpoint: &'a mut Endpoint,
    net: &'a mut dyn NetHandle<Message>,
}

impl<'a> TransportNet<'a> {
    /// Wrap `net` so sends from `endpoint.node()` go through the
    /// transport.
    pub fn new(endpoint: &'a mut Endpoint, net: &'a mut dyn NetHandle<Message>) -> Self {
        TransportNet { endpoint, net }
    }
}

impl NetHandle<Message> for TransportNet<'_> {
    fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        debug_assert_eq!(from, self.endpoint.node());
        self.endpoint.send(to, msg, self.net);
    }
    fn send_after(&mut self, from: NodeId, to: NodeId, msg: Message, delay: Time) {
        self.net.send_after(from, to, msg, delay);
    }
    fn now(&self) -> Time {
        self.net.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SourceUpdate, UpdateId};
    use dw_relational::{tup, Bag};
    use dw_simnet::{FaultPlan, LatencyModel, LinkFaults, Network};

    fn update(source: usize, seq: u64) -> Message {
        Message::Update(SourceUpdate {
            id: UpdateId { source, seq },
            delta: Bag::from_tuples([tup![seq as i64]]),
            global: None,
        })
    }

    fn seq_of(msg: &Message) -> u64 {
        match msg {
            Message::Update(u) => u.id.seq,
            other => panic!("expected update, got {other:?}"),
        }
    }

    /// Two endpoints on a faulty network; returns the app messages node 1
    /// received from node 0, in delivery order.
    fn run_pair(faults: FaultPlan, n_msgs: u64, seed: u64) -> (Vec<u64>, Network<Message>) {
        let mut net: Network<Message> = Network::new(seed);
        net.set_default_latency(LatencyModel::Uniform(500, 2_000));
        net.set_faults(faults);
        let cfg = TransportConfig::for_latency_mean(1_250.0);
        let mut eps = [
            Endpoint::new(0, cfg, seed ^ 0xA),
            Endpoint::new(1, cfg, seed ^ 0xB),
        ];
        for i in 0..n_msgs {
            eps[0].send(1, update(0, i), &mut net);
        }
        let mut got = Vec::new();
        let mut steps = 0u64;
        while let Some(d) = net.next() {
            steps += 1;
            assert!(steps < 1_000_000, "transport failed to converge");
            let to = d.to;
            for appd in eps[to].on_delivery(d, &mut net) {
                got.push(seq_of(&appd.msg));
            }
        }
        assert!(eps[0].is_quiescent(), "sender must drain its outbox");
        assert!(eps[1].is_quiescent(), "receiver must drain its buffers");
        (got, net)
    }

    #[test]
    fn clean_link_delivers_in_order() {
        let (got, net) = run_pair(FaultPlan::none(), 20, 1);
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert_eq!(net.stats().retransmitted().messages, 0);
    }

    #[test]
    fn heavy_drop_still_exactly_once_in_order() {
        for seed in 0..10 {
            let (got, net) = run_pair(FaultPlan::default().drop_rate(0.3), 30, seed);
            assert_eq!(got, (0..30).collect::<Vec<_>>(), "seed {seed}");
            assert!(
                net.stats().retransmitted().messages > 0,
                "seed {seed}: drops must force retransmission"
            );
        }
    }

    #[test]
    fn duplication_is_filtered() {
        for seed in 0..10 {
            let (got, _) = run_pair(FaultPlan::default().dup_rate(0.5), 30, seed);
            assert_eq!(got, (0..30).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn reordering_is_repaired() {
        for seed in 0..10 {
            let (got, _) = run_pair(FaultPlan::default().reorder(0.5, 20_000), 30, seed);
            assert_eq!(got, (0..30).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn combined_faults_still_reliable() {
        for seed in 0..20 {
            let plan = FaultPlan::default().uniform(LinkFaults {
                drop_rate: 0.2,
                dup_rate: 0.2,
                reorder_rate: 0.2,
                reorder_window: 10_000,
            });
            let (got, _) = run_pair(plan, 40, seed);
            assert_eq!(got, (0..40).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn transient_outage_heals() {
        // Link cut for 200 ms starting at t=0; retransmission backoff
        // rides out the outage.
        for seed in 0..5 {
            let plan = FaultPlan::default().outage(0, 1, 0, 200_000);
            let (got, net) = run_pair(plan, 10, seed);
            assert_eq!(got, (0..10).collect::<Vec<_>>(), "seed {seed}");
            assert!(net.stats().fault_counters().outage_drops > 0);
        }
    }

    #[test]
    fn crash_restart_resync_recovers() {
        // Node 1 (receiver) crashes shortly after the sends begin and
        // restarts later; the orchestrator injects Restart at up_at.
        for seed in 0..10 {
            let mut net: Network<Message> = Network::new(seed);
            net.set_default_latency(LatencyModel::Constant(1_000));
            net.set_faults(FaultPlan::default().crash(1, 5_000, 150_000).drop_rate(0.1));
            let cfg = TransportConfig::for_latency_mean(1_000.0);
            let mut eps = [
                Endpoint::new(0, cfg, seed ^ 0xA),
                Endpoint::new(1, cfg, seed ^ 0xB),
            ];
            // Make the crashing node a *transport participant* first, so
            // restart has peers to resync with.
            eps[1].send(0, update(1, 999), &mut net);
            for i in 0..20 {
                eps[0].send(1, update(0, i), &mut net);
            }
            net.inject(150_000, 1, Message::Restart);
            let mut got = Vec::new();
            let mut steps = 0u64;
            while let Some(d) = net.next() {
                steps += 1;
                assert!(steps < 1_000_000, "seed {seed}: no convergence");
                let to = d.to;
                for appd in eps[to].on_delivery(d, &mut net) {
                    if appd.to == 1 {
                        got.push(seq_of(&appd.msg));
                    }
                }
            }
            assert_eq!(got, (0..20).collect::<Vec<_>>(), "seed {seed}");
            assert!(
                eps[0].is_quiescent() && eps[1].is_quiescent(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn crashed_sender_recovers_via_restart() {
        // The *sender* crashes with unacknowledged frames journaled; on
        // restart it resyncs and retransmits them.
        for seed in 0..10 {
            let mut net: Network<Message> = Network::new(seed);
            net.set_default_latency(LatencyModel::Constant(1_000));
            net.set_faults(FaultPlan::default().crash(0, 1_500, 100_000));
            let cfg = TransportConfig::for_latency_mean(1_000.0);
            let mut eps = [
                Endpoint::new(0, cfg, seed ^ 0xA),
                Endpoint::new(1, cfg, seed ^ 0xB),
            ];
            // First frame gets out before the crash; the rest are sent
            // while down (journaled, dropped on the wire).
            eps[0].send(1, update(0, 0), &mut net);
            let mut injected = false;
            let mut sent_rest = false;
            net.inject(
                2_000,
                0,
                Message::ApplyTxn {
                    rel: 0,
                    delta: Bag::new(),
                    global: None,
                },
            );
            net.inject(100_000, 0, Message::Restart);
            let mut got = Vec::new();
            let mut steps = 0u64;
            while let Some(d) = net.next() {
                steps += 1;
                assert!(steps < 1_000_000, "seed {seed}: no convergence");
                let to = d.to;
                for appd in eps[to].on_delivery(d, &mut net) {
                    match appd.msg {
                        Message::ApplyTxn { .. } if !sent_rest => {
                            // ENV injection arrives while node 0 is down:
                            // its database applied the txn; the transport
                            // journals updates it cannot put on the wire.
                            sent_rest = true;
                            for i in 1..10 {
                                eps[0].send(1, update(0, i), &mut net);
                            }
                        }
                        Message::Restart => injected = true,
                        ref m @ Message::Update(_) if appd.to == 1 => {
                            got.push(seq_of(m));
                        }
                        _ => {}
                    }
                }
            }
            let _ = injected;
            assert_eq!(got, (0..10).collect::<Vec<_>>(), "seed {seed}");
            assert!(eps[0].is_quiescent(), "seed {seed}");
        }
    }

    #[test]
    fn stats_separate_logical_from_physical() {
        let (_, net) = run_pair(FaultPlan::default().drop_rate(0.25), 50, 7);
        let s = net.stats();
        assert_eq!(
            s.label_logical("update").messages,
            50,
            "each update delivered exactly once logically"
        );
        assert!(
            s.label("update").messages >= 50,
            "physical includes retransmissions"
        );
        assert!(s.inflation() > 1.0);
    }

    #[test]
    fn transport_net_wraps_sends() {
        let mut net: Network<Message> = Network::new(0);
        let mut ep = Endpoint::new(0, TransportConfig::default(), 1);
        {
            let mut tnet = TransportNet::new(&mut ep, &mut net);
            tnet.send(0, 1, update(0, 0));
            assert_eq!(tnet.now(), 0);
        }
        assert_eq!(ep.outbox_len(1), 1);
        let d = net.next().unwrap();
        assert!(matches!(d.msg, Message::Frame { seq: 0, .. }));
    }

    #[test]
    fn config_validation_rejects_inverted_backoff_and_dominant_jitter() {
        assert!(TransportConfig::default().validate().is_ok());
        for mean in [1.0, 100.0, 2_000.0, 1_000_000.0] {
            assert!(
                TransportConfig::for_latency_mean(mean).validate().is_ok(),
                "for_latency_mean({mean}) must always be valid"
            );
        }
        let inverted = TransportConfig {
            rto_initial: 10_000,
            rto_max: 9_999,
            ..Default::default()
        };
        assert!(matches!(
            inverted.validate(),
            Err(TransportConfigError::BackoffCeilingBelowInitial { .. })
        ));
        let noisy = TransportConfig {
            rto_initial: 5_000,
            jitter: 5_000,
            ..Default::default()
        };
        assert!(matches!(
            noisy.validate(),
            Err(TransportConfigError::JitterSwampsRto { .. })
        ));
        // Errors render their offending values.
        let msg = inverted.validate().unwrap_err().to_string();
        assert!(msg.contains("9999") && msg.contains("10000"), "got: {msg}");
    }

    #[test]
    fn restart_handler_is_passthrough_free() {
        // Restart consumed by the endpoint, nothing re-dispatched.
        let mut net: Network<Message> = Network::new(0);
        let mut ep = Endpoint::new(1, TransportConfig::default(), 1);
        net.inject(10, 1, Message::Restart);
        let d = net.next().unwrap();
        assert!(ep.on_delivery(d, &mut net).is_empty());
    }
}
