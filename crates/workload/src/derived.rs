//! Derived views: views defined over *other views* instead of base
//! relations — the stacked half of the maintenance DAG.
//!
//! A [`DerivedSpec`] names a parent (a registered [`crate::ViewSpec`] or
//! an earlier derived view — stacks compose) and one [`DerivedOp`] to
//! apply to the parent's output rows. The two operators cover the DAG
//! experiment space:
//!
//! * [`DerivedOp::Select`] — positional σ/Π over the parent's rows.
//!   σ and Π are **linear** in the signed-delta algebra, so a child's
//!   install delta is literally the operator applied to the parent's
//!   install delta — no state, no recompute.
//! * [`DerivedOp::Aggregate`] — Σ/group-by via
//!   [`dw_relational::AggregateState`], which folds the parent's signed
//!   delta into per-group accumulators (support multisets make MIN/MAX
//!   retractions local).
//!
//! Either way the maintenance bill of a derived view is **zero source
//! messages**: the parent's committed install delta is fed to the child
//! locally at the warehouse; only the base layer ever pays the paper's
//! `2(n−1)`.

use dw_relational::{AggregateSpec, Bag, CmpOp, Predicate, RelationalError, Value};

/// The operator a derived view applies to its parent's output rows.
#[derive(Clone, Debug, PartialEq)]
pub enum DerivedOp {
    /// Positional σ/Π over the parent's rows (Kleene three-valued σ:
    /// comparisons against NULL never select, matching PR 5's predicate
    /// semantics end to end).
    Select {
        /// Conjunctive comparisons `(column, op, constant)` against the
        /// parent's output positions.
        selects: Vec<(usize, CmpOp, Value)>,
        /// Output column positions; `None` keeps the parent's full width.
        projection: Option<Vec<usize>>,
    },
    /// Σ/group-by over the parent's rows.
    Aggregate(AggregateSpec),
}

impl DerivedOp {
    /// Is the operator linear in the signed-delta algebra? (Linear ⇒ a
    /// parent delta maps to a child delta by plain re-evaluation;
    /// non-linear ⇒ the child keeps incremental state.)
    pub fn is_linear(&self) -> bool {
        matches!(self, DerivedOp::Select { .. })
    }

    /// Output row width given the parent's width.
    pub fn output_width(&self, parent_width: usize) -> usize {
        match self {
            DerivedOp::Select { projection, .. } => {
                projection.as_ref().map_or(parent_width, Vec::len)
            }
            DerivedOp::Aggregate(spec) => spec.output_width(),
        }
    }

    /// Validate every referenced column against the parent's width.
    pub fn validate(&self, parent_width: usize) -> Result<(), RelationalError> {
        match self {
            DerivedOp::Select {
                selects,
                projection,
            } => {
                for c in selects
                    .iter()
                    .map(|(c, _, _)| *c)
                    .chain(projection.iter().flatten().copied())
                {
                    if c >= parent_width {
                        return Err(RelationalError::InvalidViewDef {
                            reason: format!(
                                "derived column {c} out of range for width-{parent_width} parent"
                            ),
                        });
                    }
                }
                Ok(())
            }
            DerivedOp::Aggregate(spec) => spec.validate(parent_width),
        }
    }

    /// Evaluate over a whole parent bag — the fresh-recompute oracle.
    ///
    /// For [`DerivedOp::Select`] this doubles as the delta propagator
    /// (σ/Π are linear, so `eval(Δparent)` *is* the child's delta); for
    /// aggregates the incremental path lives in the registry's
    /// [`dw_relational::AggregateState`] and this recompute is what it is
    /// checked against.
    pub fn eval(&self, parent: &Bag) -> Result<Bag, RelationalError> {
        match self {
            DerivedOp::Select {
                selects,
                projection,
            } => {
                let preds: Vec<Predicate> = selects
                    .iter()
                    .map(|&(attr, op, ref value)| Predicate::Cmp {
                        attr,
                        op,
                        value: value.clone(),
                    })
                    .collect();
                let filtered = parent.filter(|t| preds.iter().all(|p| p.eval(t)));
                Ok(match projection {
                    Some(cols) => filtered.map_tuples(|t| t.project(cols)),
                    None => filtered,
                })
            }
            DerivedOp::Aggregate(spec) => spec.eval(parent),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DerivedOp::Select { .. } => "select",
            DerivedOp::Aggregate(_) => "aggregate",
        }
    }
}

/// One derived view: a name, a parent reference (by registered name) and
/// the operator to apply. Parents must be registered first — the
/// registry's topological ordering rejects forward references and cycles.
#[derive(Clone, Debug, PartialEq)]
pub struct DerivedSpec {
    /// Display name (unique per scenario by convention).
    pub name: String,
    /// Name of the parent view (a base [`crate::ViewSpec`] or an earlier
    /// derived view).
    pub parent: String,
    /// The operator over the parent's rows.
    pub op: DerivedOp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::{tup, AggFn};

    #[test]
    fn select_eval_is_linear_in_deltas() {
        let op = DerivedOp::Select {
            selects: vec![(1, CmpOp::Ge, Value::Int(5))],
            projection: Some(vec![0]),
        };
        let before = Bag::from_pairs([(tup![1, 9], 1), (tup![2, 3], 1)]);
        let delta = Bag::from_pairs([(tup![1, 9], -1), (tup![3, 7], 2)]);
        // eval(before + Δ) == eval(before) + eval(Δ)
        let whole = op.eval(&before.plus(&delta)).unwrap();
        let parts = op.eval(&before).unwrap().plus(&op.eval(&delta).unwrap());
        assert_eq!(whole, parts);
        assert!(op.is_linear());
    }

    #[test]
    fn select_null_never_selected() {
        let op = DerivedOp::Select {
            selects: vec![(0, CmpOp::Ge, Value::Int(0))],
            projection: None,
        };
        let rows = Bag::from_pairs([(tup![Value::Null], 1), (tup![1], 1)]);
        assert_eq!(op.eval(&rows).unwrap(), Bag::from_tuples([tup![1]]));
    }

    #[test]
    fn aggregate_eval_delegates_to_spec() {
        let op = DerivedOp::Aggregate(AggregateSpec {
            group_by: vec![0],
            aggs: vec![AggFn::CountRows],
        });
        let rows = Bag::from_pairs([(tup![1, 5], 2), (tup![2, 9], 1)]);
        let out = op.eval(&rows).unwrap();
        assert_eq!(out, Bag::from_tuples([tup![1, 2], tup![2, 1]]));
        assert!(!op.is_linear());
        assert_eq!(op.output_width(2), 2);
    }

    #[test]
    fn validate_rejects_out_of_range_columns() {
        let op = DerivedOp::Select {
            selects: vec![(5, CmpOp::Eq, Value::Int(1))],
            projection: None,
        };
        assert!(op.validate(2).is_err());
        let op = DerivedOp::Select {
            selects: vec![],
            projection: Some(vec![0, 3]),
        };
        assert!(op.validate(2).is_err());
        assert!(op.validate(4).is_ok());
    }
}
