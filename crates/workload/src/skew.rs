//! Zipf-skewed value sampling.

use dw_rng::Rng64;

/// A Zipf(θ) sampler over `{0, 1, …, n−1}`: `P(k) ∝ 1/(k+1)^θ`.
///
/// `θ = 0` degenerates to uniform; `θ ≈ 1` is the classic heavy skew used
/// to stress join hot spots. Implemented with a precomputed CDF and binary
/// search — exact, no rejection, deterministic under a seeded RNG.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over a domain of size `n ≥ 1`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "domain must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one value in `0..n`.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng64::new(1);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.3, "counts {counts:?} not roughly uniform");
    }

    #[test]
    fn skewed_when_theta_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng64::new(2);
        let mut zero = 0u32;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        // P(0) ≈ 1/H_100 ≈ 0.19.
        let p = zero as f64 / n as f64;
        assert!((0.14..0.25).contains(&p), "P(0) was {p}");
    }

    #[test]
    fn samples_in_domain() {
        let z = Zipf::new(3, 2.0);
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn singleton_domain() {
        let z = Zipf::new(1, 1.0);
        let mut rng = Rng64::new(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
