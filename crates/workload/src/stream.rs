//! The main stream generator.

use crate::scenario::{GeneratedScenario, ScheduledTxn};
use crate::skew::Zipf;
use dw_protocol::GlobalPart;
use dw_relational::{tup, Bag, KeySpec, RelationalError, Schema, Tuple, ViewDefBuilder};
use dw_rng::Rng64;
use dw_simnet::Time;

/// Inter-arrival time distribution for transactions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GapKind {
    /// Poisson process: exponential gaps with the given mean.
    Exponential,
    /// Fixed gaps.
    Constant,
    /// Uniform in `[0, 2·mean]`.
    Uniform,
}

/// How the target source of each transaction is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourcePick {
    /// Uniformly at random.
    Uniform,
    /// Cyclic `0, 1, …, n−1, 0, …`.
    RoundRobin,
    /// Alternate between the two chain *ends* — the §6.2 adversarial
    /// pattern that keeps Nested SWEEP oscillating.
    AlternatingEnds,
}

/// Configuration of a generated workload.
///
/// The generated chain uses one relation per source, each with schema
/// `R{i+1}[K, A, B]`: `K` is a unique key (counter), `A`/`B` are join
/// attributes joined as `R{i}.B = R{i+1}.A`, with values drawn
/// Zipf(θ)-skewed from `0..domain`. When `keyed` is set the projection
/// retains every `K` (the Strobe-family requirement); otherwise it projects
/// the chain's end attributes only, which SWEEP supports and Strobe must
/// reject.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Number of sources / chain relations (`n ≥ 1`).
    pub n_sources: usize,
    /// Initial tuples per relation.
    pub initial_per_source: usize,
    /// Join-attribute domain size (smaller → denser joins).
    pub domain: u64,
    /// Zipf skew of join values (0 = uniform).
    pub zipf_theta: f64,
    /// Number of transactions to generate.
    pub updates: usize,
    /// Mean inter-arrival gap (µs).
    pub mean_gap: Time,
    /// Gap distribution.
    pub gap: GapKind,
    /// Probability a tuple-level change is an insert (vs. delete).
    pub insert_ratio: f64,
    /// Tuples per transaction (1 = single update transactions; >1 =
    /// source-local transactions, update type 2 of §2).
    pub batch_size: usize,
    /// Retain all keys in the projection (Strobe-compatible).
    pub keyed: bool,
    /// Target-source selection.
    pub source_pick: SourcePick,
    /// Every k-th transaction becomes a *global transaction* (update type
    /// 3 of §2) spanning [`StreamConfig::global_span`] consecutive sources
    /// — 0 disables global transactions.
    pub global_every: usize,
    /// Sources spanned by each global transaction (≥ 2 to be meaningful,
    /// clamped to `n_sources`).
    pub global_span: usize,
    /// RNG seed — same seed, same scenario.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            n_sources: 3,
            initial_per_source: 50,
            domain: 16,
            zipf_theta: 0.0,
            updates: 40,
            mean_gap: 2_000,
            gap: GapKind::Exponential,
            insert_ratio: 0.6,
            batch_size: 1,
            keyed: true,
            source_pick: SourcePick::Uniform,
            global_every: 0,
            global_span: 2,
            seed: 42,
        }
    }
}

impl StreamConfig {
    /// Generate the scenario (view, keys, initial data, transaction
    /// stream). Deterministic in the config.
    pub fn generate(&self) -> Result<GeneratedScenario, RelationalError> {
        assert!(self.n_sources >= 1);
        assert!(self.batch_size >= 1);
        let mut rng = Rng64::new(self.seed);
        let zipf = Zipf::new(self.domain.max(1) as usize, self.zipf_theta);

        // --- View definition ------------------------------------------
        let mut b = ViewDefBuilder::new();
        for i in 0..self.n_sources {
            b = b.relation(Schema::new(format!("R{}", i + 1), ["K", "A", "B"])?);
        }
        for i in 0..self.n_sources.saturating_sub(1) {
            b = b.join(format!("R{}.B", i + 1), format!("R{}.A", i + 2));
        }
        if self.keyed {
            let mut proj: Vec<String> = (0..self.n_sources)
                .map(|i| format!("R{}.K", i + 1))
                .collect();
            proj.push(format!("R{}.B", self.n_sources));
            b = b.project(proj);
        } else {
            b = b.project(["R1.A".to_string(), format!("R{}.B", self.n_sources)]);
        }
        let view = b.build()?;
        let keys = KeySpec::new(vec![vec![0]; self.n_sources]);

        // --- Initial contents + shadow state --------------------------
        let mut shadow: Vec<Vec<Tuple>> = Vec::with_capacity(self.n_sources);
        let mut next_key: Vec<i64> = vec![0; self.n_sources];
        let mut initial = Vec::with_capacity(self.n_sources);
        for key_counter in next_key.iter_mut().take(self.n_sources) {
            let mut bag = Bag::new();
            let mut live = Vec::new();
            for _ in 0..self.initial_per_source {
                let t = tup![
                    *key_counter,
                    zipf.sample(&mut rng) as i64,
                    zipf.sample(&mut rng) as i64
                ];
                *key_counter += 1;
                bag.add(t.clone(), 1);
                live.push(t);
            }
            initial.push(bag);
            shadow.push(live);
        }

        // --- Transaction stream ---------------------------------------
        let mut txns = Vec::with_capacity(self.updates);
        let mut now: Time = 0;
        let mut rr = 0usize;
        let mut next_gid: u64 = 0;
        for k in 0..self.updates {
            now += self.sample_gap(&mut rng);
            // Global transactions: one multi-source transaction whose
            // parts commit "simultaneously" at `global_span` consecutive
            // sources, tagged with a shared gid.
            if self.global_every > 0 && k % self.global_every == self.global_every - 1 {
                let span = self.global_span.clamp(2, self.n_sources);
                if span >= 2 {
                    let start = rng.usize_below(self.n_sources - span + 1);
                    let gid = next_gid;
                    next_gid += 1;
                    for part_src in start..start + span {
                        let t = tup![
                            next_key[part_src],
                            zipf.sample(&mut rng) as i64,
                            zipf.sample(&mut rng) as i64
                        ];
                        next_key[part_src] += 1;
                        shadow[part_src].push(t.clone());
                        txns.push(ScheduledTxn {
                            at: now,
                            source: part_src,
                            delta: Bag::from_pairs([(t, 1)]),
                            global: Some(GlobalPart {
                                gid,
                                parts: span as u32,
                            }),
                        });
                    }
                    continue;
                }
            }
            let source = match self.source_pick {
                SourcePick::Uniform => rng.usize_below(self.n_sources),
                SourcePick::RoundRobin => {
                    let s = rr;
                    rr = (rr + 1) % self.n_sources;
                    s
                }
                SourcePick::AlternatingEnds => {
                    if k % 2 == 0 {
                        0
                    } else {
                        self.n_sources - 1
                    }
                }
            };
            let mut delta = Bag::new();
            for _ in 0..self.batch_size {
                let do_insert = shadow[source].is_empty() || rng.chance(self.insert_ratio);
                if do_insert {
                    let t = tup![
                        next_key[source],
                        zipf.sample(&mut rng) as i64,
                        zipf.sample(&mut rng) as i64
                    ];
                    next_key[source] += 1;
                    shadow[source].push(t.clone());
                    delta.add(t, 1);
                } else {
                    let idx = rng.usize_below(shadow[source].len());
                    let t = shadow[source].swap_remove(idx);
                    delta.add(t, -1);
                }
            }
            if delta.is_empty() {
                continue; // insert+delete of the same tuple cancelled out
            }
            txns.push(ScheduledTxn {
                at: now,
                source,
                delta,
                global: None,
            });
        }
        Ok(GeneratedScenario {
            view,
            keys,
            initial,
            txns,
        })
    }

    fn sample_gap(&self, rng: &mut Rng64) -> Time {
        match self.gap {
            GapKind::Constant => self.mean_gap,
            GapKind::Uniform => {
                if self.mean_gap == 0 {
                    0
                } else {
                    rng.u64_in(0, self.mean_gap * 2)
                }
            }
            GapKind::Exponential => rng.exponential(self.mean_gap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::BaseRelation;

    #[test]
    fn deterministic_under_seed() {
        let cfg = StreamConfig::default();
        let a = cfg.generate().unwrap();
        let b = cfg.generate().unwrap();
        assert_eq!(a.txns, b.txns);
        assert_eq!(a.initial, b.initial);
    }

    #[test]
    fn different_seed_different_stream() {
        let a = StreamConfig::default().generate().unwrap();
        let b = StreamConfig {
            seed: 7,
            ..StreamConfig::default()
        }
        .generate()
        .unwrap();
        assert_ne!(a.txns, b.txns);
    }

    #[test]
    fn txns_are_valid_against_shadow_state() {
        // Replaying the generated stream against real BaseRelations must
        // never hit a negative multiplicity.
        let cfg = StreamConfig {
            updates: 200,
            insert_ratio: 0.4, // delete-heavy
            ..StreamConfig::default()
        };
        let s = cfg.generate().unwrap();
        let mut rels: Vec<BaseRelation> = s
            .initial
            .iter()
            .enumerate()
            .map(|(i, bag)| {
                let mut r = BaseRelation::new(s.view.schema(i).clone());
                r.apply_delta(bag).unwrap();
                r
            })
            .collect();
        for t in &s.txns {
            rels[t.source].apply_delta(&t.delta).unwrap();
        }
    }

    #[test]
    fn times_are_monotone() {
        let s = StreamConfig {
            updates: 100,
            gap: GapKind::Exponential,
            ..StreamConfig::default()
        }
        .generate()
        .unwrap();
        assert!(s.txns.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn keyed_view_accepts_keyspec() {
        let s = StreamConfig {
            keyed: true,
            ..StreamConfig::default()
        }
        .generate()
        .unwrap();
        assert!(s.keys.view_key_map(&s.view).is_ok());
    }

    #[test]
    fn unkeyed_view_rejects_keyspec() {
        let s = StreamConfig {
            keyed: false,
            ..StreamConfig::default()
        }
        .generate()
        .unwrap();
        assert!(
            s.keys.view_key_map(&s.view).is_err(),
            "projection drops keys; Strobe must be rejected"
        );
    }

    #[test]
    fn alternating_ends_pattern() {
        let s = StreamConfig {
            n_sources: 4,
            updates: 6,
            source_pick: SourcePick::AlternatingEnds,
            insert_ratio: 1.0,
            ..StreamConfig::default()
        }
        .generate()
        .unwrap();
        let sources: Vec<usize> = s.txns.iter().map(|t| t.source).collect();
        assert_eq!(sources, vec![0, 3, 0, 3, 0, 3]);
    }

    #[test]
    fn batch_size_makes_source_local_txns() {
        let s = StreamConfig {
            batch_size: 5,
            insert_ratio: 1.0,
            updates: 3,
            ..StreamConfig::default()
        }
        .generate()
        .unwrap();
        for t in &s.txns {
            assert_eq!(t.delta.distinct_len(), 5);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let s = StreamConfig {
            n_sources: 3,
            updates: 6,
            source_pick: SourcePick::RoundRobin,
            insert_ratio: 1.0,
            ..StreamConfig::default()
        }
        .generate()
        .unwrap();
        let sources: Vec<usize> = s.txns.iter().map(|t| t.source).collect();
        assert_eq!(sources, vec![0, 1, 2, 0, 1, 2]);
    }
}

#[cfg(test)]
mod global_tests {
    use super::*;

    #[test]
    fn global_txns_generated_with_shared_gid() {
        let s = StreamConfig {
            n_sources: 4,
            updates: 12,
            global_every: 3,
            global_span: 2,
            insert_ratio: 1.0,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let globals: Vec<_> = s.txns.iter().filter(|t| t.global.is_some()).collect();
        assert!(!globals.is_empty());
        // Each gid appears exactly `parts` times, at one timestamp, on
        // distinct consecutive sources.
        use std::collections::HashMap;
        let mut by_gid: HashMap<u64, Vec<_>> = HashMap::new();
        for t in globals {
            by_gid.entry(t.global.unwrap().gid).or_default().push(t);
        }
        for parts in by_gid.values() {
            assert_eq!(parts.len(), parts[0].global.unwrap().parts as usize);
            assert!(parts.windows(2).all(|w| w[0].at == w[1].at));
            assert!(parts.windows(2).all(|w| w[1].source == w[0].source + 1));
        }
    }

    #[test]
    fn global_spans_clamped_to_chain() {
        let s = StreamConfig {
            n_sources: 2,
            updates: 6,
            global_every: 2,
            global_span: 10, // clamped to 2
            insert_ratio: 1.0,
            ..Default::default()
        }
        .generate()
        .unwrap();
        for t in &s.txns {
            if let Some(g) = t.global {
                assert_eq!(g.parts, 2);
            }
        }
    }

    #[test]
    fn disabled_by_default() {
        let s = StreamConfig::default().generate().unwrap();
        assert!(s.txns.iter().all(|t| t.global.is_none()));
    }
}
