//! Sharded scenario generation: a base chain whose values are *banded*
//! by a [`ShardMap`], with a tunable fraction of cross-band updates.
//!
//! The sharded scheduler's throughput claim (experiment E18) needs a
//! workload where shard-locality is real: tuples whose values all fall
//! in one band join only within that band, so `S` bands give `S`
//! independent sweep lanes. This generator builds exactly that — every
//! relation holds per-band tuple populations drawn from disjoint value
//! ranges, updates pick a *home shard* round-robin (balanced lanes), and
//! `cross_shard_frac` of them deliberately straddle two bands to
//! exercise the escalation path.
//!
//! Every generated view runs under [`ViewPolicy::Sweep`]: one install
//! per consumed update. That makes the install fingerprint a pure
//! function of arrival order — the property E18's `conforms` check and
//! the conformance suite compare across the sharded and unsharded
//! engines even when sweeps overlap in time. (Deferred cadences flush at
//! queue-drain points, which concurrency legitimately moves; pinning
//! Sweep keeps the cross-engine comparison exact under bursts.)

use crate::multiview::{MultiViewScenario, ViewPolicy, ViewSpec};
use crate::scenario::ScheduledTxn;
use dw_relational::{
    Bag, KeySpec, RelationalError, Schema, ShardMap, Tuple, Value, ViewDefBuilder,
};
use dw_rng::Rng64;
use dw_simnet::Time;

/// Configuration for banded, shard-local scenarios.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of sources / chain relations (`n ≥ 2`).
    pub n_sources: usize,
    /// Number of shards (value bands), `1 ..= 64`.
    pub shards: usize,
    /// Width of each band: shard `s` owns values `[s·width, (s+1)·width)`.
    pub width: i64,
    /// Distinct join values actually used inside each band (≤ width;
    /// smaller → denser joins).
    pub band_domain: i64,
    /// Initial tuples per relation *per shard*.
    pub initial_per_shard: usize,
    /// Number of scheduled transactions.
    pub updates: usize,
    /// Constant inter-arrival gap (µs). Small gaps create the bursts
    /// that let per-shard lanes overlap.
    pub mean_gap: Time,
    /// Probability an update is a deletion of a live tuple (valid by
    /// construction — it removes something currently present).
    pub delete_ratio: f64,
    /// Fraction of updates whose delta straddles two bands (escalates to
    /// a global sweep).
    pub cross_shard_frac: f64,
    /// How many views to register (full-span, SWEEP cadence).
    pub n_views: usize,
    /// RNG seed — same seed, same scenario.
    pub seed: u64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            n_sources: 3,
            shards: 2,
            width: 1_000,
            band_domain: 12,
            initial_per_shard: 12,
            updates: 24,
            mean_gap: 400,
            delete_ratio: 0.2,
            cross_shard_frac: 0.0,
            n_views: 2,
            seed: 7,
        }
    }
}

/// A generated sharded scenario: the multi-view scenario plus the
/// partitioner that bands it.
#[derive(Clone, Debug)]
pub struct ShardedScenario {
    /// Base chain, initial contents, txns, and view specs.
    pub scenario: MultiViewScenario,
    /// The partitioner the scheduler (and E18) should use.
    pub map: ShardMap,
}

impl ShardedConfig {
    /// Band-local value: shard `s`, offset drawn below `band_domain`.
    fn band_value(&self, s: usize, r: &mut Rng64) -> i64 {
        s as i64 * self.width + r.u64_below(self.band_domain.max(1) as u64) as i64
    }

    /// One tuple pure in shard `s`.
    fn pure_tuple(&self, s: usize, r: &mut Rng64) -> Tuple {
        Tuple::new(vec![
            Value::Int(self.band_value(s, r)),
            Value::Int(self.band_value(s, r)),
        ])
    }

    /// Generate the banded scenario.
    pub fn generate(&self) -> Result<ShardedScenario, RelationalError> {
        assert!(self.n_sources >= 2, "need a chain to sweep");
        assert!((1..=64).contains(&self.shards), "shards must be in 1..=64");
        assert!(
            self.band_domain <= self.width,
            "band_domain must fit inside the band width"
        );
        let n = self.n_sources;
        let map = ShardMap::range(self.width, self.shards);
        let mut r = Rng64::new(self.seed ^ 0x5AAD_ED00);

        // Base chain R1[A,B] ⋈ … ⋈ Rn[A,B] on R_k.B = R_{k+1}.A.
        let mut b = ViewDefBuilder::new();
        for k in 0..n {
            b = b.relation(Schema::new(format!("R{}", k + 1), ["A", "B"])?);
        }
        let mut prev: Option<String> = None;
        for k in 0..n {
            let name = format!("R{}", k + 1);
            if let Some(p) = prev {
                b = b.join(format!("{p}.B"), format!("{name}.A"));
            }
            prev = Some(name);
        }
        let base = b.build()?;

        // Initial contents: per relation, a pure population per band.
        let mut initial = Vec::with_capacity(n);
        let mut live: Vec<Vec<Vec<Tuple>>> = Vec::with_capacity(n); // [rel][shard]
        for _ in 0..n {
            let mut bag = Bag::new();
            let mut rel_live = vec![Vec::new(); self.shards];
            for (s, shard_live) in rel_live.iter_mut().enumerate() {
                for _ in 0..self.initial_per_shard {
                    let t = self.pure_tuple(s, &mut r);
                    bag.add(t.clone(), 1);
                    shard_live.push(t);
                }
            }
            initial.push(bag);
            live.push(rel_live);
        }

        // Transactions: home shard round-robin, constant gaps, a
        // configurable slice of cross-band escalators.
        let mut txns = Vec::with_capacity(self.updates);
        for k in 0..self.updates {
            let at = (k as Time + 1) * self.mean_gap;
            let source = r.usize_below(n);
            let home = k % self.shards;
            let delta = if self.shards > 1 && r.chance(self.cross_shard_frac) {
                // Straddle home and the next band: one impure tuple.
                let other = (home + 1) % self.shards;
                let t = Tuple::new(vec![
                    Value::Int(self.band_value(home, &mut r)),
                    Value::Int(self.band_value(other, &mut r)),
                ]);
                Bag::from_pairs([(t, 1)])
            } else if r.chance(self.delete_ratio) && !live[source][home].is_empty() {
                let idx = r.usize_below(live[source][home].len());
                let t = live[source][home].swap_remove(idx);
                Bag::from_pairs([(t, -1)])
            } else {
                let t = self.pure_tuple(home, &mut r);
                live[source][home].push(t.clone());
                Bag::from_pairs([(t, 1)])
            };
            txns.push(ScheduledTxn {
                at,
                source,
                delta,
                global: None,
            });
        }

        let views = (0..self.n_views)
            .map(|v| ViewSpec {
                policy: ViewPolicy::Sweep,
                ..ViewSpec::full(format!("V{v}"), n)
            })
            .collect();

        Ok(ShardedScenario {
            scenario: MultiViewScenario {
                base,
                keys: KeySpec::new(vec![Vec::new(); n]),
                initial,
                txns,
                views,
                derived: Vec::new(),
            },
            map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::DeltaClass;

    #[test]
    fn shard_local_scenarios_are_fully_pure() {
        let g = ShardedConfig {
            shards: 4,
            updates: 40,
            cross_shard_frac: 0.0,
            seed: 11,
            ..Default::default()
        }
        .generate()
        .unwrap();
        assert_eq!(g.map.shards(), 4);
        for bag in &g.scenario.initial {
            for (t, _) in bag.iter() {
                assert!(g.map.shard_of_tuple(t).is_some(), "impure initial tuple");
            }
        }
        let mut seen = vec![0usize; 4];
        for txn in &g.scenario.txns {
            match g.map.classify_delta(&txn.delta) {
                DeltaClass::Pure(s) => seen[s] += 1,
                other => panic!("local workload produced {other:?}"),
            }
        }
        // Round-robin homes: every shard carries load.
        assert!(seen.iter().all(|&c| c >= 40 / 4 - 1), "{seen:?}");
    }

    #[test]
    fn cross_shard_fraction_escalates() {
        let g = ShardedConfig {
            shards: 2,
            updates: 60,
            cross_shard_frac: 0.3,
            seed: 13,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let impure = g
            .scenario
            .txns
            .iter()
            .filter(|t| matches!(g.map.classify_delta(&t.delta), DeltaClass::Escalate { .. }))
            .count();
        assert!((6..=30).contains(&impure), "impure={impure}");
    }

    #[test]
    fn deletes_remove_live_tuples_only() {
        let g = ShardedConfig {
            delete_ratio: 0.5,
            updates: 50,
            seed: 17,
            ..Default::default()
        }
        .generate()
        .unwrap();
        // Replay per-relation shadows; no count may go negative.
        let mut shadows = g.scenario.initial.clone();
        let mut any_delete = false;
        for txn in &g.scenario.txns {
            shadows[txn.source].merge(&txn.delta);
            if txn.delta.iter().any(|(_, c)| c < 0) {
                any_delete = true;
            }
            assert!(shadows[txn.source].all_positive(), "negative count");
        }
        assert!(any_delete, "delete_ratio 0.5 produced no deletes");
    }

    #[test]
    fn views_are_sweep_cadence_full_span() {
        let g = ShardedConfig::default().generate().unwrap();
        assert_eq!(g.scenario.views.len(), 2);
        for spec in &g.scenario.views {
            assert_eq!(spec.policy, ViewPolicy::Sweep);
            assert_eq!((spec.lo, spec.hi), (0, g.scenario.base.num_relations() - 1));
            spec.compile(&g.scenario.base).unwrap();
        }
    }
}
