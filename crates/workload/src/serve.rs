//! Read-mix generation for the serving layer: seeded streams of point
//! lookups, scans, and subscription registrations against maintained
//! views, with zipf-skewed key choice and per-read staleness bounds.
//!
//! The generator is pure scheduling — it decides *when* each reader
//! issues *what* against *which* view; the serve experiment resolves
//! the ops against a live [`ReadFrontend`]. Determinism matters the
//! same way it does for transaction streams: the equivalence suite
//! replays identical read schedules against engine runs and an oracle.
//!
//! [`ReadFrontend`]: ../dw_serve/struct.ReadFrontend.html

use dw_rng::Rng64;
use dw_simnet::Time;

use crate::skew::Zipf;

/// What one read op asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadKind {
    /// Point lookup: tuples whose `column` equals `key`.
    Point {
        /// Tuple column index to match on.
        column: usize,
        /// The looked-up key value.
        key: i64,
    },
    /// Full snapshot scan of the pinned epoch.
    Scan,
    /// Register a subscription on the view (delivered install deltas are
    /// drained at quiescence by the experiment).
    Subscribe,
    /// Poll the reader's standing bounded subscription on the view for
    /// queued install deltas — the op that can observe `Lagged` when
    /// backpressure dropped the queue.
    Poll,
}

/// One scheduled read operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOp {
    /// Virtual time the reader issues the op (the serve experiment
    /// processes it against the warehouse state as of this instant).
    pub at: Time,
    /// Issuing reader (stable per-reader stream index).
    pub reader: usize,
    /// Target view (registry slot index).
    pub view: usize,
    /// What is asked.
    pub kind: ReadKind,
    /// Staleness requirement, as a trailing window: the answer must
    /// reflect every update delivered before `at − window`. `None` reads
    /// whatever the pinned epoch holds.
    pub bound_window: Option<u64>,
}

/// Configuration for one read mix. Fractions for point/scan are taken in
/// order; the remainder subscribes.
#[derive(Clone, Debug)]
pub struct ReadMixConfig {
    /// Concurrent readers.
    pub readers: usize,
    /// Ops per reader.
    pub reads_per_reader: usize,
    /// First op no earlier than this.
    pub start: Time,
    /// Mean exponential gap between one reader's ops (µs).
    pub mean_gap: u64,
    /// Number of registered views to spread reads over.
    pub n_views: usize,
    /// Fraction of ops that are point lookups.
    pub point_frac: f64,
    /// Fraction of ops that are scans.
    pub scan_frac: f64,
    /// Fraction of ops that poll a standing bounded subscription (the
    /// remainder after point + scan + poll subscribes). Zero by default
    /// so existing mixes are byte-identical.
    pub poll_frac: f64,
    /// Fraction of point/scan ops carrying a staleness bound.
    pub bound_frac: f64,
    /// Trailing staleness window (µs) for bounded ops.
    pub bound_window: u64,
    /// Column point lookups match on.
    pub point_column: usize,
    /// Key domain for point lookups, sampled zipf-skewed (hot keys
    /// first).
    pub keys: Vec<i64>,
    /// Zipf θ over `keys` (0 = uniform).
    pub zipf_theta: f64,
    /// Master seed; each reader forks its own stream.
    pub seed: u64,
}

impl Default for ReadMixConfig {
    fn default() -> Self {
        ReadMixConfig {
            readers: 4,
            reads_per_reader: 8,
            start: 500,
            mean_gap: 800,
            n_views: 1,
            point_frac: 0.5,
            scan_frac: 0.4,
            poll_frac: 0.0,
            bound_frac: 0.3,
            bound_window: 2_000,
            point_column: 0,
            keys: vec![1, 2, 3, 5, 7, 9],
            zipf_theta: 0.8,
            seed: 7,
        }
    }
}

impl ReadMixConfig {
    /// Point-heavy, zipf-skewed preset: almost all ops are lookups over
    /// a wide key domain with θ high enough that a handful of hot keys
    /// absorb most of the traffic. This is the mix where an epoch point
    /// index and a read-through answer cache pay off; E21 runs it with
    /// the serving-layer machinery on and off.
    pub fn hot_key_points(readers: usize, reads_per_reader: usize, seed: u64) -> Self {
        ReadMixConfig {
            readers,
            reads_per_reader,
            point_frac: 0.92,
            scan_frac: 0.04,
            poll_frac: 0.0,
            bound_frac: 0.2,
            keys: (0..64).collect(),
            zipf_theta: 1.1,
            seed,
            ..ReadMixConfig::default()
        }
    }

    /// Subscriber-heavy preset with a steady poll pulse: every reader
    /// keeps a standing bounded subscription and polls it between
    /// lookups, so slow pollers under a tight `max_lag` trip the hub's
    /// backpressure and have to recover through a snapshot resume.
    pub fn laggy_subscribers(readers: usize, reads_per_reader: usize, seed: u64) -> Self {
        ReadMixConfig {
            readers,
            reads_per_reader,
            point_frac: 0.3,
            scan_frac: 0.1,
            poll_frac: 0.5,
            seed,
            ..ReadMixConfig::default()
        }
    }

    /// Generate the full schedule, sorted by issue time (ties broken by
    /// reader index so the order is total and deterministic).
    pub fn generate(&self) -> Vec<ReadOp> {
        assert!(self.readers >= 1 && self.n_views >= 1);
        assert!(!self.keys.is_empty(), "point lookups need a key domain");
        let zipf = Zipf::new(self.keys.len(), self.zipf_theta);
        let mut ops = Vec::with_capacity(self.readers * self.reads_per_reader);
        for reader in 0..self.readers {
            let mut rng = Rng64::new(self.seed).fork(0xEAD + reader as u64);
            let mut at = self.start;
            for _ in 0..self.reads_per_reader {
                at += 1 + rng.exponential(self.mean_gap);
                let view = rng.usize_below(self.n_views);
                let roll = rng.f64();
                let kind = if roll < self.point_frac {
                    ReadKind::Point {
                        column: self.point_column,
                        key: self.keys[zipf.sample(&mut rng) as usize],
                    }
                } else if roll < self.point_frac + self.scan_frac {
                    ReadKind::Scan
                } else if roll < self.point_frac + self.scan_frac + self.poll_frac {
                    ReadKind::Poll
                } else {
                    ReadKind::Subscribe
                };
                let bound_window = (!matches!(kind, ReadKind::Subscribe | ReadKind::Poll)
                    && rng.chance(self.bound_frac))
                .then_some(self.bound_window);
                ops.push(ReadOp {
                    at,
                    reader,
                    view,
                    kind,
                    bound_window,
                });
            }
        }
        ops.sort_by_key(|op| (op.at, op.reader));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        let cfg = ReadMixConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.readers * cfg.reads_per_reader);
        assert!(a
            .windows(2)
            .all(|w| (w[0].at, w[0].reader) <= (w[1].at, w[1].reader)));
        assert!(a.iter().all(|op| op.at > cfg.start));
        assert!(a.iter().all(|op| op.view < cfg.n_views));
    }

    #[test]
    fn fractions_steer_the_mix() {
        let cfg = ReadMixConfig {
            readers: 8,
            reads_per_reader: 50,
            point_frac: 1.0,
            scan_frac: 0.0,
            bound_frac: 1.0,
            ..ReadMixConfig::default()
        };
        let ops = cfg.generate();
        assert!(ops
            .iter()
            .all(|op| matches!(op.kind, ReadKind::Point { .. })));
        assert!(ops
            .iter()
            .all(|op| op.bound_window == Some(cfg.bound_window)));

        let subs_only = ReadMixConfig {
            point_frac: 0.0,
            scan_frac: 0.0,
            ..cfg
        };
        let ops = subs_only.generate();
        assert!(ops.iter().all(|op| matches!(op.kind, ReadKind::Subscribe)));
        assert!(
            ops.iter().all(|op| op.bound_window.is_none()),
            "subscriptions never carry staleness bounds"
        );
    }

    #[test]
    fn poll_fraction_emits_unbounded_poll_ops() {
        let cfg = ReadMixConfig::laggy_subscribers(6, 40, 11);
        let ops = cfg.generate();
        let polls = ops
            .iter()
            .filter(|op| matches!(op.kind, ReadKind::Poll))
            .count();
        assert!(polls > 0, "poll_frac=0.5 must schedule polls");
        assert!(ops
            .iter()
            .filter(|op| matches!(op.kind, ReadKind::Poll | ReadKind::Subscribe))
            .all(|op| op.bound_window.is_none()));
        // poll_frac defaults to zero: legacy mixes are untouched.
        assert!(ReadMixConfig::default()
            .generate()
            .iter()
            .all(|op| !matches!(op.kind, ReadKind::Poll)));
    }

    #[test]
    fn hot_key_preset_is_point_dominated() {
        let ops = ReadMixConfig::hot_key_points(8, 64, 3).generate();
        let points = ops
            .iter()
            .filter(|op| matches!(op.kind, ReadKind::Point { .. }))
            .count();
        assert!(
            points as f64 / ops.len() as f64 > 0.85,
            "point share {points}/{}",
            ops.len()
        );
    }

    #[test]
    fn zipf_skew_concentrates_point_keys() {
        let cfg = ReadMixConfig {
            readers: 16,
            reads_per_reader: 100,
            point_frac: 1.0,
            scan_frac: 0.0,
            zipf_theta: 1.2,
            keys: (0..50).collect(),
            ..ReadMixConfig::default()
        };
        let ops = cfg.generate();
        let hot = ops
            .iter()
            .filter(|op| matches!(op.kind, ReadKind::Point { key: 0, .. }))
            .count();
        // θ=1.2 over 50 keys puts well over a fifth of the mass on key 0.
        assert!(
            hot as f64 / ops.len() as f64 > 0.2,
            "hot-key share {hot}/{}",
            ops.len()
        );
    }
}
