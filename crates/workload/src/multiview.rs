//! Multi-view scenario generation: one shared base chain, many
//! registered views over contiguous spans of it.
//!
//! A multi-view warehouse hosts `V` SPJ views `Π σ (R_lo ⋈ … ⋈ R_hi)`
//! over one global chain `R_0 ⋈ … ⋈ R_{n−1}`. Each [`ViewSpec`] names a
//! contiguous span of the chain, its own per-relation selections, its
//! own projection, and its own maintenance cadence ([`ViewPolicy`]).
//! [`MultiViewConfig::generate`] reuses the single-view stream machinery
//! ([`crate::StreamConfig`]) for the base relations and the update
//! stream, then seeds a random (but always valid) set of view specs on
//! top.

use crate::derived::{DerivedOp, DerivedSpec};
use crate::scenario::ScheduledTxn;
use crate::stream::StreamConfig;
use dw_relational::{
    AggFn, AggregateSpec, Bag, CmpOp, KeySpec, RelationalError, Value, ViewDef, ViewDefBuilder,
};
use dw_rng::Rng64;

/// How a registered view wants its maintenance installed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewPolicy {
    /// SWEEP cadence: one install per update, complete consistency.
    Sweep,
    /// Nested-SWEEP cadence: deltas accumulate while work is in flight
    /// and install as one batch at drain — strong consistency.
    NestedSweep,
    /// Deferred refresh: install every `batch` relevant updates (and at
    /// drain) — strong consistency, maximal staleness.
    Deferred {
        /// Install after this many relevant updates accumulate.
        batch: usize,
    },
}

impl ViewPolicy {
    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ViewPolicy::Sweep => "sweep",
            ViewPolicy::NestedSweep => "nested-sweep",
            ViewPolicy::Deferred { .. } => "deferred",
        }
    }
}

/// One registered view: a contiguous span `[lo, hi]` of the base chain
/// with per-relation selections, a projection, and a maintenance policy.
#[derive(Clone, Debug)]
pub struct ViewSpec {
    /// Display name (unique per scenario by convention, not enforced).
    pub name: String,
    /// First base relation in the span (inclusive, 0-based chain index).
    pub lo: usize,
    /// Last base relation in the span (inclusive).
    pub hi: usize,
    /// Extra local selections: `(chain index, attr index within that
    /// relation, op, value)`. Applied on top of the base chain's
    /// (selection-free) relations.
    pub selects: Vec<(usize, usize, CmpOp, Value)>,
    /// Qualified projection attributes (`"R2.B"`); `None` keeps every
    /// column of the span.
    pub projection: Option<Vec<String>>,
    /// Maintenance cadence.
    pub policy: ViewPolicy,
}

impl ViewSpec {
    /// A full-width, selection-free, identity-projection view of the
    /// whole chain under SWEEP — the paper's single-view setup.
    pub fn full(name: impl Into<String>, n: usize) -> ViewSpec {
        ViewSpec {
            name: name.into(),
            lo: 0,
            hi: n.saturating_sub(1),
            selects: Vec::new(),
            projection: None,
            policy: ViewPolicy::Sweep,
        }
    }

    /// Compile this spec into a self-contained [`ViewDef`] over the span
    /// `[lo, hi]` of `base`: relation `k` of the result is base relation
    /// `lo + k`, with the base's join conditions, this spec's selections
    /// and projection. The base must itself be selection-free with an
    /// identity projection (the shared-sweep contract).
    pub fn compile(&self, base: &ViewDef) -> Result<ViewDef, RelationalError> {
        if self.lo > self.hi || self.hi >= base.num_relations() {
            return Err(RelationalError::BadRange {
                reason: format!(
                    "view '{}' span [{}, {}] outside base chain of {} relations",
                    self.name,
                    self.lo,
                    self.hi,
                    base.num_relations()
                ),
            });
        }
        let mut b = ViewDefBuilder::new();
        for k in self.lo..=self.hi {
            b = b.relation(base.schema(k).clone());
        }
        for k in self.lo..self.hi {
            let left = base.schema(k);
            let right = base.schema(k + 1);
            for &(la, ra) in &base.join_cond(k).pairs {
                b = b.join(
                    format!("{}.{}", left.name(), left.attrs()[la]),
                    format!("{}.{}", right.name(), right.attrs()[ra]),
                );
            }
        }
        for &(rel, attr, op, ref value) in &self.selects {
            if rel < self.lo || rel > self.hi {
                return Err(RelationalError::BadRange {
                    reason: format!(
                        "view '{}' selects on relation {} outside its span [{}, {}]",
                        self.name, rel, self.lo, self.hi
                    ),
                });
            }
            let schema = base.schema(rel);
            b = b.select(
                format!("{}.{}", schema.name(), schema.attrs()[attr]),
                op,
                value.clone(),
            );
        }
        if let Some(proj) = &self.projection {
            b = b.project(proj.iter().cloned());
        }
        b.build()
    }

    /// Does this view reference base relation `j`?
    pub fn references(&self, j: usize) -> bool {
        self.lo <= j && j <= self.hi
    }
}

/// A generated multi-view scenario: the shared base chain (selection-free,
/// identity projection), initial relation contents, the scheduled update
/// stream, and the view specs registered on top.
#[derive(Clone, Debug)]
pub struct MultiViewScenario {
    /// The base chain all views are spans of. No selections, identity
    /// projection — per-view σ/Π happen at the warehouse.
    pub base: ViewDef,
    /// Declared keys per base relation.
    pub keys: KeySpec,
    /// Initial contents per base relation.
    pub initial: Vec<Bag>,
    /// The scheduled source transactions, in time order.
    pub txns: Vec<ScheduledTxn>,
    /// Registered views.
    pub views: Vec<ViewSpec>,
    /// Derived views stacked on top (registered after `views`, in order —
    /// each parent precedes its children, so registration order is a
    /// valid topological order).
    pub derived: Vec<DerivedSpec>,
}

impl MultiViewScenario {
    /// Number of scheduled transactions.
    pub fn txn_count(&self) -> usize {
        self.txns.len()
    }
}

/// Configuration for random multi-view scenarios.
#[derive(Clone, Debug)]
pub struct MultiViewConfig {
    /// Base-chain / update-stream shape (its `seed` drives the stream).
    pub stream: StreamConfig,
    /// How many views to register.
    pub n_views: usize,
    /// Seed for the view-set draw (independent of the stream seed).
    pub view_seed: u64,
    /// When true every view spans the full chain (the E14 message-cost
    /// setup); otherwise spans are random contiguous sub-chains.
    pub full_span: bool,
    /// How many derived (view-over-view) specs to stack on top of the
    /// base views. Zero keeps the flat PR 3 scenario shape.
    pub n_derived: usize,
    /// Seed for the derived-view draw (independent of `view_seed`).
    pub derived_seed: u64,
}

impl Default for MultiViewConfig {
    fn default() -> Self {
        MultiViewConfig {
            stream: StreamConfig::default(),
            n_views: 3,
            view_seed: 7,
            full_span: false,
            n_derived: 0,
            derived_seed: 7,
        }
    }
}

impl MultiViewConfig {
    /// Generate the base chain, the update stream, and a random view set.
    pub fn generate(&self) -> Result<MultiViewScenario, RelationalError> {
        let single = self.stream.generate()?;
        let n = self.stream.n_sources;
        // Rebuild the chain as the *base* def: same schemas and joins,
        // no selections, identity projection.
        let mut b = ViewDefBuilder::new();
        for k in 0..n {
            b = b.relation(single.view.schema(k).clone());
        }
        for k in 0..n.saturating_sub(1) {
            let left = single.view.schema(k);
            let right = single.view.schema(k + 1);
            for &(la, ra) in &single.view.join_cond(k).pairs {
                b = b.join(
                    format!("{}.{}", left.name(), left.attrs()[la]),
                    format!("{}.{}", right.name(), right.attrs()[ra]),
                );
            }
        }
        let base = b.build()?;

        let mut r = Rng64::new(self.view_seed ^ 0x5EED_B00C);
        let views: Vec<ViewSpec> = (0..self.n_views)
            .map(|v| self.arb_view(&mut r, &base, v))
            .collect();

        // Candidate parents for derived views: every base view's output
        // width, then each derived view as it is drawn (stacks compose).
        let mut parents: Vec<(String, usize)> = Vec::new();
        for spec in &views {
            let width = spec.compile(&base)?.projection().len();
            parents.push((spec.name.clone(), width));
        }
        let mut rd = Rng64::new(self.derived_seed ^ 0x0DA6_0DA6);
        let mut derived = Vec::new();
        for d in 0..self.n_derived {
            if parents.is_empty() {
                break;
            }
            let spec = self.arb_derived(&mut rd, &parents, d);
            let parent_width = parents
                .iter()
                .find(|(n, _)| *n == spec.parent)
                .map(|(_, w)| *w)
                .expect("parent drawn from the candidate list");
            parents.push((spec.name.clone(), spec.op.output_width(parent_width)));
            derived.push(spec);
        }

        Ok(MultiViewScenario {
            base,
            keys: single.keys,
            initial: single.initial,
            txns: single.txns,
            views,
            derived,
        })
    }

    /// Draw one derived spec over a random already-known parent: half σ/Π
    /// (linear — the child's delta is the operator on the parent's
    /// delta), half Σ/group-by (stateful — COUNT plus one of
    /// SUM/MIN/MAX over a random column).
    fn arb_derived(&self, r: &mut Rng64, parents: &[(String, usize)], d: usize) -> DerivedSpec {
        let (parent, width) = parents[r.usize_below(parents.len())].clone();
        let op = if r.usize_below(2) == 0 {
            let mut selects = Vec::new();
            if r.usize_below(2) == 0 {
                let col = r.usize_below(width);
                let threshold = r.i64_in(0, (self.stream.domain / 3).max(1) as i64);
                selects.push((col, CmpOp::Ge, Value::Int(threshold)));
            }
            let projection = if r.usize_below(2) == 0 {
                None
            } else {
                let mut cols: Vec<usize> = (0..width).filter(|_| r.usize_below(2) == 0).collect();
                if cols.is_empty() {
                    cols.push(0);
                }
                Some(cols)
            };
            DerivedOp::Select {
                selects,
                projection,
            }
        } else {
            let group_by = vec![r.usize_below(width)];
            let mut aggs = vec![AggFn::CountRows];
            let col = r.usize_below(width);
            match r.usize_below(3) {
                0 => aggs.push(AggFn::Sum(col)),
                1 => aggs.push(AggFn::Min(col)),
                _ => aggs.push(AggFn::Max(col)),
            }
            DerivedOp::Aggregate(AggregateSpec { group_by, aggs })
        };
        DerivedSpec {
            name: format!("D{d}"),
            parent,
            op,
        }
    }

    fn arb_view(&self, r: &mut Rng64, base: &ViewDef, v: usize) -> ViewSpec {
        let n = base.num_relations();
        let (lo, hi) = if self.full_span || n == 1 {
            (0, n - 1)
        } else {
            let lo = r.usize_below(n);
            let hi = lo + r.usize_below(n - lo);
            (lo, hi)
        };
        // Mild selections: each relation in the span gets one with
        // probability 1/4, keyed on the join-bearing B column so bags
        // stay non-trivial (`B >= threshold` keeps most of the domain).
        let mut selects = Vec::new();
        for k in lo..=hi {
            if r.usize_below(4) == 0 {
                let arity = base.schema(k).arity();
                let attr = arity - 1;
                let threshold = r.i64_in(0, (self.stream.domain / 3).max(1) as i64);
                selects.push((k, attr, CmpOp::Ge, Value::Int(threshold)));
            }
        }
        // Projection: half the views keep everything, the rest project
        // to each span relation's first (key) column plus the last B.
        let projection = if r.usize_below(2) == 0 {
            None
        } else {
            let mut cols: Vec<String> = (lo..=hi)
                .map(|k| {
                    let s = base.schema(k);
                    format!("{}.{}", s.name(), s.attrs()[0])
                })
                .collect();
            let last = base.schema(hi);
            cols.push(format!(
                "{}.{}",
                last.name(),
                last.attrs()[last.arity() - 1]
            ));
            projection_dedup(cols)
        };
        let policy = match r.usize_below(3) {
            0 => ViewPolicy::Sweep,
            1 => ViewPolicy::NestedSweep,
            _ => ViewPolicy::Deferred {
                batch: 1 + r.usize_below(4),
            },
        };
        ViewSpec {
            name: format!("V{v}"),
            lo,
            hi,
            selects,
            projection,
            policy,
        }
    }
}

/// Deduplicate while preserving order (qualified names must be unique in
/// a projection list only in the sense of resolving; duplicates are
/// legal but noisy).
fn projection_dedup(cols: Vec<String>) -> Option<Vec<String>> {
    let mut seen = std::collections::HashSet::new();
    let out: Vec<String> = cols
        .into_iter()
        .filter(|c| seen.insert(c.clone()))
        .collect();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::{eval_view, Predicate};

    #[test]
    fn generated_views_compile_against_base() {
        let scenario = MultiViewConfig {
            stream: StreamConfig {
                n_sources: 4,
                updates: 5,
                seed: 3,
                ..Default::default()
            },
            n_views: 6,
            view_seed: 11,
            ..Default::default()
        }
        .generate()
        .unwrap();
        assert_eq!(scenario.views.len(), 6);
        for spec in &scenario.views {
            let local = spec.compile(&scenario.base).unwrap();
            assert_eq!(local.num_relations(), spec.hi - spec.lo + 1);
            // Evaluable over the span's initial bags.
            let refs: Vec<&Bag> = scenario.initial[spec.lo..=spec.hi].iter().collect();
            eval_view(&local, &refs).unwrap();
        }
    }

    #[test]
    fn base_chain_is_selection_free_and_unprojected() {
        let scenario = MultiViewConfig::default().generate().unwrap();
        let base = &scenario.base;
        for k in 0..base.num_relations() {
            assert_eq!(base.local_select(k), &Predicate::True);
        }
        assert_eq!(base.projection().len(), base.total_arity());
    }

    #[test]
    fn full_span_mode_pins_every_view_to_the_whole_chain() {
        let scenario = MultiViewConfig {
            stream: StreamConfig {
                n_sources: 5,
                ..Default::default()
            },
            n_views: 4,
            full_span: true,
            ..Default::default()
        }
        .generate()
        .unwrap();
        for spec in &scenario.views {
            assert_eq!((spec.lo, spec.hi), (0, 4));
        }
    }

    #[test]
    fn out_of_range_span_rejected() {
        let scenario = MultiViewConfig::default().generate().unwrap();
        let bad = ViewSpec {
            lo: 1,
            hi: 99,
            ..ViewSpec::full("bad", 3)
        };
        assert!(bad.compile(&scenario.base).is_err());
    }
}
