//! # dw-workload
//!
//! Deterministic workload generation for warehouse experiments: chain-view
//! scenarios with configurable source counts, initial population, join
//! selectivity (domain size + zipf skew), insert/delete mixes, single
//! updates vs. source-local transaction batches, and the adversarial
//! alternating-interference pattern of the paper's §6.2.
//!
//! Generators maintain shadow copies of every relation so the emitted
//! transaction streams are always *valid* (deletes reference live tuples) —
//! the same assumption the paper makes of autonomous sources.

#![warn(missing_docs)]

pub mod derived;
pub mod faults;
pub mod multiview;
pub mod scenario;
pub mod serve;
pub mod sharded;
pub mod skew;
pub mod stream;

pub use derived::{DerivedOp, DerivedSpec};
pub use faults::FaultScenarioConfig;
pub use multiview::{MultiViewConfig, MultiViewScenario, ViewPolicy, ViewSpec};
pub use scenario::{GeneratedScenario, ScheduledTxn};
pub use serve::{ReadKind, ReadMixConfig, ReadOp};
pub use sharded::{ShardedConfig, ShardedScenario};
pub use skew::Zipf;
pub use stream::{GapKind, SourcePick, StreamConfig};
