//! Seeded fault-schedule generation.
//!
//! The paper's §2 *assumes* reliable FIFO channels; the repo instead earns
//! that assumption with a reliability transport and needs adversarial
//! schedules to test it against. [`FaultScenarioConfig`] turns one seed
//! into one [`FaultPlan`] — uniform link drop/duplication/reordering plus
//! optional partition windows and source crash/restart cycles — so a fuzz
//! loop over seeds sweeps a family of fault schedules deterministically.

use dw_rng::Rng64;
use dw_simnet::{FaultPlan, LinkFaults, Time};

/// Bounds for one family of random fault schedules.
///
/// Rates are *maxima*: each generated plan draws its actual rates
/// uniformly from `[0, max]`, so a family covers everything from nearly
/// clean links up to the configured worst case. Set a `max_*` to zero to
/// exclude that fault class entirely.
#[derive(Clone, Debug)]
pub struct FaultScenarioConfig {
    /// Number of participating nodes (sources + warehouse); crash
    /// schedules pick victims among nodes `1..n_nodes` (node 0 is the
    /// warehouse by convention and is never crashed — the paper's
    /// recovery story covers *source* failures).
    pub n_nodes: usize,
    /// Upper bound on the per-link drop probability.
    pub max_drop_rate: f64,
    /// Upper bound on the per-link duplication probability.
    pub max_dup_rate: f64,
    /// Upper bound on the per-link reordering probability.
    pub max_reorder_rate: f64,
    /// Extra-delay window for reordered messages (µs).
    pub reorder_window: Time,
    /// Number of directed partition windows to schedule.
    pub partitions: usize,
    /// Number of source crash/restart cycles to schedule.
    pub crashes: usize,
    /// Number of *warehouse state-crash* windows to schedule (node 0
    /// loses its volatile state but keeps its durable store; see
    /// [`FaultPlan::state_crash`]). Zero by default — only recovery
    /// experiments opt in.
    pub state_crashes: usize,
    /// Experiment horizon (µs); outage and crash windows fall inside it.
    pub horizon: Time,
}

impl Default for FaultScenarioConfig {
    fn default() -> Self {
        FaultScenarioConfig {
            n_nodes: 4,
            max_drop_rate: 0.2,
            max_dup_rate: 0.2,
            max_reorder_rate: 0.2,
            reorder_window: 10_000,
            partitions: 1,
            crashes: 1,
            state_crashes: 0,
            horizon: 1_000_000,
        }
    }
}

impl FaultScenarioConfig {
    /// Generate one fault plan. Deterministic in `(self, seed)`.
    pub fn generate(&self, seed: u64) -> FaultPlan {
        assert!(
            self.n_nodes >= 2,
            "need a warehouse and at least one source"
        );
        let mut rng = Rng64::new(seed ^ 0xFA17_5EED);
        let mut plan = FaultPlan::default().uniform(LinkFaults {
            drop_rate: rng.f64() * self.max_drop_rate,
            dup_rate: rng.f64() * self.max_dup_rate,
            reorder_rate: rng.f64() * self.max_reorder_rate,
            reorder_window: self.reorder_window,
        });
        for _ in 0..self.partitions {
            let from = rng.usize_below(self.n_nodes);
            let to = (from + 1 + rng.usize_below(self.n_nodes - 1)) % self.n_nodes;
            let start = rng.u64_below(self.horizon.max(1));
            let len = 1 + rng.u64_below((self.horizon / 4).max(1));
            plan = plan.outage(from, to, start, start.saturating_add(len));
        }
        for _ in 0..self.crashes {
            let node = 1 + rng.usize_below(self.n_nodes - 1);
            let down_at = rng.u64_below(self.horizon.max(1));
            let len = 1 + rng.u64_below((self.horizon / 4).max(1));
            plan = plan.crash(node, down_at, down_at.saturating_add(len));
        }
        for _ in 0..self.state_crashes {
            // State crashes always hit the warehouse: sources model a
            // durable DB already, so only node 0 has volatile sweep
            // state worth losing.
            let down_at = rng.u64_below(self.horizon.max(1));
            let len = 1 + rng.u64_below((self.horizon / 4).max(1));
            plan = plan.state_crash(0, down_at, down_at.saturating_add(len));
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = FaultScenarioConfig::default();
        assert_eq!(
            format!("{:?}", cfg.generate(7)),
            format!("{:?}", cfg.generate(7))
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultScenarioConfig::default();
        assert_ne!(
            format!("{:?}", cfg.generate(1)),
            format!("{:?}", cfg.generate(2))
        );
    }

    #[test]
    fn warehouse_is_never_crashed() {
        let cfg = FaultScenarioConfig {
            crashes: 8,
            ..FaultScenarioConfig::default()
        };
        for seed in 0..50 {
            for c in cfg.generate(seed).crashes() {
                assert!(c.node >= 1, "seed {seed} crashed the warehouse");
                assert!(c.node < cfg.n_nodes);
                assert!(c.down_at < c.up_at);
            }
        }
    }

    #[test]
    fn partitions_avoid_self_links() {
        let cfg = FaultScenarioConfig {
            partitions: 8,
            ..FaultScenarioConfig::default()
        };
        for seed in 0..50 {
            for o in cfg.generate(seed).outages() {
                assert_ne!(o.from, o.to, "seed {seed}");
                assert!(o.start < o.end);
            }
        }
    }

    #[test]
    fn rates_respect_bounds() {
        let cfg = FaultScenarioConfig {
            max_drop_rate: 0.1,
            max_dup_rate: 0.0,
            ..FaultScenarioConfig::default()
        };
        for seed in 0..50 {
            let plan = cfg.generate(seed);
            let lf = plan.link_faults(0, 1);
            assert!(lf.drop_rate <= 0.1);
            assert_eq!(lf.dup_rate, 0.0);
        }
    }

    #[test]
    fn state_crashes_target_the_warehouse_only() {
        let cfg = FaultScenarioConfig {
            state_crashes: 4,
            ..FaultScenarioConfig::default()
        };
        for seed in 0..50 {
            let plan = cfg.generate(seed);
            assert_eq!(plan.state_crashes().len(), 4, "seed {seed}");
            for c in plan.state_crashes() {
                assert_eq!(c.node, 0, "seed {seed}: state crash off-warehouse");
                assert!(c.down_at < c.up_at);
                assert!(c.down_at < cfg.horizon);
            }
            // Amnesia crashes still never touch the warehouse.
            for c in plan.crashes() {
                assert!(c.node >= 1);
            }
        }
    }

    #[test]
    fn zeroed_config_is_trivial_but_for_windows() {
        let cfg = FaultScenarioConfig {
            max_drop_rate: 0.0,
            max_dup_rate: 0.0,
            max_reorder_rate: 0.0,
            partitions: 0,
            crashes: 0,
            ..FaultScenarioConfig::default()
        };
        assert!(cfg.generate(3).is_trivial());
    }
}
