//! Generated scenarios: a view, initial contents, and a transaction stream.

use dw_protocol::{GlobalPart, SourceIndex};
use dw_relational::{Bag, KeySpec, ViewDef};
use dw_simnet::Time;

/// One source-local transaction scheduled for injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledTxn {
    /// Injection time at the source.
    pub at: Time,
    /// Target source (chain position).
    pub source: SourceIndex,
    /// Signed delta (single update or batched source-local transaction).
    pub delta: Bag,
    /// Global-transaction membership (update type 3), if any.
    pub global: Option<GlobalPart>,
}

/// Everything an experiment needs to run: the chain view, optional keys
/// (for the Strobe family), initial per-relation contents, and the ordered
/// transaction stream.
#[derive(Clone, Debug)]
pub struct GeneratedScenario {
    /// The SPJ chain view.
    pub view: ViewDef,
    /// Key spec (always generated; only the Strobe family needs it, and it
    /// is only *valid* for the view when the scenario was keyed).
    pub keys: KeySpec,
    /// Initial contents of each chain relation.
    pub initial: Vec<Bag>,
    /// Transactions in injection-time order.
    pub txns: Vec<ScheduledTxn>,
}

impl GeneratedScenario {
    /// Total transactions.
    pub fn txn_count(&self) -> usize {
        self.txns.len()
    }

    /// Time of the last injection (0 when empty).
    pub fn horizon(&self) -> Time {
        self.txns.last().map_or(0, |t| t.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::{tup, Schema, ViewDefBuilder};

    #[test]
    fn horizon_and_count() {
        let view = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["K", "A", "B"]).unwrap())
            .build()
            .unwrap();
        let keys = KeySpec::new(vec![vec![0]]);
        let s = GeneratedScenario {
            view,
            keys,
            initial: vec![Bag::new()],
            txns: vec![
                ScheduledTxn {
                    at: 5,
                    source: 0,
                    delta: Bag::from_tuples([tup![0, 1, 2]]),
                    global: None,
                },
                ScheduledTxn {
                    at: 9,
                    source: 0,
                    delta: Bag::from_tuples([tup![1, 1, 2]]),
                    global: None,
                },
            ],
        };
        assert_eq!(s.txn_count(), 2);
        assert_eq!(s.horizon(), 9);
    }
}
