//! Property tests of the update message queue — the structure both SWEEP
//! variants' compensation correctness rests on. Seeded random loops; a
//! failure message names the case seed for exact replay.

use dw_protocol::{SourceUpdate, UpdateId};
use dw_relational::{tup, Bag};
use dw_rng::Rng64;
use dw_warehouse::UpdateQueue;

const CASES: u64 = 128;

fn upd(source: usize, seq: u64, v: i64, c: i64) -> SourceUpdate {
    SourceUpdate {
        id: UpdateId { source, seq },
        delta: Bag::from_pairs([(tup![v], c)]),
        global: None,
    }
}

/// Random (source, count) entry stream; counts are non-zero in [-2, 2].
fn arb_entries(r: &mut Rng64, n_sources: usize, max_len: usize) -> Vec<(usize, i64)> {
    let n = r.usize_below(max_len);
    (0..n)
        .map(|_| {
            let c = r.i64_in(-2, 3);
            (r.usize_below(n_sources), if c == 0 { 1 } else { c })
        })
        .collect()
}

/// Pops come out in push order regardless of sources.
#[test]
fn fifo_order_preserved() {
    for case in 0..CASES {
        let mut r = Rng64::new(case);
        let entries = arb_entries(&mut r, 4, 40);
        let mut q = UpdateQueue::new();
        let mut seqs = [0u64; 4];
        let mut expect = Vec::new();
        for (i, &(source, c)) in entries.iter().enumerate() {
            let u = upd(source, seqs[source], i as i64, c);
            seqs[source] += 1;
            expect.push(u.id);
            q.push(u, i as u64);
        }
        let mut got = Vec::new();
        while let Some(p) = q.pop() {
            got.push(p.update.id);
        }
        assert_eq!(got, expect, "case {case}");
    }
}

/// merged_from_source equals the sum of that source's queued deltas and
/// leaves the queue untouched; take_from_source removes exactly them.
#[test]
fn merge_and_take_agree() {
    for case in 0..CASES {
        let mut r = Rng64::new(1_000 + case);
        let entries = arb_entries(&mut r, 3, 30);
        let mut q = UpdateQueue::new();
        let mut seqs = [0u64; 3];
        let mut manual = [Bag::new(), Bag::new(), Bag::new()];
        for (i, &(source, c)) in entries.iter().enumerate() {
            manual[source].add(tup![i as i64], c);
            q.push(upd(source, seqs[source], i as i64, c), i as u64);
            seqs[source] += 1;
        }
        let before_len = q.len();
        for (s, bag) in manual.iter().enumerate() {
            assert_eq!(&q.merged_from_source(s), bag, "case {case}");
        }
        assert_eq!(q.len(), before_len, "case {case}: merge must not consume");

        let (taken, ids) = q.take_from_source(1);
        assert_eq!(taken, manual[1], "case {case}");
        assert!(
            ids.windows(2).all(|w| w[0].0.seq < w[1].0.seq),
            "case {case}"
        );
        assert!(!q.has_from_source(1), "case {case}");
        assert_eq!(q.len() + ids.len(), before_len, "case {case}");
        // Other sources untouched.
        assert_eq!(q.merged_from_source(0), manual[0], "case {case}");
        assert_eq!(q.merged_from_source(2), manual[2], "case {case}");
    }
}
