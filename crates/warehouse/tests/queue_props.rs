//! Property tests of the update message queue — the structure both SWEEP
//! variants' compensation correctness rests on.

use dw_protocol::{SourceUpdate, UpdateId};
use dw_relational::{tup, Bag};
use dw_warehouse::UpdateQueue;
use proptest::prelude::*;

fn upd(source: usize, seq: u64, v: i64, c: i64) -> SourceUpdate {
    SourceUpdate {
        id: UpdateId { source, seq },
        delta: Bag::from_pairs([(tup![v], c)]),
        global: None,
    }
}

proptest! {
    /// Pops come out in push order regardless of sources.
    #[test]
    fn fifo_order_preserved(entries in prop::collection::vec((0usize..4, -2i64..3), 0..40)) {
        let mut q = UpdateQueue::new();
        let mut seqs = [0u64; 4];
        let mut expect = Vec::new();
        for (i, &(source, c)) in entries.iter().enumerate() {
            let c = if c == 0 { 1 } else { c };
            let u = upd(source, seqs[source], i as i64, c);
            seqs[source] += 1;
            expect.push(u.id);
            q.push(u, i as u64);
        }
        let mut got = Vec::new();
        while let Some(p) = q.pop() {
            got.push(p.update.id);
        }
        prop_assert_eq!(got, expect);
    }

    /// merged_from_source equals the sum of that source's queued deltas and
    /// leaves the queue untouched; take_from_source removes exactly them.
    #[test]
    fn merge_and_take_agree(entries in prop::collection::vec((0usize..3, -2i64..3), 0..30)) {
        let mut q = UpdateQueue::new();
        let mut seqs = [0u64; 3];
        let mut manual = [Bag::new(), Bag::new(), Bag::new()];
        for (i, &(source, c)) in entries.iter().enumerate() {
            let c = if c == 0 { 1 } else { c };
            manual[source].add(tup![i as i64], c);
            q.push(upd(source, seqs[source], i as i64, c), i as u64);
            seqs[source] += 1;
        }
        let before_len = q.len();
        for s in 0..3 {
            prop_assert_eq!(q.merged_from_source(s), manual[s].clone());
        }
        prop_assert_eq!(q.len(), before_len, "merge must not consume");

        let (taken, ids) = q.take_from_source(1);
        prop_assert_eq!(taken, manual[1].clone());
        prop_assert!(ids.windows(2).all(|w| w[0].0.seq < w[1].0.seq));
        prop_assert!(!q.has_from_source(1));
        prop_assert_eq!(q.len() + ids.len(), before_len);
        // Other sources untouched.
        prop_assert_eq!(q.merged_from_source(0), manual[0].clone());
        prop_assert_eq!(q.merged_from_source(2), manual[2].clone());
    }
}
