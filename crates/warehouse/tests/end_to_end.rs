//! Warehouse ↔ source integration: policies driven against *real*
//! `DataSource`/`EcaSite` nodes over the simulated network (not hand-crafted
//! answers), with a local dispatch loop. Complements the `dw-core` harness
//! by exercising the crate boundary directly.

use dw_protocol::{node_source, source_node, Message, WAREHOUSE_NODE};
use dw_relational::{eval_view, tup, Bag, BaseRelation, Schema, ViewDef, ViewDefBuilder};
use dw_simnet::{LatencyModel, Network};
use dw_source::{DataSource, EcaSite};
use dw_warehouse::{Eca, MaintenancePolicy, NestedSweep, PipelinedSweep, Sweep};

fn paper_view() -> ViewDef {
    ViewDefBuilder::new()
        .relation(Schema::new("R1", ["A", "B"]).unwrap())
        .relation(Schema::new("R2", ["C", "D"]).unwrap())
        .relation(Schema::new("R3", ["E", "F"]).unwrap())
        .join("R1.B", "R2.C")
        .join("R2.D", "R3.E")
        .project(["R2.D", "R3.F"])
        .build()
        .unwrap()
}

fn initial_bags() -> Vec<Bag> {
    vec![
        Bag::from_tuples([tup![1, 3], tup![2, 3]]),
        Bag::from_tuples([tup![3, 7]]),
        Bag::from_tuples([tup![5, 6], tup![7, 8]]),
    ]
}

fn sources(view: &ViewDef, initial: &[Bag]) -> Vec<DataSource> {
    initial
        .iter()
        .enumerate()
        .map(|(i, bag)| {
            let mut r = BaseRelation::new(view.schema(i).clone());
            r.apply_delta(bag).unwrap();
            DataSource::new(i, view.clone(), r)
        })
        .collect()
}

/// Drive a policy + sources to quiescence.
fn drive(
    net: &mut Network<Message>,
    policy: &mut dyn MaintenancePolicy,
    sources: &mut [DataSource],
) {
    while let Some(d) = net.next() {
        if d.to == WAREHOUSE_NODE {
            policy.on_message(d, net).unwrap();
        } else {
            let idx = node_source(d.to);
            let (from, msg) = (d.from, d.msg);
            sources[idx].handle(from, msg, net).unwrap();
        }
    }
}

#[test]
fn sweep_through_real_sources_matches_truth() {
    let view = paper_view();
    let initial = initial_bags();
    let refs: Vec<&Bag> = initial.iter().collect();
    let initial_view = eval_view(&view, &refs).unwrap();

    let mut net: Network<Message> = Network::new(3);
    net.set_default_latency(LatencyModel::Uniform(500, 5_000));
    let mut policy = Sweep::new(view.clone(), initial_view).unwrap();
    let mut srcs = sources(&view, &initial);

    // Inject the paper's three updates nearly simultaneously.
    net.inject(
        0,
        source_node(1),
        Message::ApplyTxn {
            rel: 1,
            delta: Bag::from_pairs([(tup![3, 5], 1)]),
            global: None,
        },
    );
    net.inject(
        500,
        source_node(2),
        Message::ApplyTxn {
            rel: 2,
            delta: Bag::from_pairs([(tup![7, 8], -1)]),
            global: None,
        },
    );
    net.inject(
        900,
        source_node(0),
        Message::ApplyTxn {
            rel: 0,
            delta: Bag::from_pairs([(tup![2, 3], -1)]),
            global: None,
        },
    );
    drive(&mut net, &mut policy, &mut srcs);

    assert!(policy.is_quiescent());
    assert_eq!(policy.view(), &Bag::from_pairs([(tup![5, 6], 1)]));
    assert_eq!(policy.installs().len(), 3);
    // And the sources hold the post-update relations.
    assert_eq!(srcs[0].relation().bag().count(&tup![2, 3]), 0);
    assert_eq!(srcs[2].relation().bag().count(&tup![7, 8]), 0);
}

#[test]
fn nested_and_pipelined_agree_with_sweep_through_real_sources() {
    let view = paper_view();
    let initial = initial_bags();
    let refs: Vec<&Bag> = initial.iter().collect();
    let initial_view = eval_view(&view, &refs).unwrap();

    let run = |mk: &dyn Fn() -> Box<dyn MaintenancePolicy>| -> Bag {
        let mut net: Network<Message> = Network::new(11);
        net.set_default_latency(LatencyModel::Constant(2_000));
        let mut policy = mk();
        let mut srcs = sources(&view, &initial);
        for (i, (rel, delta)) in [
            (1usize, Bag::from_pairs([(tup![3, 5], 1)])),
            (0, Bag::from_pairs([(tup![1, 3], -1)])),
            (2, Bag::from_pairs([(tup![5, 6], -1)])),
            (1, Bag::from_pairs([(tup![3, 7], -1)])),
        ]
        .into_iter()
        .enumerate()
        {
            net.inject(
                i as u64 * 700,
                source_node(rel),
                Message::ApplyTxn {
                    rel,
                    delta,
                    global: None,
                },
            );
        }
        drive(&mut net, policy.as_mut(), &mut srcs);
        assert!(policy.is_quiescent());
        policy.view().clone()
    };

    let v_sweep = run(&|| Box::new(Sweep::new(view.clone(), initial_view.clone()).unwrap()));
    let v_nested = run(&|| Box::new(NestedSweep::new(view.clone(), initial_view.clone()).unwrap()));
    let v_pipe =
        run(&|| Box::new(PipelinedSweep::new(view.clone(), initial_view.clone()).unwrap()));
    assert_eq!(v_sweep, v_nested);
    assert_eq!(v_sweep, v_pipe);
}

#[test]
fn eca_through_real_single_site() {
    let view = paper_view();
    let initial = initial_bags();
    let refs: Vec<&Bag> = initial.iter().collect();
    let initial_view = eval_view(&view, &refs).unwrap();

    let mut net: Network<Message> = Network::new(5);
    net.set_default_latency(LatencyModel::Constant(3_000));
    let mut policy = Eca::new(view.clone(), initial_view).unwrap();
    let rels: Vec<BaseRelation> = initial
        .iter()
        .enumerate()
        .map(|(i, bag)| {
            let mut r = BaseRelation::new(view.schema(i).clone());
            r.apply_delta(bag).unwrap();
            r
        })
        .collect();
    let mut site = EcaSite::new(source_node(0), view.clone(), rels);

    // Two interfering updates at different relations of the single site.
    net.inject(
        0,
        source_node(0),
        Message::ApplyTxn {
            rel: 1,
            delta: Bag::from_pairs([(tup![3, 5], 1)]),
            global: None,
        },
    );
    net.inject(
        1_000,
        source_node(0),
        Message::ApplyTxn {
            rel: 0,
            delta: Bag::from_pairs([(tup![2, 3], -1)]),
            global: None,
        },
    );
    while let Some(d) = net.next() {
        if d.to == WAREHOUSE_NODE {
            policy.on_message(d, &mut net).unwrap();
        } else {
            let (from, msg) = (d.from, d.msg);
            site.handle(from, msg, &mut net).unwrap();
        }
    }
    assert!(policy.is_quiescent());

    // Ground truth after both updates.
    let mut final_rels = initial.clone();
    final_rels[1].add(tup![3, 5], 1);
    final_rels[0].add(tup![2, 3], -1);
    let refs: Vec<&Bag> = final_rels.iter().collect();
    assert_eq!(policy.view(), &eval_view(&view, &refs).unwrap());
}
