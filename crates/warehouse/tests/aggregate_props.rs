//! Property: the aggregate view is *self-maintainable* — folding any
//! sequence of deltas incrementally equals recomputing the aggregates from
//! the final view state, for COUNT/SUM/AVG with arbitrary groupings, as
//! long as the running view state stays non-negative. Seeded random loops;
//! a failure message names the case seed for exact replay.

use dw_relational::{tup, Bag};
use dw_rng::Rng64;
use dw_warehouse::{AggFn, AggregateView, AggregateViewDef};

const CASES: u64 = 96;

/// Deltas that keep a running view state legal: each step inserts a few
/// tuples and deletes only tuples currently present (materialized against a
/// shadow state so deletions always hit live tuples).
fn arb_delta_sequence(r: &mut Rng64) -> Vec<Bag> {
    let steps = r.usize_below(12);
    let mut shadow: Vec<(i64, i64)> = Vec::new();
    let mut out = Vec::new();
    for _ in 0..steps {
        let ops = 1 + r.usize_below(4);
        let mut delta = Bag::new();
        for _ in 0..ops {
            let (insert, g, v) = (r.chance(0.5), r.i64_in(0, 4), r.i64_in(0, 50));
            if insert || shadow.is_empty() {
                shadow.push((g, v));
                delta.add(tup![g, v], 1);
            } else {
                let idx = (g as usize + v as usize) % shadow.len();
                let (dg, dv) = shadow.swap_remove(idx);
                delta.add(tup![dg, dv], -1);
            }
        }
        if !delta.is_empty() {
            out.push(delta);
        }
    }
    out
}

fn defs() -> Vec<AggregateViewDef> {
    vec![
        AggregateViewDef {
            group_by: vec![0],
            aggregates: vec![AggFn::Count, AggFn::Sum(1), AggFn::Avg(1)],
        },
        AggregateViewDef {
            group_by: vec![],
            aggregates: vec![AggFn::Count, AggFn::Sum(1)],
        },
        AggregateViewDef {
            group_by: vec![1, 0],
            aggregates: vec![AggFn::Count],
        },
    ]
}

#[test]
fn incremental_equals_recompute() {
    for case in 0..CASES {
        let mut r = Rng64::new(case);
        let deltas = arb_delta_sequence(&mut r);
        for def in defs() {
            let mut incremental = AggregateView::new(def.clone());
            let mut state = Bag::new();
            for d in &deltas {
                incremental.apply_delta(d).unwrap();
                state.merge(d);
                assert!(
                    state.all_positive(),
                    "case {case}: generator produced bad state"
                );
            }
            let recomputed = AggregateView::from_view(def, &state).unwrap();
            assert_eq!(incremental.snapshot(), recomputed.snapshot(), "case {case}");
        }
    }
}

#[test]
fn group_counts_match_view_multiplicity() {
    for case in 0..CASES {
        let mut r = Rng64::new(10_000 + case);
        let deltas = arb_delta_sequence(&mut r);
        let def = AggregateViewDef {
            group_by: vec![0],
            aggregates: vec![AggFn::Count],
        };
        let mut agg = AggregateView::new(def);
        let mut state = Bag::new();
        for d in &deltas {
            agg.apply_delta(d).unwrap();
            state.merge(d);
        }
        // COUNT per group = sum of multiplicities of that group's tuples.
        use std::collections::HashMap;
        let mut expect: HashMap<i64, i64> = HashMap::new();
        for (t, c) in state.iter() {
            if let dw_relational::Value::Int(g) = t.at(0) {
                *expect.entry(*g).or_default() += c;
            }
        }
        expect.retain(|_, c| *c != 0);
        for (g, c) in expect {
            assert_eq!(agg.count(&[dw_relational::Value::Int(g)]), c, "case {case}");
        }
    }
}
