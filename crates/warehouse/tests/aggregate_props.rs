//! Property: the aggregate view is *self-maintainable* — folding any
//! sequence of deltas incrementally equals recomputing the aggregates from
//! the final view state, for COUNT/SUM/AVG with arbitrary groupings, as
//! long as the running view state stays non-negative.

use dw_relational::{tup, Bag};
use dw_warehouse::{AggFn, AggregateView, AggregateViewDef};
use proptest::prelude::*;

/// Deltas that keep a running view state legal: each step inserts a few
/// tuples and deletes only tuples currently present.
fn arb_delta_sequence() -> impl Strategy<Value = Vec<Bag>> {
    // Encode as abstract ops; materialize against a shadow state.
    prop::collection::vec(
        prop::collection::vec((prop::bool::ANY, 0i64..4, 0i64..50), 1..5),
        0..12,
    )
    .prop_map(|steps| {
        let mut shadow: Vec<(i64, i64)> = Vec::new();
        let mut out = Vec::new();
        for step in steps {
            let mut delta = Bag::new();
            for (insert, g, v) in step {
                if insert || shadow.is_empty() {
                    shadow.push((g, v));
                    delta.add(tup![g, v], 1);
                } else {
                    let idx = (g as usize + v as usize) % shadow.len();
                    let (dg, dv) = shadow.swap_remove(idx);
                    delta.add(tup![dg, dv], -1);
                }
            }
            if !delta.is_empty() {
                out.push(delta);
            }
        }
        out
    })
}

fn defs() -> Vec<AggregateViewDef> {
    vec![
        AggregateViewDef {
            group_by: vec![0],
            aggregates: vec![AggFn::Count, AggFn::Sum(1), AggFn::Avg(1)],
        },
        AggregateViewDef {
            group_by: vec![],
            aggregates: vec![AggFn::Count, AggFn::Sum(1)],
        },
        AggregateViewDef {
            group_by: vec![1, 0],
            aggregates: vec![AggFn::Count],
        },
    ]
}

proptest! {
    #[test]
    fn incremental_equals_recompute(deltas in arb_delta_sequence()) {
        for def in defs() {
            let mut incremental = AggregateView::new(def.clone());
            let mut state = Bag::new();
            for d in &deltas {
                incremental.apply_delta(d).unwrap();
                state.merge(d);
                prop_assert!(state.all_positive(), "generator produced bad state");
            }
            let recomputed = AggregateView::from_view(def, &state).unwrap();
            prop_assert_eq!(incremental.snapshot(), recomputed.snapshot());
        }
    }

    #[test]
    fn group_counts_match_view_multiplicity(deltas in arb_delta_sequence()) {
        let def = AggregateViewDef {
            group_by: vec![0],
            aggregates: vec![AggFn::Count],
        };
        let mut agg = AggregateView::new(def);
        let mut state = Bag::new();
        for d in &deltas {
            agg.apply_delta(d).unwrap();
            state.merge(d);
        }
        // COUNT per group = sum of multiplicities of that group's tuples.
        use std::collections::HashMap;
        let mut expect: HashMap<i64, i64> = HashMap::new();
        for (t, c) in state.iter() {
            if let dw_relational::Value::Int(g) = t.at(0) {
                *expect.entry(*g).or_default() += c;
            }
        }
        expect.retain(|_, c| *c != 0);
        for (g, c) in expect {
            prop_assert_eq!(agg.count(&[dw_relational::Value::Int(g)]), c);
        }
    }
}
