//! **ECA** — the Eager Compensating Algorithm baseline (§3, \[ZGMHW95]).
//!
//! ECA assumes a *single* source site holding all base relations
//! (the `dw-source` crate's `EcaSite`). When update `u_i` arrives, the
//! warehouse issues one query
//!
//! ```text
//! Q_i = V⟨u_i⟩ − Σ_{Q_j ∈ UQS} Q_j⟨u_i⟩
//! ```
//!
//! where `Q_j⟨u_i⟩` substitutes `u_i`'s delta into every term of the still
//! pending query `Q_j` whose slot for `u_i`'s relation is not already
//! pinned. The recursion over pending queries generates the
//! inclusion–exclusion of higher-order error terms automatically, and it is
//! why the paper calls ECA's message size **quadratic in the number of
//! interfering updates** — each interfering update's query carries
//! compensation terms for all the others ([`dw_simnet::Payload::size_bytes`]
//! on [`dw_protocol::EcaQuery`] measures this directly; experiment E4).
//!
//! Answers accumulate in `COLLECT` and are installed only when the
//! unanswered-query set drains — ECA **requires quiescence** to advance the
//! view (Table 1), in contrast to SWEEP.

use crate::error::WarehouseError;
use crate::install::InstallRecord;
use crate::metrics::PolicyMetrics;
use crate::policy::MaintenancePolicy;
use crate::view::MaterializedView;
use dw_protocol::{source_node, EcaQuery, EcaSlot, EcaTerm, Message, UpdateId, WAREHOUSE_NODE};
use dw_relational::{Bag, ViewDef};
use dw_simnet::{Delivery, NetHandle, Time};

struct PendingQuery {
    qid: u64,
    update: UpdateId,
    delivered_at: Time,
    /// The terms this query carries (needed to build later compensations).
    terms: Vec<EcaTerm>,
    /// Chain relation the triggering update touched.
    rel: usize,
}

/// The ECA warehouse policy (single-source-site architecture).
pub struct Eca {
    view_def: ViewDef,
    view: MaterializedView,
    metrics: PolicyMetrics,
    install_log: Vec<InstallRecord>,
    record_snapshots: bool,
    next_qid: u64,
    uqs: Vec<PendingQuery>,
    collect: Bag,
    collected: Vec<(UpdateId, Time)>,
}

impl Eca {
    /// Create the policy with the correct initial view.
    pub fn new(view_def: ViewDef, initial_view: Bag) -> Result<Self, WarehouseError> {
        Ok(Eca {
            view_def,
            view: MaterializedView::new(initial_view)?,
            metrics: PolicyMetrics::default(),
            install_log: Vec::new(),
            record_snapshots: true,
            next_qid: 0,
            uqs: Vec::new(),
            collect: Bag::new(),
            collected: Vec::new(),
        })
    }

    /// Size of the unanswered-query set (observability).
    pub fn uqs_len(&self) -> usize {
        self.uqs.len()
    }

    fn base_term(&self, rel: usize, delta: &Bag) -> EcaTerm {
        EcaTerm {
            sign: 1,
            slots: (0..self.view_def.num_relations())
                .map(|k| {
                    if k == rel {
                        EcaSlot::Delta(delta.clone())
                    } else {
                        EcaSlot::Base
                    }
                })
                .collect(),
        }
    }

    fn on_update(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        id: UpdateId,
        delta: Bag,
        delivered_at: Time,
    ) {
        let rel = id.source;
        let mut terms = vec![self.base_term(rel, &delta)];
        // Compensate every pending query's still-unpinned occurrence of
        // this relation: Q_i −= Q_j⟨u_i⟩.
        for pq in &self.uqs {
            for t in &pq.terms {
                if matches!(t.slots[rel], EcaSlot::Base) {
                    let mut slots = t.slots.clone();
                    slots[rel] = EcaSlot::Delta(delta.clone());
                    terms.push(EcaTerm {
                        sign: -t.sign,
                        slots,
                    });
                    self.metrics.compensation_queries += 1;
                }
            }
        }
        let qid = self.next_qid;
        self.next_qid += 1;
        self.metrics.queries_sent += 1;
        net.send(
            WAREHOUSE_NODE,
            source_node(0),
            Message::EcaQuery(EcaQuery {
                qid,
                terms: terms.clone(),
            }),
        );
        self.uqs.push(PendingQuery {
            qid,
            update: id,
            delivered_at,
            terms,
            rel,
        });
    }

    fn on_answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        qid: u64,
        result: Bag,
    ) -> Result<(), WarehouseError> {
        let pos = self
            .uqs
            .iter()
            .position(|p| p.qid == qid)
            .ok_or(WarehouseError::UnknownQuery { qid })?;
        let pq = self.uqs.remove(pos);
        self.collect.merge(&result);
        self.collected.push((pq.update, pq.delivered_at));
        let _ = pq.rel;
        if self.uqs.is_empty() {
            // Quiescence reached: install the accumulated change.
            let delta = std::mem::take(&mut self.collect);
            self.view.install(&delta)?;
            self.metrics.installs += 1;
            let now = net.now();
            for &(_, d) in &self.collected {
                self.metrics.record_staleness(d, now);
            }
            self.install_log.push(InstallRecord {
                at: now,
                consumed: self.collected.drain(..).map(|(id, _)| id).collect(),
                view_after: self.record_snapshots.then(|| self.view.bag().clone()),
            });
        }
        Ok(())
    }
}

impl MaintenancePolicy for Eca {
    fn name(&self) -> &'static str {
        "eca"
    }

    fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        match delivery.msg {
            Message::Update(u) => {
                self.metrics.updates_received += 1;
                self.on_update(net, u.id, u.delta, delivery.at);
                Ok(())
            }
            Message::EcaAnswer(a) => {
                self.metrics.answers_received += 1;
                self.on_answer(net, a.qid, a.result)
            }
            other => Err(WarehouseError::UnexpectedMessage {
                policy: self.name(),
                label: dw_simnet::Payload::label(&other),
            }),
        }
    }

    fn view(&self) -> &Bag {
        self.view.bag()
    }

    fn installs(&self) -> &[InstallRecord] {
        &self.install_log
    }

    fn metrics(&self) -> &PolicyMetrics {
        &self.metrics
    }

    fn is_quiescent(&self) -> bool {
        self.uqs.is_empty()
    }

    fn set_record_snapshots(&mut self, record: bool) {
        self.record_snapshots = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_protocol::{EcaAnswer, SourceUpdate};
    use dw_relational::{tup, Schema, ViewDefBuilder};
    use dw_simnet::{Network, Payload, ENV};

    fn view() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .join("R1.B", "R2.C")
            .build()
            .unwrap()
    }

    fn deliver(at: Time, msg: Message) -> Delivery<Message> {
        Delivery {
            at,
            from: ENV,
            to: WAREHOUSE_NODE,
            msg,
        }
    }

    fn update(source: usize, seq: u64, delta: Bag) -> Message {
        Message::Update(SourceUpdate {
            id: UpdateId { source, seq },
            delta,
            global: None,
        })
    }

    #[test]
    fn lone_update_single_term_query() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Eca::new(view(), Bag::new()).unwrap();
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        let Message::EcaQuery(q) = net.next().unwrap().msg else {
            panic!()
        };
        assert_eq!(q.terms.len(), 1);
        assert_eq!(q.terms[0].sign, 1);
        // Answer and install.
        wh.on_message(
            deliver(
                5,
                Message::EcaAnswer(EcaAnswer {
                    qid: q.qid,
                    result: Bag::from_tuples([tup![1, 3, 3, 7]]),
                }),
            ),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.view().count(&tup![1, 3, 3, 7]), 1);
        assert_eq!(wh.installs().len(), 1);
        assert!(wh.is_quiescent());
    }

    #[test]
    fn interfering_update_adds_compensation_terms() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Eca::new(view(), Bag::new()).unwrap();
        // u1 at relation 0 — query pending.
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        let Message::EcaQuery(q1) = net.next().unwrap().msg else {
            panic!()
        };
        // u2 at relation 1 arrives before q1's answer: its query must carry
        // a negative compensation term V⟨u1,u2⟩.
        wh.on_message(
            deliver(1, update(1, 0, Bag::from_tuples([tup![3, 9]]))),
            &mut net,
        )
        .unwrap();
        let Message::EcaQuery(q2) = net.next().unwrap().msg else {
            panic!()
        };
        assert_eq!(q2.terms.len(), 2);
        assert_eq!(q2.terms[1].sign, -1);
        assert!(matches!(q2.terms[1].slots[0], EcaSlot::Delta(_)));
        assert!(matches!(q2.terms[1].slots[1], EcaSlot::Delta(_)));
        assert_eq!(wh.metrics().compensation_queries, 1);
        // Message size grows.
        assert!(
            Message::EcaQuery(q2.clone()).size_bytes() > Message::EcaQuery(q1.clone()).size_bytes()
        );
        // No install until both answers arrive (quiescence requirement).
        wh.on_message(
            deliver(
                3,
                Message::EcaAnswer(EcaAnswer {
                    qid: q1.qid,
                    result: Bag::from_tuples([tup![1, 3, 3, 7]]),
                }),
            ),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.installs().len(), 0);
        assert!(!wh.is_quiescent());
        wh.on_message(
            deliver(
                4,
                Message::EcaAnswer(EcaAnswer {
                    qid: q2.qid,
                    result: Bag::from_tuples([tup![1, 3, 3, 9]]),
                }),
            ),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.installs().len(), 1);
        assert_eq!(wh.installs()[0].consumed.len(), 2);
    }

    #[test]
    fn same_relation_updates_do_not_compensate() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Eca::new(view(), Bag::new()).unwrap();
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        net.next();
        // Second update at the SAME relation: the pending query's slot for
        // relation 0 is pinned, so no compensation term is needed.
        wh.on_message(
            deliver(1, update(0, 1, Bag::from_tuples([tup![2, 3]]))),
            &mut net,
        )
        .unwrap();
        let Message::EcaQuery(q2) = net.next().unwrap().msg else {
            panic!()
        };
        assert_eq!(q2.terms.len(), 1);
        assert_eq!(wh.metrics().compensation_queries, 0);
    }

    #[test]
    fn quadratic_term_growth_under_k_interfering_updates() {
        // Alternate relations so every new query compensates all pending
        // ones: term counts 1, 2, 3, … — total size quadratic in K.
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Eca::new(view(), Bag::new()).unwrap();
        let mut term_counts = Vec::new();
        for k in 0..6i64 {
            let rel = (k % 2) as usize;
            let t = if rel == 0 { tup![k, 3] } else { tup![3, k] };
            wh.on_message(
                deliver(k as u64, update(rel, (k / 2) as u64, Bag::from_tuples([t]))),
                &mut net,
            )
            .unwrap();
            let Message::EcaQuery(q) = net.next().unwrap().msg else {
                panic!()
            };
            term_counts.push(q.terms.len());
        }
        // Every earlier pending query contributes one term (opposite
        // relation each time → compensable every other round at least).
        assert!(term_counts.windows(2).all(|w| w[1] >= w[0]));
        assert!(*term_counts.last().unwrap() >= 4);
    }

    #[test]
    fn unknown_answer_rejected() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Eca::new(view(), Bag::new()).unwrap();
        let res = wh.on_message(
            deliver(
                0,
                Message::EcaAnswer(EcaAnswer {
                    qid: 9,
                    result: Bag::new(),
                }),
            ),
            &mut net,
        );
        assert!(matches!(res, Err(WarehouseError::UnknownQuery { qid: 9 })));
    }
}
