//! **C-strobe** — the complete-consistency member of the Strobe family
//! (§3, \[ZGMW96]).
//!
//! C-strobe handles each update *completely* before the next one, so the
//! warehouse walks through every source state — complete consistency, like
//! SWEEP. The price is remote compensation:
//!
//! * an initial **delete** is applied locally through the unique key;
//! * an initial **insert** triggers a query; every update delivered while
//!   that query (or any query spawned for this update) is in flight is
//!   treated as concurrent:
//!   * a concurrent **insert** is handled locally — its contribution is
//!     *suppressed* from the answers by key;
//!   * a concurrent **delete** spawned **one compensating query per
//!     in-flight query** it interferes with, carrying the deleted tuple as
//!     a pinned local slot. Those queries can themselves be interfered
//!     with, spawning more — the `K^(n−2)` / `(n−1)!` blow-up the paper
//!     contrasts with SWEEP's flat `n−1` (experiment E5).
//!
//! The [`PolicyMetrics::compensation_queries`] counter measures the
//! blow-up directly.

use crate::error::WarehouseError;
use crate::install::InstallRecord;
use crate::metrics::PolicyMetrics;
use crate::policy::MaintenancePolicy;
use crate::queue::{PendingUpdate, UpdateQueue};
use crate::view::MaterializedView;
use dw_protocol::{source_node, Message, SweepQuery, UpdateId, WAREHOUSE_NODE};
use dw_relational::key::ViewKeyMap;
use dw_relational::{extend_partial, Bag, JoinSide, KeySpec, PartialDelta, Tuple, Value, ViewDef};
use dw_simnet::{Delivery, NetHandle, Time};
use std::collections::{BTreeMap, HashMap, VecDeque};

struct CsQuery {
    pd: PartialDelta,
    /// Chain positions whose slot is carried locally (the update's own
    /// relation implicitly, plus one pinned delete per compensation level).
    pinned: BTreeMap<usize, Bag>,
}

struct PartWork {
    /// In-flight queries by current qid.
    queries: HashMap<u64, CsQuery>,
    /// Finalized (projected) answers.
    answers: Vec<Bag>,
    /// Concurrent-insert suppression markers `(rel, key)`.
    suppress: Vec<(usize, Vec<Value>)>,
}

struct Processing {
    upd: UpdateId,
    delivered_at: Time,
    rel: usize,
    /// Parts of the update still to process (one tuple at a time).
    parts: VecDeque<(Tuple, i64)>,
    /// Seed tuple of the part currently under query evaluation.
    cur_seed: Option<Tuple>,
    work: Option<PartWork>,
    /// View delta accumulated by this update's completed parts.
    delta_accum: Bag,
}

/// The C-strobe warehouse policy.
pub struct CStrobe {
    view_def: ViewDef,
    keys: KeySpec,
    vkm: ViewKeyMap,
    view: MaterializedView,
    metrics: PolicyMetrics,
    install_log: Vec<InstallRecord>,
    record_snapshots: bool,
    next_qid: u64,
    queue: UpdateQueue,
    current: Option<Processing>,
}

impl CStrobe {
    /// Create the policy. Fails unless the view retains every relation's
    /// key attributes.
    pub fn new(
        view_def: ViewDef,
        keys: KeySpec,
        initial_view: Bag,
    ) -> Result<Self, WarehouseError> {
        let vkm = keys.view_key_map(&view_def)?;
        Ok(CStrobe {
            view_def,
            keys,
            vkm,
            view: MaterializedView::new(initial_view)?,
            metrics: PolicyMetrics::default(),
            install_log: Vec::new(),
            record_snapshots: true,
            next_qid: 0,
            queue: UpdateQueue::new(),
            current: None,
        })
    }

    fn n(&self) -> usize {
        self.view_def.num_relations()
    }

    fn fresh_qid(&mut self) -> u64 {
        let q = self.next_qid;
        self.next_qid += 1;
        q
    }

    /// Drive one query as far as possible: join pinned neighbors locally,
    /// send a network query otherwise. Returns the finalized answer when
    /// the chain is fully covered.
    fn drive(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        mut q: CsQuery,
    ) -> Result<Result<Bag, (u64, CsQuery)>, WarehouseError> {
        loop {
            let (j, side) = if q.pd.lo > 0 {
                (q.pd.lo - 1, JoinSide::Left)
            } else if q.pd.hi + 1 < self.n() {
                (q.pd.hi + 1, JoinSide::Right)
            } else {
                return Ok(Ok(q.pd.finalize(&self.view_def)?));
            };
            if let Some(pin) = q.pinned.get(&j) {
                let pin = pin.clone();
                q.pd = extend_partial(&self.view_def, &q.pd, &pin, side)?;
                continue;
            }
            let qid = self.fresh_qid();
            self.metrics.queries_sent += 1;
            net.send(
                WAREHOUSE_NODE,
                source_node(j),
                Message::SweepQuery(SweepQuery {
                    qid,
                    partial: q.pd.clone(),
                    side,
                    batch: 1,
                    epoch: 0,
                    scope: None,
                    pred: None,
                }),
            );
            return Ok(Err((qid, q)));
        }
    }

    /// Start processing the next part (or finish the update).
    fn advance_parts(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), WarehouseError> {
        loop {
            let Some(cur) = self.current.as_mut() else {
                return Ok(());
            };
            debug_assert!(cur.work.is_none());
            let Some((tuple, count)) = cur.parts.pop_front() else {
                // Update complete: install its accumulated delta.
                let cur = self.current.take().expect("checked");
                self.view.install(&cur.delta_accum)?;
                self.metrics.installs += 1;
                let now = net.now();
                self.metrics.record_staleness(cur.delivered_at, now);
                self.install_log.push(InstallRecord {
                    at: now,
                    consumed: vec![cur.upd],
                    view_after: self.record_snapshots.then(|| self.view.bag().clone()),
                });
                // Begin the next queued update, if any.
                if let Some(PendingUpdate { update, arrived_at }) = self.queue.pop() {
                    self.begin_update(net, update.id, update.delta, arrived_at)?;
                    if self.current.as_ref().is_some_and(|c| c.work.is_some()) {
                        return Ok(());
                    }
                    continue;
                }
                return Ok(());
            };
            if count < 0 {
                // Initial delete: local through the unique key.
                let rel = cur.rel;
                let key = self.keys.key_of_tuple(rel, &tuple);
                let snapshot = self.view.bag().plus(&cur.delta_accum);
                for (t, c) in snapshot.iter() {
                    if self.vkm.key_of_view_tuple(rel, t) == key {
                        cur.delta_accum.add(t.clone(), -c);
                    }
                }
                continue; // next part
            }
            // Initial insert: root query.
            cur.cur_seed = Some(tuple.clone());
            let pd = PartialDelta::seed(&self.view_def, cur.rel, &Bag::singleton(tuple, 1))?;
            let root = CsQuery {
                pd,
                pinned: BTreeMap::new(),
            };
            let mut work = PartWork {
                queries: HashMap::new(),
                answers: Vec::new(),
                suppress: Vec::new(),
            };
            match self.drive(net, root)? {
                Ok(ans) => work.answers.push(ans),
                Err((qid, q)) => {
                    work.queries.insert(qid, q);
                }
            }
            let cur = self.current.as_mut().expect("still processing");
            if work.queries.is_empty() {
                Self::finish_part(cur, &work, &self.vkm, self.view.bag());
                continue;
            }
            cur.work = Some(work);
            // Updates already queued behind this one were applied at their
            // sources before our queries will arrive there — they are
            // concurrent with this part's evaluation and must be
            // compensated exactly like updates that arrive later.
            let backlog: Vec<(usize, Bag)> = self
                .queue
                .iter()
                .map(|p| (p.update.id.source, p.update.delta.clone()))
                .collect();
            for (rel, delta) in backlog {
                self.register_concurrent(net, rel, &delta)?;
            }
            // Compensating queries may complete locally; if everything
            // drained already, the part is done.
            let cur = self.current.as_mut().expect("still processing");
            if let Some(w) = cur.work.as_ref() {
                if w.queries.is_empty() {
                    let work = cur.work.take().expect("present");
                    Self::finish_part(cur, &work, &self.vkm, self.view.bag());
                    continue;
                }
            }
            return Ok(());
        }
    }

    /// Fold a completed part's answers into the update's delta.
    fn finish_part(cur: &mut Processing, work: &PartWork, vkm: &ViewKeyMap, view: &Bag) {
        // Set-union all answers, scrub suppressed keys, dedupe vs. view.
        let mut seen = Bag::new();
        for ans in &work.answers {
            for (t, _) in ans.iter() {
                if seen.count(t) != 0 {
                    continue;
                }
                if work
                    .suppress
                    .iter()
                    .any(|(rel, key)| &vkm.key_of_view_tuple(*rel, t) == key)
                {
                    continue;
                }
                seen.add(t.clone(), 1);
            }
        }
        for (t, _) in seen.iter() {
            if view.count(t) + cur.delta_accum.count(t) == 0 {
                cur.delta_accum.add(t.clone(), 1);
            }
        }
    }

    fn begin_update(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        id: UpdateId,
        delta: Bag,
        delivered_at: Time,
    ) -> Result<(), WarehouseError> {
        for (t, c) in delta.iter() {
            if c.abs() != 1 {
                return Err(WarehouseError::Precondition {
                    reason: format!(
                        "C-strobe requires unit-multiplicity keyed updates, got {c} for {t}"
                    ),
                });
            }
        }
        let mut parts: Vec<(Tuple, i64)> = delta.iter().map(|(t, c)| (t.clone(), c)).collect();
        // Deterministic order: deletes first, then sorted tuples.
        parts.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        self.current = Some(Processing {
            upd: id,
            delivered_at,
            rel: id.source,
            parts: parts.into(),
            cur_seed: None,
            work: None,
            delta_accum: Bag::new(),
        });
        self.advance_parts(net)
    }

    /// Register an update that arrived while a part is being evaluated:
    /// queue it for its own round, and compensate the in-flight work.
    fn register_concurrent(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        rel: usize,
        delta: &Bag,
    ) -> Result<(), WarehouseError> {
        let Some(cur) = self.current.as_mut() else {
            return Ok(());
        };
        let Some(work) = cur.work.as_mut() else {
            return Ok(());
        };
        let seed_rel = cur.rel;
        let Some(seed_tuple) = cur.cur_seed.clone() else {
            return Ok(());
        };
        let seed_bag = Bag::singleton(seed_tuple, 1);
        let mut spawned: Vec<CsQuery> = Vec::new();
        for (t, c) in delta.iter() {
            if c > 0 {
                // Concurrent insert: suppress its contribution by key.
                work.suppress.push((rel, self.keys.key_of_tuple(rel, t)));
            } else {
                // Concurrent delete: spawn one compensating query per
                // in-flight query it can interfere with. The new query
                // restarts from the part's seed with the deleted tuple
                // carried as an extra pinned local slot.
                for q in work.queries.values() {
                    if rel == seed_rel || q.pinned.contains_key(&rel) {
                        continue; // that slot is local — cannot interfere
                    }
                    let mut pinned = q.pinned.clone();
                    pinned.insert(rel, Bag::singleton(t.clone(), 1));
                    spawned.push(CsQuery {
                        pd: PartialDelta::seed(&self.view_def, seed_rel, &seed_bag)?,
                        pinned,
                    });
                }
            }
        }
        for q in spawned {
            self.metrics.compensation_queries += 1;
            match self.drive(net, q)? {
                Ok(ans) => {
                    if let Some(cur) = self.current.as_mut() {
                        if let Some(work) = cur.work.as_mut() {
                            work.answers.push(ans);
                        }
                    }
                }
                Err((qid, q)) => {
                    if let Some(cur) = self.current.as_mut() {
                        if let Some(work) = cur.work.as_mut() {
                            work.queries.insert(qid, q);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn on_answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        qid: u64,
        partial: PartialDelta,
    ) -> Result<(), WarehouseError> {
        let cur = self
            .current
            .as_mut()
            .ok_or(WarehouseError::UnknownQuery { qid })?;
        let work = cur
            .work
            .as_mut()
            .ok_or(WarehouseError::UnknownQuery { qid })?;
        let mut q = work
            .queries
            .remove(&qid)
            .ok_or(WarehouseError::UnknownQuery { qid })?;
        q.pd = partial;
        match self.drive(net, q)? {
            Ok(ans) => {
                let cur = self.current.as_mut().expect("processing");
                let work = cur.work.as_mut().expect("part in flight");
                work.answers.push(ans);
                if work.queries.is_empty() {
                    let work = cur.work.take().expect("present");
                    Self::finish_part(cur, &work, &self.vkm, self.view.bag());
                    return self.advance_parts(net);
                }
                Ok(())
            }
            Err((new_qid, q)) => {
                let cur = self.current.as_mut().expect("processing");
                let work = cur.work.as_mut().expect("part in flight");
                work.queries.insert(new_qid, q);
                Ok(())
            }
        }
    }
}

impl MaintenancePolicy for CStrobe {
    fn name(&self) -> &'static str {
        "c-strobe"
    }

    fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        match delivery.msg {
            Message::Update(u) => {
                self.metrics.updates_received += 1;
                if self.current.is_some() {
                    self.register_concurrent(net, u.id.source, &u.delta)?;
                    self.queue.push(u, delivery.at);
                    Ok(())
                } else {
                    self.begin_update(net, u.id, u.delta, delivery.at)
                }
            }
            Message::SweepAnswer(a) => {
                self.metrics.answers_received += 1;
                self.on_answer(net, a.qid, a.partial)
            }
            other => Err(WarehouseError::UnexpectedMessage {
                policy: self.name(),
                label: dw_simnet::Payload::label(&other),
            }),
        }
    }

    fn view(&self) -> &Bag {
        self.view.bag()
    }

    fn installs(&self) -> &[InstallRecord] {
        &self.install_log
    }

    fn metrics(&self) -> &PolicyMetrics {
        &self.metrics
    }

    fn is_quiescent(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    fn set_record_snapshots(&mut self, record: bool) {
        self.record_snapshots = record;
    }
}
