//! **Strobe** — the multi-source baseline (§3, \[ZGMW96]).
//!
//! Strobe assumes every base relation has a unique key and that the view
//! projection retains the key attributes of *every* relation. Updates are
//! processed as they arrive:
//!
//! * a **delete** is handled entirely locally: a `key_delete` action is
//!   appended to the action list `AL`, and a delete-marker is attached to
//!   every query still in flight (whose answer may contain the doomed
//!   tuple);
//! * an **insert** triggers a query `V⟨ΔR⟩` evaluated source by source —
//!   *without* any compensation. Error terms from concurrent inserts become
//!   duplicates, which the key assumption lets the install suppress.
//!
//! The action list is applied to the materialized view **only when the
//! unanswered query set `UQS` drains** — Strobe requires quiescence; under
//! sustained updates the view trails arbitrarily (experiment E9). It
//! provides strong consistency: every install lands exactly on the
//! ground-truth state of a delivery prefix.

use crate::error::WarehouseError;
use crate::install::InstallRecord;
use crate::metrics::PolicyMetrics;
use crate::policy::MaintenancePolicy;
use crate::view::MaterializedView;
use dw_protocol::{source_node, Message, SweepQuery, UpdateId, WAREHOUSE_NODE};
use dw_relational::key::ViewKeyMap;
use dw_relational::{Bag, JoinSide, KeySpec, PartialDelta, Value, ViewDef};
use dw_simnet::{Delivery, NetHandle, Time};
use std::collections::HashMap;

/// One entry of the action list.
#[derive(Clone, Debug)]
enum Action {
    /// Insert these view tuples (duplicates suppressed at apply time).
    Insert(Bag),
    /// Delete every view tuple whose `rel`-key equals `key`.
    KeyDelete { rel: usize, key: Vec<Value> },
}

struct InFlight {
    qid: u64,
    update: UpdateId,
    pd: PartialDelta,
    /// Delete-markers to apply to this query's final answer.
    pending_deletes: Vec<(usize, Vec<Value>)>,
}

/// The Strobe warehouse policy.
pub struct Strobe {
    view_def: ViewDef,
    keys: KeySpec,
    vkm: ViewKeyMap,
    view: MaterializedView,
    metrics: PolicyMetrics,
    install_log: Vec<InstallRecord>,
    record_snapshots: bool,
    next_qid: u64,
    uqs: Vec<InFlight>,
    al: Vec<Action>,
    /// Updates with parts still being processed: id → (outstanding, time).
    outstanding: HashMap<UpdateId, (usize, Time)>,
    /// Fully processed updates awaiting the next install.
    ready: Vec<(UpdateId, Time)>,
}

impl Strobe {
    /// Create the policy. Fails unless the view retains every relation's
    /// key attributes (the Strobe assumption).
    pub fn new(
        view_def: ViewDef,
        keys: KeySpec,
        initial_view: Bag,
    ) -> Result<Self, WarehouseError> {
        let vkm = keys.view_key_map(&view_def)?;
        Ok(Strobe {
            view_def,
            keys,
            vkm,
            view: MaterializedView::new(initial_view)?,
            metrics: PolicyMetrics::default(),
            install_log: Vec::new(),
            record_snapshots: true,
            next_qid: 0,
            uqs: Vec::new(),
            al: Vec::new(),
            outstanding: HashMap::new(),
            ready: Vec::new(),
        })
    }

    /// Number of actions waiting for quiescence (observability — this is
    /// the "view trails the sources" backlog).
    pub fn action_backlog(&self) -> usize {
        self.al.len()
    }

    fn n(&self) -> usize {
        self.view_def.num_relations()
    }

    fn part_done(&mut self, id: UpdateId) {
        if let Some((left, at)) = self.outstanding.get_mut(&id) {
            *left -= 1;
            if *left == 0 {
                let at = *at;
                self.outstanding.remove(&id);
                self.ready.push((id, at));
            }
        }
    }

    fn next_target(&self, pd: &PartialDelta) -> Option<(usize, JoinSide)> {
        if pd.lo > 0 {
            Some((pd.lo - 1, JoinSide::Left))
        } else if pd.hi + 1 < self.n() {
            Some((pd.hi + 1, JoinSide::Right))
        } else {
            None
        }
    }

    fn send(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        pd: &PartialDelta,
        j: usize,
        side: JoinSide,
    ) -> u64 {
        let qid = self.next_qid;
        self.next_qid += 1;
        self.metrics.queries_sent += 1;
        net.send(
            WAREHOUSE_NODE,
            source_node(j),
            Message::SweepQuery(SweepQuery {
                qid,
                partial: pd.clone(),
                side,
                batch: 1,
                epoch: 0,
                scope: None,
                pred: None,
            }),
        );
        qid
    }

    fn on_update(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        id: UpdateId,
        delta: Bag,
        at: Time,
    ) -> Result<(), WarehouseError> {
        let rel = id.source;
        let parts: Vec<(dw_relational::Tuple, i64)> =
            delta.iter().map(|(t, c)| (t.clone(), c)).collect();
        if parts.is_empty() {
            self.ready.push((id, at));
            return self.try_install(net);
        }
        self.outstanding.insert(id, (parts.len(), at));
        for (t, c) in parts {
            if c.abs() != 1 {
                return Err(WarehouseError::Precondition {
                    reason: format!(
                        "Strobe requires unit-multiplicity keyed updates, got count {c} for {t}"
                    ),
                });
            }
            if c < 0 {
                // Delete: handled locally.
                let key = self.keys.key_of_tuple(rel, &t);
                for q in &mut self.uqs {
                    q.pending_deletes.push((rel, key.clone()));
                }
                self.al.push(Action::KeyDelete { rel, key });
                self.part_done(id);
            } else {
                // Insert: launch a query sweep.
                let pd = PartialDelta::seed(&self.view_def, rel, &Bag::singleton(t, 1))?;
                match self.next_target(&pd) {
                    Some((j, side)) => {
                        let qid = self.send(net, &pd, j, side);
                        self.uqs.push(InFlight {
                            qid,
                            update: id,
                            pd,
                            pending_deletes: Vec::new(),
                        });
                    }
                    None => {
                        // Single-relation chain: complete immediately.
                        let ans = pd.finalize(&self.view_def)?;
                        self.al.push(Action::Insert(ans));
                        self.part_done(id);
                    }
                }
            }
        }
        self.try_install(net)
    }

    fn on_answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        qid: u64,
        partial: PartialDelta,
    ) -> Result<(), WarehouseError> {
        let pos = self
            .uqs
            .iter()
            .position(|q| q.qid == qid)
            .ok_or(WarehouseError::UnknownQuery { qid })?;
        self.uqs[pos].pd = partial;
        match self.next_target(&self.uqs[pos].pd) {
            Some((j, side)) => {
                let pd = self.uqs[pos].pd.clone();
                let new_qid = self.send(net, &pd, j, side);
                self.uqs[pos].qid = new_qid;
                Ok(())
            }
            None => {
                let q = self.uqs.remove(pos);
                let mut ans = q.pd.finalize(&self.view_def)?;
                // Apply delete-markers accumulated while in flight.
                for (rel, key) in &q.pending_deletes {
                    ans = ans.filter(|t| &self.vkm.key_of_view_tuple(*rel, t) != key);
                }
                self.al.push(Action::Insert(ans));
                self.part_done(q.update);
                self.try_install(net)
            }
        }
    }

    /// Apply the action list when UQS is empty (the quiescence condition).
    fn try_install(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), WarehouseError> {
        if !self.uqs.is_empty() || (self.al.is_empty() && self.ready.is_empty()) {
            return Ok(());
        }
        // Build one delta from the ordered action list, with duplicate
        // suppression against the evolving view state.
        let mut working = self.view.bag().clone();
        let mut delta = Bag::new();
        for action in self.al.drain(..) {
            match action {
                Action::Insert(bag) => {
                    for (t, _) in bag.iter() {
                        if working.count(t) == 0 {
                            working.add(t.clone(), 1);
                            delta.add(t.clone(), 1);
                        }
                    }
                }
                Action::KeyDelete { rel, key } => {
                    let doomed: Vec<_> = working
                        .iter()
                        .filter(|(t, _)| self.vkm.key_of_view_tuple(rel, t) == key)
                        .map(|(t, c)| (t.clone(), c))
                        .collect();
                    for (t, c) in doomed {
                        working.add(t.clone(), -c);
                        delta.add(t, -c);
                    }
                }
            }
        }
        self.view.install(&delta)?;
        self.metrics.installs += 1;
        let now = net.now();
        for &(_, d) in &self.ready {
            self.metrics.record_staleness(d, now);
        }
        self.install_log.push(InstallRecord {
            at: now,
            consumed: self.ready.drain(..).map(|(id, _)| id).collect(),
            view_after: self.record_snapshots.then(|| self.view.bag().clone()),
        });
        Ok(())
    }
}

impl MaintenancePolicy for Strobe {
    fn name(&self) -> &'static str {
        "strobe"
    }

    fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        match delivery.msg {
            Message::Update(u) => {
                self.metrics.updates_received += 1;
                self.on_update(net, u.id, u.delta, delivery.at)
            }
            Message::SweepAnswer(a) => {
                self.metrics.answers_received += 1;
                self.on_answer(net, a.qid, a.partial)
            }
            other => Err(WarehouseError::UnexpectedMessage {
                policy: self.name(),
                label: dw_simnet::Payload::label(&other),
            }),
        }
    }

    fn view(&self) -> &Bag {
        self.view.bag()
    }

    fn installs(&self) -> &[InstallRecord] {
        &self.install_log
    }

    fn metrics(&self) -> &PolicyMetrics {
        &self.metrics
    }

    fn is_quiescent(&self) -> bool {
        self.uqs.is_empty() && self.al.is_empty() && self.outstanding.is_empty()
    }

    fn set_record_snapshots(&mut self, record: bool) {
        self.record_snapshots = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_protocol::{SourceUpdate, SweepAnswer};
    use dw_relational::{tup, Schema, ViewDefBuilder};
    use dw_simnet::{Network, ENV};

    /// Keyed two-relation view: keys R1.A and R2.C, both projected.
    fn keyed_view() -> (ViewDef, KeySpec) {
        let v = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .join("R1.B", "R2.C")
            .project(["R1.A", "R2.C", "R2.D"])
            .build()
            .unwrap();
        let k = KeySpec::from_names(&v, [vec!["R1.A"], vec!["R2.C"]]).unwrap();
        (v, k)
    }

    fn deliver(at: Time, msg: Message) -> Delivery<Message> {
        Delivery {
            at,
            from: ENV,
            to: WAREHOUSE_NODE,
            msg,
        }
    }

    fn update(source: usize, seq: u64, delta: Bag) -> Message {
        Message::Update(SourceUpdate {
            id: UpdateId { source, seq },
            delta,
            global: None,
        })
    }

    #[test]
    fn missing_keys_rejected_at_construction() {
        let v = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .join("R1.B", "R2.C")
            .project(["R2.D"])
            .build()
            .unwrap();
        let k = KeySpec::from_names(&v, [vec!["R1.A"], vec!["R2.C"]]).unwrap();
        assert!(Strobe::new(v, k, Bag::new()).is_err());
    }

    #[test]
    fn delete_is_local_and_installs_at_quiescence() {
        let (v, k) = keyed_view();
        let mut net: Network<Message> = Network::new(0);
        // View contains (A=1, C=3, D=7).
        let mut wh = Strobe::new(v, k, Bag::from_tuples([tup![1, 3, 7]])).unwrap();
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_pairs([(tup![1, 3], -1)]))),
            &mut net,
        )
        .unwrap();
        // No messages sent; tuple gone.
        assert!(net.next().is_none());
        assert!(wh.view().is_empty());
        assert_eq!(wh.metrics().queries_sent, 0);
        assert_eq!(wh.installs().len(), 1);
        assert!(wh.is_quiescent());
    }

    #[test]
    fn insert_sweeps_without_compensation_and_waits_for_quiescence() {
        let (v, k) = keyed_view();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Strobe::new(v, k, Bag::new()).unwrap();
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(q) = net.next().unwrap().msg else {
            panic!()
        };
        assert_eq!(q.side, JoinSide::Right);
        assert_eq!(wh.installs().len(), 0);
        wh.on_message(
            deliver(
                5,
                Message::SweepAnswer(SweepAnswer {
                    qid: q.qid,
                    partial: PartialDelta {
                        lo: 0,
                        hi: 1,
                        bag: Bag::from_tuples([tup![1, 3, 3, 7]]),
                    },
                }),
            ),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.view().count(&tup![1, 3, 7]), 1);
        assert_eq!(wh.installs().len(), 1);
    }

    #[test]
    fn concurrent_delete_marker_scrubs_in_flight_answer() {
        let (v, k) = keyed_view();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Strobe::new(v, k, Bag::new()).unwrap();
        // Insert at R1 launches a query.
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(q) = net.next().unwrap().msg else {
            panic!()
        };
        // Concurrent delete of R2 key 3 arrives while the query is out.
        wh.on_message(
            deliver(1, update(1, 0, Bag::from_pairs([(tup![3, 7], -1)]))),
            &mut net,
        )
        .unwrap();
        // The (stale) answer still contains the joined tuple.
        wh.on_message(
            deliver(
                5,
                Message::SweepAnswer(SweepAnswer {
                    qid: q.qid,
                    partial: PartialDelta {
                        lo: 0,
                        hi: 1,
                        bag: Bag::from_tuples([tup![1, 3, 3, 7]]),
                    },
                }),
            ),
            &mut net,
        )
        .unwrap();
        // The marker scrubbed it; the view must NOT contain it.
        assert_eq!(wh.view().count(&tup![1, 3, 7]), 0);
        assert!(wh.is_quiescent());
    }

    #[test]
    fn duplicate_suppression_on_double_derivation() {
        let (v, k) = keyed_view();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Strobe::new(v, k, Bag::new()).unwrap();
        // Two concurrent inserts whose answers both contain the join tuple.
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        wh.on_message(
            deliver(1, update(1, 0, Bag::from_tuples([tup![3, 7]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(q1) = net.next().unwrap().msg else {
            panic!()
        };
        let Message::SweepQuery(q2) = net.next().unwrap().msg else {
            panic!()
        };
        // Both answers contain (1,3,3,7): the error term included twice.
        for q in [q1, q2] {
            wh.on_message(
                deliver(
                    5,
                    Message::SweepAnswer(SweepAnswer {
                        qid: q.qid,
                        partial: PartialDelta {
                            lo: 0,
                            hi: 1,
                            bag: Bag::from_tuples([tup![1, 3, 3, 7]]),
                        },
                    }),
                ),
                &mut net,
            )
            .unwrap();
        }
        // Suppressed to a single copy.
        assert_eq!(wh.view().count(&tup![1, 3, 7]), 1);
        assert_eq!(wh.installs().len(), 1);
        assert_eq!(wh.installs()[0].consumed.len(), 2);
    }

    #[test]
    fn non_unit_multiplicity_rejected() {
        let (v, k) = keyed_view();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Strobe::new(v, k, Bag::new()).unwrap();
        let res = wh.on_message(
            deliver(0, update(0, 0, Bag::from_pairs([(tup![1, 3], 2)]))),
            &mut net,
        );
        assert!(matches!(res, Err(WarehouseError::Precondition { .. })));
    }

    #[test]
    fn no_install_while_queries_outstanding() {
        let (v, k) = keyed_view();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Strobe::new(v, k, Bag::from_tuples([tup![9, 5, 6]])).unwrap();
        // Insert (query outstanding), then a local delete: the delete's AL
        // entry must NOT be applied yet.
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        wh.on_message(
            deliver(1, update(0, 1, Bag::from_pairs([(tup![9, 5], -1)]))),
            &mut net,
        )
        .unwrap();
        assert_eq!(
            wh.view().count(&tup![9, 5, 6]),
            1,
            "delete must wait for quiescence"
        );
        assert_eq!(wh.action_backlog(), 1);
        assert!(!wh.is_quiescent());
    }
}
