//! **Pipelined SWEEP** — the second §5.3 optimization, fully worked out.
//!
//! > "Another optimization … is to pipeline the view construction for
//! > multiple updates. This will introduce some complexity in the data
//! > warehouse software module but will result in a rapid installation of
//! > view changes … the view changes should be incorporated in the order
//! > of the arrival of the updates and a more elaborate mechanism will be
//! > needed to detect concurrent updates."
//!
//! The elaborate mechanism: every delivered update gets a global *arrival
//! index*; the sweep for update `k` runs concurrently with sweeps for other
//! updates, and when its answer from source `j` arrives it compensates for
//! exactly the updates from `j` **with arrival index greater than `k`**
//! (delivered so far). FIFO makes that precise:
//!
//! * an update from `j` delivered *before* the answer was applied at the
//!   source before the query was evaluated, so it is in the answer; it
//!   belongs in `ΔV_k`'s target state only if its index is `< k`;
//! * an update delivered *after* the answer cannot be in the answer and
//!   always has index `> k` — nothing to do.
//!
//! Completed view changes are parked and installed strictly in arrival
//! order, so the policy preserves SWEEP's **complete consistency** while
//! overlapping the per-update sweep latency — the staleness win is
//! measured in experiment E10.

use crate::error::WarehouseError;
use crate::install::InstallRecord;
use crate::metrics::PolicyMetrics;
use crate::policy::MaintenancePolicy;
use crate::view::MaterializedView;
use dw_protocol::{source_node, Message, SweepQuery, UpdateId, WAREHOUSE_NODE};
use dw_relational::{extend_partial, Bag, JoinSide, PartialDelta, ViewDef};
use dw_simnet::{Delivery, NetHandle, Time};
use std::collections::{BTreeMap, HashMap};

/// Tunables for pipelined SWEEP.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PipelinedSweepOptions {
    /// Maximum sweeps in flight at once. `0` means unbounded. A window of
    /// 1 degenerates to classic SWEEP.
    pub window: usize,
}

/// One logged update (kept until every older sweep has completed).
#[derive(Clone, Debug)]
struct LoggedUpdate {
    id: UpdateId,
    delta: Bag,
    arrived_at: Time,
}

/// One in-flight sweep.
#[derive(Clone, Debug)]
struct Flight {
    /// Arrival index of the update this sweep serves.
    index: u64,
    dv: PartialDelta,
    /// `TempView` of the outstanding query.
    temp: PartialDelta,
    j: usize,
    side: JoinSide,
}

/// The pipelined-SWEEP warehouse policy.
pub struct PipelinedSweep {
    view_def: ViewDef,
    view: MaterializedView,
    metrics: PolicyMetrics,
    install_log: Vec<InstallRecord>,
    record_snapshots: bool,
    opts: PipelinedSweepOptions,
    next_qid: u64,
    /// All delivered updates by arrival index.
    log: BTreeMap<u64, LoggedUpdate>,
    next_index: u64,
    /// Sweeps awaiting an answer, by outstanding query id.
    flights: HashMap<u64, Flight>,
    /// Updates delivered but not yet started (window backpressure).
    waiting: Vec<u64>,
    /// Completed view changes parked for in-order install.
    ready: BTreeMap<u64, Bag>,
    /// Next arrival index to install.
    next_install: u64,
}

impl PipelinedSweep {
    /// Create the policy with the correct initial view.
    pub fn new(view_def: ViewDef, initial_view: Bag) -> Result<Self, WarehouseError> {
        Self::with_options(view_def, initial_view, PipelinedSweepOptions::default())
    }

    /// Create with an explicit pipeline window.
    pub fn with_options(
        view_def: ViewDef,
        initial_view: Bag,
        opts: PipelinedSweepOptions,
    ) -> Result<Self, WarehouseError> {
        Ok(PipelinedSweep {
            view_def,
            view: MaterializedView::new(initial_view)?,
            metrics: PolicyMetrics::default(),
            install_log: Vec::new(),
            record_snapshots: true,
            opts,
            next_qid: 0,
            log: BTreeMap::new(),
            next_index: 0,
            flights: HashMap::new(),
            waiting: Vec::new(),
            ready: BTreeMap::new(),
            next_install: 0,
        })
    }

    /// Number of sweeps currently in flight (observability).
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    fn n(&self) -> usize {
        self.view_def.num_relations()
    }

    fn in_progress(&self) -> usize {
        // Started but not yet parked/installed.
        self.flights.len()
    }

    fn send_query(&mut self, net: &mut dyn NetHandle<Message>, flight: Flight) -> u64 {
        let qid = self.next_qid;
        self.next_qid += 1;
        self.metrics.queries_sent += 1;
        net.send(
            WAREHOUSE_NODE,
            source_node(flight.j),
            Message::SweepQuery(SweepQuery {
                qid,
                partial: flight.dv.clone(),
                side: flight.side,
                batch: 1,
                epoch: 0,
                scope: None,
                pred: None,
            }),
        );
        self.flights.insert(qid, flight);
        qid
    }

    /// First query target for a seeded sweep (left first, like Figure 4).
    fn first_target(&self, pd: &PartialDelta) -> Option<(usize, JoinSide)> {
        if pd.lo > 0 {
            Some((pd.lo - 1, JoinSide::Left))
        } else if pd.hi + 1 < self.n() {
            Some((pd.hi + 1, JoinSide::Right))
        } else {
            None
        }
    }

    fn start_sweep(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        index: u64,
    ) -> Result<(), WarehouseError> {
        let upd = self.log.get(&index).expect("logged").clone();
        let seeded = PartialDelta::seed(&self.view_def, upd.id.source, &upd.delta)?;
        match self.first_target(&seeded) {
            Some((j, side)) => {
                self.send_query(
                    net,
                    Flight {
                        index,
                        temp: seeded.clone(),
                        dv: seeded,
                        j,
                        side,
                    },
                );
            }
            None => {
                // Single-relation chain: complete immediately.
                let final_bag = seeded.finalize(&self.view_def)?;
                self.ready.insert(index, final_bag);
                self.drain_installs(net)?;
            }
        }
        Ok(())
    }

    /// Start waiting sweeps while the window allows.
    fn fill_window(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), WarehouseError> {
        while !self.waiting.is_empty()
            && (self.opts.window == 0 || self.in_progress() < self.opts.window)
        {
            let index = self.waiting.remove(0);
            self.start_sweep(net, index)?;
        }
        Ok(())
    }

    /// Merge the deltas of every logged update from source `j` with
    /// arrival index greater than `k` — the pipelined compensation set.
    fn later_updates_from(&self, j: usize, k: u64) -> Bag {
        let mut out = Bag::new();
        for (&idx, u) in self.log.range(k + 1..) {
            debug_assert!(idx > k);
            if u.id.source == j {
                out.merge(&u.delta);
            }
        }
        out
    }

    fn on_answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        qid: u64,
        partial: PartialDelta,
    ) -> Result<(), WarehouseError> {
        let mut flight = self
            .flights
            .remove(&qid)
            .ok_or(WarehouseError::UnknownQuery { qid })?;
        flight.dv = partial;
        // Pipelined on-line error correction: only updates *ordered after*
        // this sweep's update are foreign to its target state.
        let merged = self.later_updates_from(flight.j, flight.index);
        if !merged.is_empty() {
            let err = extend_partial(&self.view_def, &flight.temp, &merged, flight.side)?;
            flight.dv.bag.subtract(&err.bag);
            self.metrics.local_compensations += 1;
        }
        // Advance.
        match self.first_target(&flight.dv) {
            Some((j, side)) => {
                flight.temp = flight.dv.clone();
                flight.j = j;
                flight.side = side;
                self.send_query(net, flight);
            }
            None => {
                let final_bag = flight.dv.finalize(&self.view_def)?;
                self.ready.insert(flight.index, final_bag);
                self.drain_installs(net)?;
                self.fill_window(net)?;
            }
        }
        Ok(())
    }

    /// Install parked view changes in arrival order.
    fn drain_installs(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), WarehouseError> {
        while let Some(bag) = self.ready.remove(&self.next_install) {
            let upd = self.log.get(&self.next_install).expect("logged").clone();
            self.view.install(&bag)?;
            self.metrics.installs += 1;
            self.metrics.record_staleness(upd.arrived_at, net.now());
            self.install_log.push(InstallRecord {
                at: net.now(),
                consumed: vec![upd.id],
                view_after: self.record_snapshots.then(|| self.view.bag().clone()),
            });
            self.next_install += 1;
        }
        // Prune log entries no in-flight or future sweep can reference:
        // everything older than the oldest unfinished index.
        let oldest_active = self
            .flights
            .values()
            .map(|f| f.index)
            .chain(self.waiting.iter().copied())
            .min()
            .unwrap_or(self.next_index);
        let keep_from = oldest_active.min(self.next_install);
        let stale: Vec<u64> = self.log.range(..keep_from).map(|(&i, _)| i).collect();
        for i in stale {
            // Installed AND older than every active sweep — safe to drop.
            if i < self.next_install {
                self.log.remove(&i);
            }
        }
        Ok(())
    }
}

impl MaintenancePolicy for PipelinedSweep {
    fn name(&self) -> &'static str {
        "pipelined-sweep"
    }

    fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        match delivery.msg {
            Message::Update(u) => {
                self.metrics.updates_received += 1;
                let index = self.next_index;
                self.next_index += 1;
                self.log.insert(
                    index,
                    LoggedUpdate {
                        id: u.id,
                        delta: u.delta,
                        arrived_at: delivery.at,
                    },
                );
                self.waiting.push(index);
                self.fill_window(net)
            }
            Message::SweepAnswer(a) => {
                self.metrics.answers_received += 1;
                self.on_answer(net, a.qid, a.partial)
            }
            other => Err(WarehouseError::UnexpectedMessage {
                policy: self.name(),
                label: dw_simnet::Payload::label(&other),
            }),
        }
    }

    fn view(&self) -> &Bag {
        self.view.bag()
    }

    fn installs(&self) -> &[InstallRecord] {
        &self.install_log
    }

    fn metrics(&self) -> &PolicyMetrics {
        &self.metrics
    }

    fn is_quiescent(&self) -> bool {
        self.flights.is_empty() && self.waiting.is_empty() && self.ready.is_empty()
    }

    fn set_record_snapshots(&mut self, record: bool) {
        self.record_snapshots = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_protocol::{SourceUpdate, SweepAnswer};
    use dw_relational::{tup, Schema, ViewDefBuilder};
    use dw_simnet::{Network, ENV};

    fn two_chain() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .join("R1.B", "R2.C")
            .build()
            .unwrap()
    }

    fn deliver(at: Time, msg: Message) -> Delivery<Message> {
        Delivery {
            at,
            from: ENV,
            to: WAREHOUSE_NODE,
            msg,
        }
    }

    fn update(source: usize, seq: u64, delta: Bag) -> Message {
        Message::Update(SourceUpdate {
            id: UpdateId { source, seq },
            delta,
            global: None,
        })
    }

    #[test]
    fn two_sweeps_overlap_and_install_in_order() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = PipelinedSweep::new(two_chain(), Bag::new()).unwrap();
        // Two updates at source 0 arrive back to back.
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        wh.on_message(
            deliver(1, update(0, 1, Bag::from_tuples([tup![2, 4]]))),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.in_flight(), 2, "both sweeps in flight at once");
        // Grab both queries; answer the SECOND first.
        let q1 = net.next().unwrap();
        let q2 = net.next().unwrap();
        let (Message::SweepQuery(q1), Message::SweepQuery(q2)) = (q1.msg, q2.msg) else {
            panic!()
        };
        wh.on_message(
            deliver(
                10,
                Message::SweepAnswer(SweepAnswer {
                    qid: q2.qid,
                    partial: PartialDelta {
                        lo: 0,
                        hi: 1,
                        bag: Bag::from_tuples([tup![2, 4, 4, 9]]),
                    },
                }),
            ),
            &mut net,
        )
        .unwrap();
        // Out-of-order completion: nothing installed yet.
        assert_eq!(wh.installs().len(), 0);
        wh.on_message(
            deliver(
                11,
                Message::SweepAnswer(SweepAnswer {
                    qid: q1.qid,
                    partial: PartialDelta {
                        lo: 0,
                        hi: 1,
                        bag: Bag::from_tuples([tup![1, 3, 3, 7]]),
                    },
                }),
            ),
            &mut net,
        )
        .unwrap();
        // Both install, in arrival order.
        assert_eq!(wh.installs().len(), 2);
        assert_eq!(wh.installs()[0].consumed[0].seq, 0);
        assert_eq!(wh.installs()[1].consumed[0].seq, 1);
        assert!(wh.is_quiescent());
    }

    #[test]
    fn compensation_only_for_later_indexed_updates() {
        // Update A (index 0, source 1) sweeps toward source 0; update B
        // (index 1, source 0) arrives before A's answer → compensate A.
        // Then B's own sweep toward source 1 must NOT compensate for A
        // (index 0 < 1), even though A is from source 1 and still logged.
        let mut net: Network<Message> = Network::new(0);
        let mut wh = PipelinedSweep::new(two_chain(), Bag::new()).unwrap();
        wh.on_message(
            deliver(0, update(1, 0, Bag::from_tuples([tup![3, 9]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(qa) = net.next().unwrap().msg else {
            panic!()
        };
        assert_eq!(qa.side, JoinSide::Left);
        wh.on_message(
            deliver(1, update(0, 0, Bag::from_tuples([tup![7, 3]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(qb) = net.next().unwrap().msg else {
            panic!()
        };
        assert_eq!(qb.side, JoinSide::Right);

        // A's answer includes B's tuple (source already applied it).
        wh.on_message(
            deliver(
                5,
                Message::SweepAnswer(SweepAnswer {
                    qid: qa.qid,
                    partial: PartialDelta {
                        lo: 0,
                        hi: 1,
                        bag: Bag::from_tuples([tup![7, 3, 3, 9]]),
                    },
                }),
            ),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.metrics().local_compensations, 1);
        // A's install: the error term (7,3)⋈(3,9) removed → empty ΔV.
        assert_eq!(wh.installs().len(), 1);
        assert!(wh.installs()[0].view_after.as_ref().unwrap().is_empty());

        // B's answer from source 1 includes A's tuple (3,9) — which is
        // CORRECT for B's target state (A precedes B), so no compensation.
        wh.on_message(
            deliver(
                6,
                Message::SweepAnswer(SweepAnswer {
                    qid: qb.qid,
                    partial: PartialDelta {
                        lo: 0,
                        hi: 1,
                        bag: Bag::from_tuples([tup![7, 3, 3, 9]]),
                    },
                }),
            ),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.metrics().local_compensations, 1, "no extra compensation");
        assert_eq!(wh.installs().len(), 2);
        assert_eq!(
            wh.view(),
            &Bag::from_tuples([tup![7, 3, 3, 9]]),
            "final view has the joined tuple exactly once"
        );
    }

    #[test]
    fn window_one_serializes() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = PipelinedSweep::with_options(
            two_chain(),
            Bag::new(),
            PipelinedSweepOptions { window: 1 },
        )
        .unwrap();
        wh.on_message(
            deliver(0, update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        wh.on_message(
            deliver(1, update(0, 1, Bag::from_tuples([tup![2, 4]]))),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.in_flight(), 1, "window of 1 behaves like SWEEP");
    }

    #[test]
    fn unknown_qid_rejected() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = PipelinedSweep::new(two_chain(), Bag::new()).unwrap();
        let res = wh.on_message(
            deliver(
                0,
                Message::SweepAnswer(SweepAnswer {
                    qid: 1,
                    partial: PartialDelta {
                        lo: 0,
                        hi: 0,
                        bag: Bag::new(),
                    },
                }),
            ),
            &mut net,
        );
        assert!(matches!(res, Err(WarehouseError::UnknownQuery { .. })));
    }
}
