//! Aggregate views over the materialized SPJ view — the extension the
//! paper's §2 gestures at ("it is possible to model the data warehouse
//! using more complex view functions such as aggregates").
//!
//! An [`AggregateView`] maintains `GROUP BY`-style summaries — `COUNT(*)`,
//! `SUM(col)`, `AVG(col)` — **incrementally from the same `ΔV` stream the
//! maintenance policies install**, never re-scanning the base view. COUNT
//! and SUM are self-maintainable under both inserts and deletes thanks to
//! the signed-count algebra (a deleted derivation simply contributes a
//! negative multiplicity); AVG is derived as SUM/COUNT. MIN/MAX are *not*
//! offered: they are not self-maintainable under deletes without auxiliary
//! per-group state, which is exactly the boundary the self-maintenance
//! literature (\[GJM96], \[QGMW96] in the paper's related work) draws.

use crate::error::WarehouseError;
use dw_relational::{Bag, Tuple, Value};
use std::collections::HashMap;

/// An aggregate function over a view column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFn {
    /// `COUNT(*)` — total multiplicity of the group.
    Count,
    /// `SUM(col)` over an integer or float column (position in the view
    /// tuple).
    Sum(usize),
    /// `AVG(col)` = SUM(col)/COUNT — derived, never stored.
    Avg(usize),
}

/// Definition of an aggregate view: grouping columns plus aggregates, all
/// referencing positions within the *maintained view's* tuples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateViewDef {
    /// Grouping key positions (may be empty: one global group).
    pub group_by: Vec<usize>,
    /// Aggregates, in output order.
    pub aggregates: Vec<AggFn>,
}

/// Per-group COUNT/SUM accumulators for the ΔV-stream fold. Distinct
/// from `dw_relational`'s Σ-operator group internals (which stay private
/// to that crate, enforced by the CI boundary guard): this one carries
/// float sums and derives AVG, and only ever sees installed view deltas.
#[derive(Clone, Debug, Default, PartialEq)]
struct GroupAccumulator {
    count: i64,
    /// One accumulator per `Sum`/`Avg` column (deduplicated by position).
    sums: Vec<f64>,
}

/// An incrementally maintained aggregate view.
#[derive(Clone, Debug)]
pub struct AggregateView {
    def: AggregateViewDef,
    /// Distinct summed columns, in first-mention order.
    sum_cols: Vec<usize>,
    groups: HashMap<Vec<Value>, GroupAccumulator>,
}

impl AggregateView {
    /// Empty aggregate view (over an initially empty base view). To start
    /// from a populated view, follow with `apply_delta(initial_view)`.
    pub fn new(def: AggregateViewDef) -> Self {
        let mut sum_cols = Vec::new();
        for a in &def.aggregates {
            if let AggFn::Sum(c) | AggFn::Avg(c) = a {
                if !sum_cols.contains(c) {
                    sum_cols.push(*c);
                }
            }
        }
        AggregateView {
            def,
            sum_cols,
            groups: HashMap::new(),
        }
    }

    /// Build from a full view state (equivalent to `new` + one delta).
    pub fn from_view(def: AggregateViewDef, view: &Bag) -> Result<Self, WarehouseError> {
        let mut agg = AggregateView::new(def);
        agg.apply_delta(view)?;
        Ok(agg)
    }

    /// Number of live groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    fn numeric(v: &Value) -> Result<f64, WarehouseError> {
        match v {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(f.get()),
            other => Err(WarehouseError::Precondition {
                reason: format!("SUM/AVG over non-numeric value {other:?}"),
            }),
        }
    }

    /// Fold one installed view change into the aggregates.
    ///
    /// Groups whose count returns to zero are dropped (their sums must be
    /// consistent — enforced by construction since every contribution
    /// enters and leaves with the same tuple values).
    pub fn apply_delta(&mut self, delta: &Bag) -> Result<(), WarehouseError> {
        for (t, c) in delta.iter() {
            let key: Vec<Value> = self.def.group_by.iter().map(|&g| t.at(g).clone()).collect();
            let sums: Vec<f64> = self
                .sum_cols
                .iter()
                .map(|&col| Self::numeric(t.at(col)))
                .collect::<Result<_, _>>()?;
            let entry = self
                .groups
                .entry(key.clone())
                .or_insert_with(|| GroupAccumulator {
                    count: 0,
                    sums: vec![0.0; self.sum_cols.len()],
                });
            entry.count += c;
            for (acc, v) in entry.sums.iter_mut().zip(&sums) {
                *acc += c as f64 * v;
            }
            if entry.count == 0 {
                self.groups.remove(&key);
            } else if entry.count < 0 {
                return Err(WarehouseError::InconsistentInstall {
                    tuple: format!("group {key:?}"),
                });
            }
        }
        Ok(())
    }

    /// `COUNT(*)` of a group (0 when absent).
    pub fn count(&self, key: &[Value]) -> i64 {
        self.groups.get(key).map_or(0, |g| g.count)
    }

    /// Value of aggregate `idx` (per the definition order) for a group.
    pub fn aggregate(&self, key: &[Value], idx: usize) -> Option<f64> {
        let g = self.groups.get(key)?;
        Some(match self.def.aggregates[idx] {
            AggFn::Count => g.count as f64,
            AggFn::Sum(col) => g.sums[self.sum_pos(col)],
            AggFn::Avg(col) => g.sums[self.sum_pos(col)] / g.count as f64,
        })
    }

    fn sum_pos(&self, col: usize) -> usize {
        self.sum_cols
            .iter()
            .position(|&c| c == col)
            .expect("registered at construction")
    }

    /// Materialize the aggregate view as a bag of
    /// `(group_key… , aggregate…)` tuples, each at multiplicity 1. Floats
    /// are emitted as `Value::Float`; COUNT as `Value::Int`.
    pub fn snapshot(&self) -> Bag {
        let mut out = Bag::new();
        for (key, g) in &self.groups {
            let mut vals = key.clone();
            for a in &self.def.aggregates {
                vals.push(match a {
                    AggFn::Count => Value::Int(g.count),
                    AggFn::Sum(col) => Value::float(g.sums[self.sum_pos(*col)]),
                    AggFn::Avg(col) => Value::float(g.sums[self.sum_pos(*col)] / g.count as f64),
                });
            }
            out.add(Tuple::new(vals), 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_relational::tup;

    fn def() -> AggregateViewDef {
        AggregateViewDef {
            group_by: vec![0],
            aggregates: vec![AggFn::Count, AggFn::Sum(1), AggFn::Avg(1)],
        }
    }

    #[test]
    fn count_sum_avg_incremental() {
        let mut agg = AggregateView::new(def());
        agg.apply_delta(&Bag::from_pairs([
            (tup![1, 10], 2), // group 1: two derivations of value 10
            (tup![1, 20], 1),
            (tup![2, 5], 1),
        ]))
        .unwrap();
        let g1 = vec![Value::Int(1)];
        assert_eq!(agg.count(&g1), 3);
        assert_eq!(agg.aggregate(&g1, 1), Some(40.0)); // 2·10 + 20
        assert_eq!(agg.aggregate(&g1, 2), Some(40.0 / 3.0));
        assert_eq!(agg.num_groups(), 2);
    }

    #[test]
    fn deletes_subtract_and_empty_groups_vanish() {
        let mut agg = AggregateView::new(def());
        agg.apply_delta(&Bag::from_pairs([(tup![1, 10], 2)]))
            .unwrap();
        agg.apply_delta(&Bag::from_pairs([(tup![1, 10], -1)]))
            .unwrap();
        assert_eq!(agg.count(&[Value::Int(1)]), 1);
        agg.apply_delta(&Bag::from_pairs([(tup![1, 10], -1)]))
            .unwrap();
        assert_eq!(agg.num_groups(), 0);
        assert_eq!(agg.aggregate(&[Value::Int(1)], 0), None);
    }

    #[test]
    fn negative_group_count_is_inconsistency() {
        let mut agg = AggregateView::new(def());
        let res = agg.apply_delta(&Bag::from_pairs([(tup![1, 10], -1)]));
        assert!(matches!(
            res,
            Err(WarehouseError::InconsistentInstall { .. })
        ));
    }

    #[test]
    fn non_numeric_sum_rejected() {
        let mut agg = AggregateView::new(AggregateViewDef {
            group_by: vec![],
            aggregates: vec![AggFn::Sum(0)],
        });
        let res = agg.apply_delta(&Bag::from_pairs([(tup!["text"], 1)]));
        assert!(matches!(res, Err(WarehouseError::Precondition { .. })));
    }

    #[test]
    fn global_group() {
        let mut agg = AggregateView::new(AggregateViewDef {
            group_by: vec![],
            aggregates: vec![AggFn::Count],
        });
        agg.apply_delta(&Bag::from_pairs([(tup![1, 1], 3), (tup![2, 2], 4)]))
            .unwrap();
        assert_eq!(agg.count(&[]), 7);
    }

    #[test]
    fn snapshot_shape() {
        let mut agg = AggregateView::new(def());
        agg.apply_delta(&Bag::from_pairs([(tup![1, 10], 2)]))
            .unwrap();
        let snap = agg.snapshot();
        assert_eq!(snap.distinct_len(), 1);
        let (t, c) = snap.iter().next().unwrap();
        assert_eq!(c, 1);
        assert_eq!(t.at(0), &Value::Int(1)); // group key
        assert_eq!(t.at(1), &Value::Int(2)); // count
        assert_eq!(t.at(2), &Value::float(20.0)); // sum
        assert_eq!(t.at(3), &Value::float(10.0)); // avg
    }

    #[test]
    fn from_view_equals_new_plus_delta() {
        let base = Bag::from_pairs([(tup![1, 10], 1), (tup![2, 20], 3)]);
        let a = AggregateView::from_view(def(), &base).unwrap();
        let mut b = AggregateView::new(def());
        b.apply_delta(&base).unwrap();
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn float_columns() {
        let mut agg = AggregateView::new(AggregateViewDef {
            group_by: vec![0],
            aggregates: vec![AggFn::Sum(1)],
        });
        agg.apply_delta(&Bag::from_pairs([(tup![1, 1.5], 1), (tup![1, 2.5], 1)]))
            .unwrap();
        assert_eq!(agg.aggregate(&[Value::Int(1)], 0), Some(4.0));
    }
}
