//! **SWEEP** — the paper's §5 algorithm (Figure 4).
//!
//! One update is processed at a time, in warehouse delivery order. For
//! update `ΔR_i` the view change is evaluated by *sweeping* the chain:
//! first leftward from `R_{i−1}` down to `R_1`, then rightward from
//! `R_{i+1}` up to `R_n`, one source query in flight at a time. When the
//! answer from source `j` arrives, any concurrent update `ΔR_j` already
//! delivered (it *must* have been, by FIFO, if it interfered) is
//! compensated **locally**: `ΔV ← ΔV − ΔR_j ⋈ TempView`. No compensating
//! queries are ever sent, and the update queue is left untouched — the
//! interfering updates get their own view change later.
//!
//! Properties (verified by the consistency checker and the test suite):
//! complete consistency, exactly `n−1` queries (`2(n−1)` messages) per
//! update, no quiescence requirement.
//!
//! Two §5.3 optimizations are implemented behind [`SweepOptions`]:
//!
//! * `parallel` — run the left and right sweeps concurrently and merge
//!   `ΔV = ΔV_left ⋈ ΔV_right` on the shared `ΔR_i` columns (the right
//!   sweep is seeded with the *support* of `ΔR_i` — each distinct tuple at
//!   multiplicity 1 — so multiplicities are not double-counted).
//! * `short_circuit_empty` — when the partial `ΔV` becomes empty the final
//!   view change is necessarily empty, so remaining queries are skipped.
//!   (Off by default: the paper always completes the sweep.)
//!
//! The mechanism — query plumbing, hop spans, compensation, install —
//! lives in [`dw_engine`]; this module is the *strategy*: the
//! one-update-at-a-time state machine plus the global-transaction hold
//! logic, driving an [`EngineCore`] through the [`SweepPolicy`] hook.

use crate::error::WarehouseError;
use crate::install::InstallRecord;
use crate::metrics::PolicyMetrics;
use crate::policy::MaintenancePolicy;
use crate::queue::PendingUpdate;
pub use dw_engine::SweepOptions;
use dw_engine::{
    dispatch, merge_pivot, support, EngineCore, InstallSink, Leg, LegSlot, SpanLabels, SweepPolicy,
};
use dw_obs::Obs;
use dw_protocol::{GlobalPart, Message, SourceUpdate, UpdateId};
use dw_relational::{Bag, JoinSide, PartialDelta};
use dw_simnet::{Delivery, NetHandle, Time};
use std::collections::HashMap;

/// SWEEP's historical trace vocabulary, emitted by the engine on the
/// adapter's behalf.
const LABELS: SpanLabels = SpanLabels {
    sweep: "sweep",
    hop: "sweep.hop",
    compensations: "sweep.compensations",
    query_rows: Some("sweep.query_rows"),
    comp_rows: Some("sweep.comp_rows"),
    query_counter: None,
};

enum State {
    Idle,
    /// Sequential: one leg at a time, left phase then right phase.
    Seq {
        upd: UpdateId,
        delivered_at: Time,
        i: usize,
        leg: Leg,
    },
    /// Parallel: both legs in flight; completed sides parked until merge.
    Par {
        upd: UpdateId,
        delivered_at: Time,
        i: usize,
        left: LegSlot,
        right: LegSlot,
    },
}

/// The SWEEP warehouse policy.
pub struct Sweep {
    core: EngineCore,
    sink: InstallSink,
    opts: SweepOptions,
    state: State,
    /// Global-transaction tags of queued/processing updates (type 3).
    global_tags: HashMap<UpdateId, GlobalPart>,
    /// Parts still missing per in-progress global transaction.
    pending_globals: HashMap<u64, u32>,
    /// Finalized view changes buffered while a global transaction is
    /// incomplete — flushed as one atomic install.
    hold: Option<Hold>,
}

#[derive(Debug, Default)]
struct Hold {
    accum: Bag,
    consumed: Vec<(UpdateId, Time)>,
}

impl Sweep {
    /// Create the policy over `view_def` with the correct initial view.
    pub fn new(
        view_def: dw_relational::ViewDef,
        initial_view: Bag,
    ) -> Result<Self, WarehouseError> {
        Ok(Sweep {
            core: EngineCore::new(view_def, LABELS),
            sink: InstallSink::new(initial_view)?,
            opts: SweepOptions::default(),
            state: State::Idle,
            global_tags: HashMap::new(),
            pending_globals: HashMap::new(),
            hold: None,
        })
    }

    /// Create with explicit options.
    pub fn with_options(
        view_def: dw_relational::ViewDef,
        initial_view: Bag,
        opts: SweepOptions,
    ) -> Result<Self, WarehouseError> {
        let mut s = Sweep::new(view_def, initial_view)?;
        s.opts = opts;
        Ok(s)
    }

    /// Pending update queue length (observability hook).
    pub fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    /// Begin the view change for the queue head.
    fn start_next(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), WarehouseError> {
        let Some(PendingUpdate { update, arrived_at }) = self.core.queue.pop() else {
            self.state = State::Idle;
            return Ok(());
        };
        let i = update.id.source;
        self.core.begin_sweep(net.now());
        self.core
            .obs
            .observe("sweep.delta_rows", update.delta.distinct_len() as u64);
        let seeded = PartialDelta::seed(&self.core.view, i, &update.delta)?;

        // Degenerate chains and filtered-out updates need no queries.
        if self.core.n() == 1 {
            let final_bag = seeded.finalize(&self.core.view)?;
            return self.install(net, update.id, arrived_at, final_bag);
        }
        if self.opts.short_circuit_empty && seeded.bag.is_empty() {
            return self.install(net, update.id, arrived_at, Bag::new());
        }

        let has_left = i > 0;
        let has_right = i + 1 < self.core.n();

        if self.opts.parallel && has_left && has_right {
            // Left leg carries the true delta; right leg carries the
            // support so multiplicities are counted once at merge time.
            let right_dv = PartialDelta {
                lo: i,
                hi: i,
                bag: support(&seeded.bag),
            };
            let left = Leg::launch(&mut self.core, net, seeded, i - 1, JoinSide::Left);
            let right = Leg::launch(&mut self.core, net, right_dv, i + 1, JoinSide::Right);
            self.state = State::Par {
                upd: update.id,
                delivered_at: arrived_at,
                i,
                left: LegSlot::Running(left),
                right: LegSlot::Running(right),
            };
            return Ok(());
        }

        // Sequential: left sweep first when it exists, else right.
        let (j, side) = if has_left {
            (i - 1, JoinSide::Left)
        } else {
            (i + 1, JoinSide::Right)
        };
        let leg = Leg::launch(&mut self.core, net, seeded, j, side);
        self.state = State::Seq {
            upd: update.id,
            delivered_at: arrived_at,
            i,
            leg,
        };
        Ok(())
    }

    fn install(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        upd: UpdateId,
        delivered_at: Time,
        final_bag: Bag,
    ) -> Result<(), WarehouseError> {
        self.core
            .obs
            .observe("sweep.install_rows", final_bag.distinct_len() as u64);
        self.core.end_sweep(net.now());
        self.core.record_batch(1);
        // Global-transaction bookkeeping (type 3 updates, per the paper's
        // §2 pointer to [ZGMW96]): a part's view change is computed like
        // any other update's, but installs are *held* until every part of
        // every in-progress global transaction has been processed, then
        // flushed as one atomic state transition.
        if let Some(g) = self.global_tags.remove(&upd) {
            let remaining = self.pending_globals.entry(g.gid).or_insert(g.parts);
            *remaining -= 1;
            if *remaining == 0 {
                self.pending_globals.remove(&g.gid);
            }
        }
        let must_hold = !self.pending_globals.is_empty();
        if must_hold || self.hold.is_some() {
            let hold = self.hold.get_or_insert_with(Hold::default);
            hold.accum.merge(&final_bag);
            hold.consumed.push((upd, delivered_at));
            if !must_hold {
                let hold = self.hold.take().expect("just inserted");
                self.sink.install(
                    &mut self.core.metrics,
                    &hold.accum,
                    &hold.consumed,
                    net.now(),
                )?;
            }
        } else {
            self.sink.install(
                &mut self.core.metrics,
                &final_bag,
                &[(upd, delivered_at)],
                net.now(),
            )?;
        }
        self.state = State::Idle;
        // Immediately begin the next queued update (no quiescence needed).
        self.start_next(net)
    }

    /// Handle an answer in sequential mode.
    fn seq_answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        partial: PartialDelta,
    ) -> Result<(), WarehouseError> {
        let State::Seq {
            upd,
            delivered_at,
            i,
            mut leg,
        } = std::mem::replace(&mut self.state, State::Idle)
        else {
            unreachable!("seq_answer outside Seq state");
        };
        self.core.end_hop(leg.hop, net.now());
        leg.dv = partial;
        let (j, side) = (leg.j, leg.side);
        let temp = leg.temp.clone();
        self.core.compensate(&mut leg.dv, &temp, j, side)?;

        if self.opts.short_circuit_empty && leg.dv.bag.is_empty() {
            return self.install(net, upd, delivered_at, Bag::new());
        }

        // Advance the sweep: continue left, then switch to right, then done.
        let next = match side {
            JoinSide::Left if j > 0 => Some((j - 1, JoinSide::Left)),
            JoinSide::Left if i + 1 < self.core.n() => Some((i + 1, JoinSide::Right)),
            JoinSide::Left => None,
            JoinSide::Right if j + 1 < self.core.n() => Some((j + 1, JoinSide::Right)),
            JoinSide::Right => None,
        };
        match next {
            Some((nj, nside)) => {
                leg.advance(&mut self.core, net, nj, nside);
                self.state = State::Seq {
                    upd,
                    delivered_at,
                    i,
                    leg,
                };
                Ok(())
            }
            None => {
                let final_bag = leg.dv.finalize(&self.core.view)?;
                self.install(net, upd, delivered_at, final_bag)
            }
        }
    }

    /// Handle an answer in parallel mode.
    fn par_answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        qid: u64,
        partial: PartialDelta,
    ) -> Result<(), WarehouseError> {
        let State::Par {
            upd,
            delivered_at,
            i,
            mut left,
            mut right,
        } = std::mem::replace(&mut self.state, State::Idle)
        else {
            unreachable!("par_answer outside Par state");
        };

        let use_left = matches!(&left, LegSlot::Running(l) if l.qid == qid);
        let use_right = matches!(&right, LegSlot::Running(r) if r.qid == qid);
        if !use_left && !use_right {
            // Restore state before surfacing the error.
            self.state = State::Par {
                upd,
                delivered_at,
                i,
                left,
                right,
            };
            return Err(WarehouseError::UnknownQuery { qid });
        }
        // Pull the leg out by value to avoid nested mutable borrows.
        let slot_ref = if use_left { &mut left } else { &mut right };
        let LegSlot::Running(mut leg) = std::mem::replace(slot_ref, LegSlot::Done(partial.clone()))
        else {
            unreachable!()
        };
        self.core.end_hop(leg.hop, net.now());
        leg.dv = partial;
        let (j, side) = (leg.j, leg.side);
        let temp = leg.temp.clone();
        self.core.compensate(&mut leg.dv, &temp, j, side)?;
        // Advance this leg only.
        let next = match side {
            JoinSide::Left if j > 0 => Some(j - 1),
            JoinSide::Left => None,
            JoinSide::Right if j + 1 < self.core.n() => Some(j + 1),
            JoinSide::Right => None,
        };
        match next {
            Some(nj) => {
                leg.advance(&mut self.core, net, nj, side);
                let slot_ref = if use_left { &mut left } else { &mut right };
                *slot_ref = LegSlot::Running(leg);
            }
            None => {
                let slot_ref = if use_left { &mut left } else { &mut right };
                *slot_ref = LegSlot::Done(leg.dv);
            }
        }

        if let (LegSlot::Done(l), LegSlot::Done(r)) = (&left, &right) {
            // §5.3's merge is the span-generalized pivot merge with the
            // pivot at the updated relation.
            let merged = merge_pivot(&self.core.view, i, l, r);
            let final_bag = merged.finalize(&self.core.view)?;
            return self.install(net, upd, delivered_at, final_bag);
        }
        self.state = State::Par {
            upd,
            delivered_at,
            i,
            left,
            right,
        };
        Ok(())
    }
}

impl SweepPolicy for Sweep {
    type Err = WarehouseError;

    fn name(&self) -> &'static str {
        "sweep"
    }

    fn core(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn note_update(&mut self, u: &SourceUpdate, _at: Time) -> Result<(), WarehouseError> {
        if let Some(g) = u.global {
            self.global_tags.insert(u.id, g);
        }
        Ok(())
    }

    fn kick(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), WarehouseError> {
        if matches!(self.state, State::Idle) {
            self.start_next(net)?;
        }
        Ok(())
    }

    fn on_answer(
        &mut self,
        qid: u64,
        partial: PartialDelta,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        match &self.state {
            State::Seq { leg, .. } => {
                if leg.qid != qid {
                    return Err(WarehouseError::UnknownQuery { qid });
                }
                self.seq_answer(net, partial)
            }
            State::Par { .. } => self.par_answer(net, qid, partial),
            State::Idle => Err(WarehouseError::UnknownQuery { qid }),
        }
    }
}

impl MaintenancePolicy for Sweep {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        dispatch(self, delivery, net)
    }

    fn view(&self) -> &Bag {
        self.sink.bag()
    }

    fn installs(&self) -> &[InstallRecord] {
        self.sink.log()
    }

    fn metrics(&self) -> &PolicyMetrics {
        &self.core.metrics
    }

    fn is_quiescent(&self) -> bool {
        matches!(self.state, State::Idle)
            && self.core.queue.is_empty()
            && self.hold.is_none()
            && self.pending_globals.is_empty()
    }

    fn set_record_snapshots(&mut self, record: bool) {
        self.sink.record_snapshots = record;
    }

    fn set_observer(&mut self, obs: Obs) {
        self.core.set_observer(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_protocol::{source_node, SweepAnswer, WAREHOUSE_NODE};
    use dw_relational::{tup, Schema, ViewDef, ViewDefBuilder};
    use dw_simnet::{Network, ENV};

    fn paper_view() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .relation(Schema::new("R3", ["E", "F"]).unwrap())
            .join("R1.B", "R2.C")
            .join("R2.D", "R3.E")
            .project(["R2.D", "R3.F"])
            .build()
            .unwrap()
    }

    fn deliver(msg: Message) -> Delivery<Message> {
        Delivery {
            at: 0,
            from: ENV,
            to: WAREHOUSE_NODE,
            msg,
        }
    }

    fn update(source: usize, seq: u64, delta: Bag) -> Message {
        Message::Update(SourceUpdate {
            id: UpdateId { source, seq },
            delta,
            global: None,
        })
    }

    /// Drive the state machine by hand: answers crafted as a source would.
    #[test]
    fn single_update_sweeps_left_then_right() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::new(paper_view(), Bag::from_pairs([(tup![7, 8], 2)])).unwrap();

        // ΔR2 = +(3,5) (the paper's first update).
        wh.on_message(
            deliver(update(1, 0, Bag::from_tuples([tup![3, 5]]))),
            &mut net,
        )
        .unwrap();

        // The policy should have sent a left query to source 0.
        let q1 = net.next().unwrap();
        assert_eq!(q1.to, source_node(0));
        let Message::SweepQuery(q1) = q1.msg else {
            panic!()
        };
        assert_eq!(q1.side, JoinSide::Left);
        assert_eq!(q1.partial.bag, Bag::from_tuples([tup![3, 5]]));

        // Answer as R1 = {(1,3),(2,3)} would.
        wh.on_message(
            deliver(Message::SweepAnswer(SweepAnswer {
                qid: q1.qid,
                partial: PartialDelta {
                    lo: 0,
                    hi: 1,
                    bag: Bag::from_tuples([tup![1, 3, 3, 5], tup![2, 3, 3, 5]]),
                },
            })),
            &mut net,
        )
        .unwrap();

        // Now a right query to source 2.
        let q2 = net.next().unwrap();
        assert_eq!(q2.to, source_node(2));
        let Message::SweepQuery(q2) = q2.msg else {
            panic!()
        };
        assert_eq!(q2.side, JoinSide::Right);

        // Answer as R3 = {(5,6),(7,8)} would.
        wh.on_message(
            deliver(Message::SweepAnswer(SweepAnswer {
                qid: q2.qid,
                partial: PartialDelta {
                    lo: 0,
                    hi: 2,
                    bag: Bag::from_tuples([tup![1, 3, 3, 5, 5, 6], tup![2, 3, 3, 5, 5, 6]]),
                },
            })),
            &mut net,
        )
        .unwrap();

        // Installed: {(5,6)[2]} added.
        assert_eq!(
            wh.view(),
            &Bag::from_pairs([(tup![5, 6], 2), (tup![7, 8], 2)])
        );
        assert!(wh.is_quiescent());
        assert_eq!(wh.metrics().queries_sent, 2);
        assert_eq!(wh.installs().len(), 1);
        assert_eq!(
            wh.installs()[0].consumed,
            vec![UpdateId { source: 1, seq: 0 }]
        );
    }

    #[test]
    fn concurrent_update_compensated_locally() {
        // Reproduce the §5.2 compensation: while the ΔR2 sweep waits for
        // R1's answer, ΔR1 = −(2,3) arrives; the answer (computed on the
        // *new* R1) must be compensated with ΔR1 ⋈ TempView.
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::new(paper_view(), Bag::from_pairs([(tup![7, 8], 2)])).unwrap();

        wh.on_message(
            deliver(update(1, 0, Bag::from_tuples([tup![3, 5]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(q1) = net.next().unwrap().msg else {
            panic!()
        };

        // Concurrent ΔR1 arrives *before* the answer.
        wh.on_message(
            deliver(update(0, 0, Bag::from_pairs([(tup![2, 3], -1)]))),
            &mut net,
        )
        .unwrap();

        // R1 already applied the delete, so its answer has only (1,3,3,5).
        wh.on_message(
            deliver(Message::SweepAnswer(SweepAnswer {
                qid: q1.qid,
                partial: PartialDelta {
                    lo: 0,
                    hi: 1,
                    bag: Bag::from_tuples([tup![1, 3, 3, 5]]),
                },
            })),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.metrics().local_compensations, 1);

        // The compensated partial must include the restored (2,3,3,5):
        // ΔV = answer − (−(2,3) ⋈ (3,5)) = answer + (2,3,3,5).
        let Message::SweepQuery(q2) = net.next().unwrap().msg else {
            panic!()
        };
        assert_eq!(
            q2.partial.bag,
            Bag::from_tuples([tup![1, 3, 3, 5], tup![2, 3, 3, 5]])
        );

        // Finish the sweep; R3 unchanged.
        wh.on_message(
            deliver(Message::SweepAnswer(SweepAnswer {
                qid: q2.qid,
                partial: PartialDelta {
                    lo: 0,
                    hi: 2,
                    bag: Bag::from_tuples([tup![1, 3, 3, 5, 5, 6], tup![2, 3, 3, 5, 5, 6]]),
                },
            })),
            &mut net,
        )
        .unwrap();

        assert_eq!(
            wh.view(),
            &Bag::from_pairs([(tup![5, 6], 2), (tup![7, 8], 2)])
        );
        // ΔR1 is still queued — SWEEP does not consume it.
        assert!(!wh.is_quiescent());
        // A new sweep for ΔR1 must have started (right query to source 1).
        let d = net.next().unwrap();
        assert_eq!(d.to, source_node(1));
    }

    #[test]
    fn update_at_left_end_sweeps_right_only() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::new(paper_view(), Bag::from_pairs([(tup![7, 8], 2)])).unwrap();
        wh.on_message(
            deliver(update(0, 0, Bag::from_pairs([(tup![9, 3], 1)]))),
            &mut net,
        )
        .unwrap();
        let d = net.next().unwrap();
        assert_eq!(d.to, source_node(1));
        let Message::SweepQuery(q) = d.msg else {
            panic!()
        };
        assert_eq!(q.side, JoinSide::Right);
    }

    #[test]
    fn answer_with_wrong_qid_rejected() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::new(paper_view(), Bag::new()).unwrap();
        wh.on_message(
            deliver(update(1, 0, Bag::from_tuples([tup![3, 5]]))),
            &mut net,
        )
        .unwrap();
        let res = wh.on_message(
            deliver(Message::SweepAnswer(SweepAnswer {
                qid: 999,
                partial: PartialDelta {
                    lo: 0,
                    hi: 1,
                    bag: Bag::new(),
                },
            })),
            &mut net,
        );
        assert!(matches!(
            res,
            Err(WarehouseError::UnknownQuery { qid: 999 })
        ));
    }

    #[test]
    fn answer_while_idle_rejected() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::new(paper_view(), Bag::new()).unwrap();
        let res = wh.on_message(
            deliver(Message::SweepAnswer(SweepAnswer {
                qid: 0,
                partial: PartialDelta {
                    lo: 0,
                    hi: 0,
                    bag: Bag::new(),
                },
            })),
            &mut net,
        );
        assert!(matches!(res, Err(WarehouseError::UnknownQuery { .. })));
    }

    #[test]
    fn single_relation_chain_installs_without_queries() {
        let view = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .project(["R1.B"])
            .build()
            .unwrap();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::new(view, Bag::new()).unwrap();
        wh.on_message(
            deliver(update(0, 0, Bag::from_tuples([tup![1, 7]]))),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.view(), &Bag::from_pairs([(tup![7], 1)]));
        assert_eq!(wh.metrics().queries_sent, 0);
        assert!(wh.is_quiescent());
    }

    #[test]
    fn short_circuit_empty_skips_queries() {
        let view = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .join("R1.B", "R2.C")
            .select("R1.A", dw_relational::CmpOp::Gt, 100)
            .build()
            .unwrap();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::with_options(
            view,
            Bag::new(),
            SweepOptions {
                parallel: false,
                short_circuit_empty: true,
            },
        )
        .unwrap();
        // Update filtered out by the local selection: no queries at all.
        wh.on_message(
            deliver(update(0, 0, Bag::from_tuples([tup![1, 3]]))),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.metrics().queries_sent, 0);
        assert_eq!(wh.installs().len(), 1);
        assert!(wh.is_quiescent());
    }

    #[test]
    fn parallel_mode_sends_both_legs_and_merges() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::with_options(
            paper_view(),
            Bag::from_pairs([(tup![7, 8], 2)]),
            SweepOptions {
                parallel: true,
                short_circuit_empty: false,
            },
        )
        .unwrap();
        // ΔR2 = +(3,5) with multiplicity 3 to exercise count handling.
        wh.on_message(
            deliver(update(1, 0, Bag::from_pairs([(tup![3, 5], 3)]))),
            &mut net,
        )
        .unwrap();
        // Two queries in flight.
        let d1 = net.next().unwrap();
        let d2 = net.next().unwrap();
        let (mut lq, mut rq) = (None, None);
        for d in [d1, d2] {
            let to = d.to;
            let Message::SweepQuery(q) = d.msg else {
                panic!()
            };
            match q.side {
                JoinSide::Left => {
                    assert_eq!(to, source_node(0));
                    // true delta: count 3
                    assert_eq!(q.partial.bag.count(&tup![3, 5]), 3);
                    lq = Some(q);
                }
                JoinSide::Right => {
                    assert_eq!(to, source_node(2));
                    // support: count 1
                    assert_eq!(q.partial.bag.count(&tup![3, 5]), 1);
                    rq = Some(q);
                }
            }
        }
        let (lq, rq) = (lq.unwrap(), rq.unwrap());

        // Right answer first (R3 matches (5,6)).
        wh.on_message(
            deliver(Message::SweepAnswer(SweepAnswer {
                qid: rq.qid,
                partial: PartialDelta {
                    lo: 1,
                    hi: 2,
                    bag: Bag::from_tuples([tup![3, 5, 5, 6]]),
                },
            })),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.installs().len(), 0, "must wait for the left leg");

        // Left answer: R1 has two matches, counts ×3.
        wh.on_message(
            deliver(Message::SweepAnswer(SweepAnswer {
                qid: lq.qid,
                partial: PartialDelta {
                    lo: 0,
                    hi: 1,
                    bag: Bag::from_pairs([(tup![1, 3, 3, 5], 3), (tup![2, 3, 3, 5], 3)]),
                },
            })),
            &mut net,
        )
        .unwrap();

        // Final: Π[D,F] gives (5,6) with count 2 matches × 3 = 6.
        assert_eq!(
            wh.view(),
            &Bag::from_pairs([(tup![5, 6], 6), (tup![7, 8], 2)])
        );
        assert!(wh.is_quiescent());
    }

    #[test]
    fn negative_install_surfaces_inconsistency() {
        // Deleting a view tuple that is not there must error loudly.
        let view = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A"]).unwrap())
            .build()
            .unwrap();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::new(view, Bag::new()).unwrap();
        let res = wh.on_message(
            deliver(update(0, 0, Bag::from_pairs([(tup![1], -1)]))),
            &mut net,
        );
        assert!(matches!(
            res,
            Err(WarehouseError::InconsistentInstall { .. })
        ));
    }

    #[test]
    fn updates_processed_in_delivery_order() {
        let view = ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A"]).unwrap())
            .build()
            .unwrap();
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Sweep::new(view, Bag::new()).unwrap();
        wh.on_message(
            deliver(update(0, 0, Bag::from_pairs([(tup![1], 1)]))),
            &mut net,
        )
        .unwrap();
        wh.on_message(
            deliver(update(0, 1, Bag::from_pairs([(tup![2], 1)]))),
            &mut net,
        )
        .unwrap();
        let consumed: Vec<u64> = wh.installs().iter().map(|r| r.consumed[0].seq).collect();
        assert_eq!(consumed, vec![0, 1]);
    }
}
