//! # dw-warehouse
//!
//! The warehouse site and every view-maintenance policy studied in the
//! paper, each as an explicit event-driven state machine:
//!
//! | Policy | Paper section | Consistency | Message cost / update | Notes |
//! |---|---|---|---|---|
//! | [`Sweep`] | §5, Fig. 4 | complete | `2(n−1)` | local compensation |
//! | [`NestedSweep`] | §6, Fig. 6 | strong | `O(n)` amortized | dovetails concurrent updates |
//! | [`Eca`] | §3 (ZGMHW95) | strong | `O(1)` queries, quadratic size | single-site source |
//! | [`Strobe`] | §3 (ZGMW96) | strong | `O(n)` | unique keys, installs at quiescence |
//! | [`CStrobe`] | §3 (ZGMW96) | complete | up to `K^(n−2)` queries | unique keys |
//! | [`Recompute`] | baseline | convergence | `2n` per refresh | full refresh |
//!
//! All policies implement [`MaintenancePolicy`]; the orchestration layer
//! feeds them [`dw_simnet::Delivery`] events and they talk back through the
//! network. Every install is logged with the exact set of consumed update
//! ids so the consistency checker can replay and classify the run.

#![warn(missing_docs)]

pub mod aggregate;
pub mod cstrobe;
pub mod eca;
pub mod nested_sweep;
pub mod pipelined;
pub mod recompute;
pub mod strobe;
pub mod sweep;

// The mechanism layer (errors, install log, metrics, the policy trait, the
// update queue, the materialized view) lives in `dw-engine`; re-export the
// modules so `dw_warehouse::error::...`-style paths keep resolving.
pub use dw_engine::{error, install, metrics, policy, queue, view};

pub use aggregate::{AggFn, AggregateView, AggregateViewDef};
pub use cstrobe::CStrobe;
pub use eca::Eca;
pub use error::WarehouseError;
pub use install::InstallRecord;
pub use metrics::PolicyMetrics;
pub use nested_sweep::{NestedSweep, NestedSweepOptions};
pub use pipelined::{PipelinedSweep, PipelinedSweepOptions};
pub use policy::MaintenancePolicy;
pub use queue::{PendingUpdate, UpdateQueue};
pub use recompute::Recompute;
pub use strobe::Strobe;
pub use sweep::{Sweep, SweepOptions};
pub use view::MaterializedView;
