//! **Recompute** — the convergence-only full-refresh baseline.
//!
//! The paper (§3) calls per-update recomputation "unrealistic"; commercial
//! systems of the era (Red Brick, §2) offered only convergence. This policy
//! models that floor of the design space: whenever updates arrive it dumps
//! every base relation (`n` dump queries + `n` answers = `2n` messages),
//! re-evaluates the view from the snapshots, and replaces the warehouse
//! contents wholesale. Snapshots from different sources are taken at
//! different instants, so intermediate views can correspond to *no* global
//! source state — only the final state after quiescence is guaranteed
//! (convergence), which the consistency checker classifies accordingly.

use crate::error::WarehouseError;
use crate::install::InstallRecord;
use crate::metrics::PolicyMetrics;
use crate::policy::MaintenancePolicy;
use crate::view::MaterializedView;
use dw_protocol::{source_node, Message, UpdateId, WAREHOUSE_NODE};
use dw_relational::{eval_view, Bag, ViewDef};
use dw_simnet::{Delivery, NetHandle, Time};

struct Refresh {
    /// `qid` of the dump sent to source `i` is `base + i`.
    base_qid: u64,
    dumps: Vec<Option<Bag>>,
    outstanding: usize,
    /// Updates received before this refresh started (surely reflected).
    covers: Vec<(UpdateId, Time)>,
}

/// The full-recompute warehouse policy.
pub struct Recompute {
    view_def: ViewDef,
    view: MaterializedView,
    metrics: PolicyMetrics,
    install_log: Vec<InstallRecord>,
    record_snapshots: bool,
    next_qid: u64,
    refresh: Option<Refresh>,
    /// Updates received and not yet covered by a started refresh.
    pending: Vec<(UpdateId, Time)>,
}

impl Recompute {
    /// Create the policy with the correct initial view.
    pub fn new(view_def: ViewDef, initial_view: Bag) -> Result<Self, WarehouseError> {
        Ok(Recompute {
            view_def,
            view: MaterializedView::new(initial_view)?,
            metrics: PolicyMetrics::default(),
            install_log: Vec::new(),
            record_snapshots: true,
            next_qid: 0,
            refresh: None,
            pending: Vec::new(),
        })
    }

    fn start_refresh(&mut self, net: &mut dyn NetHandle<Message>) {
        let n = self.view_def.num_relations();
        let base_qid = self.next_qid;
        self.next_qid += n as u64;
        for i in 0..n {
            self.metrics.queries_sent += 1;
            net.send(
                WAREHOUSE_NODE,
                source_node(i),
                Message::DumpQuery {
                    qid: base_qid + i as u64,
                },
            );
        }
        self.refresh = Some(Refresh {
            base_qid,
            dumps: vec![None; n],
            outstanding: n,
            covers: std::mem::take(&mut self.pending),
        });
    }
}

impl MaintenancePolicy for Recompute {
    fn name(&self) -> &'static str {
        "recompute"
    }

    fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        match delivery.msg {
            Message::Update(u) => {
                self.metrics.updates_received += 1;
                self.pending.push((u.id, delivery.at));
                if self.refresh.is_none() {
                    self.start_refresh(net);
                }
                Ok(())
            }
            Message::DumpAnswer { qid, relation } => {
                self.metrics.answers_received += 1;
                let r = self
                    .refresh
                    .as_mut()
                    .ok_or(WarehouseError::UnknownQuery { qid })?;
                let idx =
                    qid.checked_sub(r.base_qid)
                        .filter(|&i| (i as usize) < r.dumps.len())
                        .ok_or(WarehouseError::UnknownQuery { qid })? as usize;
                if r.dumps[idx].replace(relation).is_some() {
                    return Err(WarehouseError::UnknownQuery { qid });
                }
                r.outstanding -= 1;
                if r.outstanding == 0 {
                    let r = self.refresh.take().expect("present");
                    let bags: Vec<&Bag> = r
                        .dumps
                        .iter()
                        .map(|d| d.as_ref().expect("all in"))
                        .collect();
                    let fresh = eval_view(&self.view_def, &bags)?;
                    self.view.replace(fresh)?;
                    self.metrics.installs += 1;
                    let now = net.now();
                    for &(_, d) in &r.covers {
                        self.metrics.record_staleness(d, now);
                    }
                    self.install_log.push(InstallRecord {
                        at: now,
                        consumed: r.covers.iter().map(|&(id, _)| id).collect(),
                        view_after: self.record_snapshots.then(|| self.view.bag().clone()),
                    });
                    // Updates arrived mid-refresh? Chase convergence.
                    if !self.pending.is_empty() {
                        self.start_refresh(net);
                    }
                }
                Ok(())
            }
            other => Err(WarehouseError::UnexpectedMessage {
                policy: self.name(),
                label: dw_simnet::Payload::label(&other),
            }),
        }
    }

    fn view(&self) -> &Bag {
        self.view.bag()
    }

    fn installs(&self) -> &[InstallRecord] {
        &self.install_log
    }

    fn metrics(&self) -> &PolicyMetrics {
        &self.metrics
    }

    fn is_quiescent(&self) -> bool {
        self.refresh.is_none() && self.pending.is_empty()
    }

    fn set_record_snapshots(&mut self, record: bool) {
        self.record_snapshots = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_protocol::SourceUpdate;
    use dw_relational::{tup, Schema, ViewDefBuilder};
    use dw_simnet::{Network, ENV};

    fn view() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .join("R1.B", "R2.C")
            .build()
            .unwrap()
    }

    fn deliver(at: Time, msg: Message) -> Delivery<Message> {
        Delivery {
            at,
            from: ENV,
            to: WAREHOUSE_NODE,
            msg,
        }
    }

    #[test]
    fn update_triggers_dump_fanout_and_replacement() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Recompute::new(view(), Bag::new()).unwrap();
        wh.on_message(
            deliver(
                0,
                Message::Update(SourceUpdate {
                    id: UpdateId { source: 0, seq: 0 },
                    delta: Bag::from_tuples([tup![1, 3]]),
                    global: None,
                }),
            ),
            &mut net,
        )
        .unwrap();
        // Two dump queries out.
        let mut qids = Vec::new();
        for _ in 0..2 {
            match net.next().unwrap().msg {
                Message::DumpQuery { qid } => qids.push(qid),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(wh.metrics().queries_sent, 2);
        // Answers arrive: R1 = {(1,3)}, R2 = {(3,7)}.
        wh.on_message(
            deliver(
                5,
                Message::DumpAnswer {
                    qid: qids[0],
                    relation: Bag::from_tuples([tup![1, 3]]),
                },
            ),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.installs().len(), 0);
        wh.on_message(
            deliver(
                6,
                Message::DumpAnswer {
                    qid: qids[1],
                    relation: Bag::from_tuples([tup![3, 7]]),
                },
            ),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.view().count(&tup![1, 3, 3, 7]), 1);
        assert_eq!(wh.installs().len(), 1);
        assert!(wh.is_quiescent());
    }

    #[test]
    fn updates_during_refresh_chase_convergence() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Recompute::new(view(), Bag::new()).unwrap();
        let upd = |seq| {
            Message::Update(SourceUpdate {
                id: UpdateId { source: 0, seq },
                delta: Bag::from_tuples([tup![seq as i64, 3]]),
                global: None,
            })
        };
        wh.on_message(deliver(0, upd(0)), &mut net).unwrap();
        let mut qids = Vec::new();
        for _ in 0..2 {
            if let Message::DumpQuery { qid } = net.next().unwrap().msg {
                qids.push(qid);
            }
        }
        // A second update lands mid-refresh.
        wh.on_message(deliver(1, upd(1)), &mut net).unwrap();
        for (i, qid) in qids.into_iter().enumerate() {
            wh.on_message(
                deliver(
                    5 + i as u64,
                    Message::DumpAnswer {
                        qid,
                        relation: Bag::new(),
                    },
                ),
                &mut net,
            )
            .unwrap();
        }
        // First refresh installed, second refresh already launched.
        assert_eq!(wh.installs().len(), 1);
        assert!(!wh.is_quiescent());
        assert_eq!(wh.metrics().queries_sent, 4);
    }

    #[test]
    fn duplicate_dump_answer_rejected() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Recompute::new(view(), Bag::new()).unwrap();
        wh.on_message(
            deliver(
                0,
                Message::Update(SourceUpdate {
                    id: UpdateId { source: 0, seq: 0 },
                    delta: Bag::from_tuples([tup![1, 3]]),
                    global: None,
                }),
            ),
            &mut net,
        )
        .unwrap();
        let Message::DumpQuery { qid } = net.next().unwrap().msg else {
            panic!()
        };
        wh.on_message(
            deliver(
                1,
                Message::DumpAnswer {
                    qid,
                    relation: Bag::new(),
                },
            ),
            &mut net,
        )
        .unwrap();
        let res = wh.on_message(
            deliver(
                2,
                Message::DumpAnswer {
                    qid,
                    relation: Bag::new(),
                },
            ),
            &mut net,
        );
        assert!(matches!(res, Err(WarehouseError::UnknownQuery { .. })));
    }

    #[test]
    fn unexpected_answer_when_idle() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = Recompute::new(view(), Bag::new()).unwrap();
        let res = wh.on_message(
            deliver(
                0,
                Message::DumpAnswer {
                    qid: 0,
                    relation: Bag::new(),
                },
            ),
            &mut net,
        );
        assert!(matches!(res, Err(WarehouseError::UnknownQuery { .. })));
    }
}
