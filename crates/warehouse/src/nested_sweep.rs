//! **Nested SWEEP** — the paper's §6 algorithm (Figure 6).
//!
//! Like SWEEP, but when the answer from source `j` reveals a concurrent
//! update `ΔR_j`, the update is *removed from the queue*, its error term is
//! compensated locally, and its **missing view-change components are
//! evaluated by a recursive `ViewChange` call** whose bounds cover exactly
//! the chain segment the outer sweep has already passed:
//!
//! * detected on the **left** sweep at `j` (while processing `ΔR_i`):
//!   recursive bounds `(Left=j, Source=j, Right=i)` — evaluate
//!   `ΔR_j ⋈ R_{j+1} ⋈ … ⋈ R_i^new`;
//! * detected on the **right** sweep at `k`: recursive bounds
//!   `(Left, Source=k, Right=k)` — evaluate `R_Left ⋈ … ⋈ ΔR_k`.
//!
//! The recursive result is *added into* the suspended outer `ΔV`, whose
//! remaining sweep then serves both updates at once (dovetailing). One
//! install covers the whole batch, so the view skips intermediate states —
//! **strong** (not complete) consistency — and message cost is amortized
//! over the batch.
//!
//! The §6.2 termination caveat is real: alternating interfering updates at
//! two sources make the recursion oscillate. [`NestedSweepOptions::max_depth`]
//! implements the paper's "easily modified to force termination" switch:
//! at the bound, the update is compensated SWEEP-style (left in the queue,
//! no recursion) and [`PolicyMetrics::depth_bound_hits`] is incremented.
//!
//! The mechanism — hop plumbing, both compensation flavors, install — is
//! [`dw_engine`]'s; this module keeps only the strategy: the [`Frame`]
//! stack discipline and the dovetailing decision.

use crate::error::WarehouseError;
use crate::install::InstallRecord;
use crate::metrics::PolicyMetrics;
use crate::policy::MaintenancePolicy;
use crate::queue::PendingUpdate;
pub use dw_engine::NestedSweepOptions;
use dw_engine::{dispatch, EngineCore, Frame, InstallSink, SpanLabels, SweepPolicy};
use dw_obs::Obs;
use dw_protocol::{Message, UpdateId};
use dw_relational::{Bag, JoinSide, PartialDelta, ViewDef};
use dw_simnet::{Delivery, NetHandle, Time};

/// Nested SWEEP's historical trace vocabulary.
const LABELS: SpanLabels = SpanLabels {
    sweep: "nested_sweep",
    hop: "nested_sweep.hop",
    compensations: "nested_sweep.compensations",
    query_rows: Some("nested_sweep.query_rows"),
    comp_rows: None,
    query_counter: None,
};

#[derive(Debug)]
struct Active {
    stack: Vec<Frame>,
    consumed: Vec<(UpdateId, Time)>,
}

/// The Nested SWEEP warehouse policy.
pub struct NestedSweep {
    core: EngineCore,
    sink: InstallSink,
    opts: NestedSweepOptions,
    active: Option<Active>,
}

impl NestedSweep {
    /// Create the policy with the correct initial view.
    pub fn new(view_def: ViewDef, initial_view: Bag) -> Result<Self, WarehouseError> {
        Self::with_options(view_def, initial_view, NestedSweepOptions::default())
    }

    /// Create with an explicit depth bound.
    pub fn with_options(
        view_def: ViewDef,
        initial_view: Bag,
        opts: NestedSweepOptions,
    ) -> Result<Self, WarehouseError> {
        Ok(NestedSweep {
            core: EngineCore::new(view_def, LABELS),
            sink: InstallSink::new(initial_view)?,
            opts,
            active: None,
        })
    }

    /// Current recursion depth (0 when idle) — observability for the
    /// oscillation experiment.
    pub fn depth(&self) -> usize {
        self.active.as_ref().map_or(0, |a| a.stack.len())
    }

    /// Pop the queue head and start the outer `ViewChange(ΔR, 1, i, n)`.
    fn start_next(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), WarehouseError> {
        debug_assert!(self.active.is_none());
        let Some(PendingUpdate { update, arrived_at }) = self.core.queue.pop() else {
            return Ok(());
        };
        let i = update.id.source;
        self.core.begin_sweep(net.now());
        self.core.obs.observe(
            "nested_sweep.delta_rows",
            update.delta.distinct_len() as u64,
        );
        let frame = Frame::new(&self.core.view, i, 0, self.core.n() - 1, &update.delta)?;
        let mut active = Active {
            stack: vec![frame],
            consumed: vec![(update.id, arrived_at)],
        };
        self.core.metrics.max_recursion_depth = self.core.metrics.max_recursion_depth.max(1);
        self.pump(net, &mut active)?;
        self.finish_or_park(net, active)
    }

    /// Drive the top frame: issue its next query, or unwind completed
    /// frames (merging each child into its parent) until a query is issued
    /// or the stack empties.
    fn pump(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        active: &mut Active,
    ) -> Result<(), WarehouseError> {
        loop {
            let Some(top) = active.stack.last() else {
                return Ok(());
            };
            debug_assert!(top.pending.is_none());
            match top.next_target() {
                Some((j, side)) => {
                    let dv = top.dv.clone();
                    let (qid, hop) = self.core.send_query(net, &dv, j, side);
                    let top = active.stack.last_mut().expect("frame present");
                    top.pending = Some((qid, j, side, dv, hop));
                    return Ok(());
                }
                None => {
                    // Frame complete: merge into parent or finish.
                    let done = active.stack.pop().expect("frame present");
                    match active.stack.last_mut() {
                        Some(parent) => {
                            debug_assert_eq!(
                                (parent.dv.lo, parent.dv.hi),
                                (done.dv.lo, done.dv.hi),
                                "child range must match suspended parent range"
                            );
                            parent.dv.bag.merge(&done.dv.bag);
                        }
                        None => {
                            // Outer call finished: leave the final dv in a
                            // sentinel frame for `finish_or_park`.
                            active.stack.push(done);
                            return Ok(());
                        }
                    }
                }
            }
        }
    }

    /// If the single remaining frame is complete, install; otherwise the
    /// sweep continues (a query is in flight).
    fn finish_or_park(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        active: Active,
    ) -> Result<(), WarehouseError> {
        let is_done = active.stack.len() == 1
            && active.stack[0].pending.is_none()
            && active.stack[0].next_target().is_none();
        if !is_done {
            self.active = Some(active);
            return Ok(());
        }
        let frame = active.stack.into_iter().next().expect("one frame");
        let final_bag = frame.dv.finalize(&self.core.view)?;
        self.core
            .obs
            .observe("nested_sweep.install_rows", final_bag.distinct_len() as u64);
        self.core
            .obs
            .observe("nested_sweep.batch_updates", active.consumed.len() as u64);
        self.core.end_sweep(net.now());
        self.core.record_batch(active.consumed.len());
        self.sink.install(
            &mut self.core.metrics,
            &final_bag,
            &active.consumed,
            net.now(),
        )?;
        self.active = None;
        self.start_next(net)
    }

    fn answer(
        &mut self,
        net: &mut dyn NetHandle<Message>,
        qid: u64,
        partial: PartialDelta,
    ) -> Result<(), WarehouseError> {
        let Some(mut active) = self.active.take() else {
            return Err(WarehouseError::UnknownQuery { qid });
        };
        let top = active.stack.last_mut().expect("active implies frames");
        match &top.pending {
            Some((want_qid, ..)) if *want_qid == qid => {}
            _ => {
                self.active = Some(active);
                return Err(WarehouseError::UnknownQuery { qid });
            }
        }
        let (_, j, side, temp, hop) = top.pending.take().expect("checked above");
        self.core.end_hop(hop, net.now());
        top.dv = partial;
        let depth = active.stack.len();
        let top = active.stack.last_mut().expect("active implies frames");

        if self.core.queue.has_from_source(j) {
            let depth_ok = self.opts.max_depth.is_none_or(|d| depth < d);
            if depth_ok {
                // Figure 6: remove, compensate, recurse.
                let (merged, infos) = self
                    .core
                    .compensate_consuming(&mut top.dv, &temp, j, side)?
                    .expect("has_from_source checked above");
                self.core.obs.add("nested_sweep.recursions", 1);
                active.consumed.extend(infos);
                let (left, source, right) = match side {
                    JoinSide::Left => (j, j, top.source),
                    JoinSide::Right => (top.left, j, j),
                };
                let child = Frame::new(&self.core.view, source, left, right, &merged)?;
                active.stack.push(child);
                self.core.metrics.max_recursion_depth = self
                    .core
                    .metrics
                    .max_recursion_depth
                    .max(active.stack.len() as u64);
            } else {
                // Forced termination: SWEEP-style compensation, update
                // stays queued for its own (bounded) round later.
                self.core.compensate(&mut top.dv, &temp, j, side)?;
                self.core.metrics.depth_bound_hits += 1;
                self.core.obs.add("nested_sweep.depth_bound_hits", 1);
            }
        }
        self.core
            .obs
            .observe("nested_sweep.depth", active.stack.len() as u64);

        self.pump(net, &mut active)?;
        self.finish_or_park(net, active)
    }
}

impl SweepPolicy for NestedSweep {
    type Err = WarehouseError;

    fn name(&self) -> &'static str {
        "nested-sweep"
    }

    fn core(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn kick(&mut self, net: &mut dyn NetHandle<Message>) -> Result<(), WarehouseError> {
        if self.active.is_none() {
            self.start_next(net)?;
        }
        Ok(())
    }

    fn on_answer(
        &mut self,
        qid: u64,
        partial: PartialDelta,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        self.answer(net, qid, partial)
    }
}

impl MaintenancePolicy for NestedSweep {
    fn name(&self) -> &'static str {
        "nested-sweep"
    }

    fn on_message(
        &mut self,
        delivery: Delivery<Message>,
        net: &mut dyn NetHandle<Message>,
    ) -> Result<(), WarehouseError> {
        dispatch(self, delivery, net)
    }

    fn view(&self) -> &Bag {
        self.sink.bag()
    }

    fn installs(&self) -> &[InstallRecord] {
        self.sink.log()
    }

    fn metrics(&self) -> &PolicyMetrics {
        &self.core.metrics
    }

    fn is_quiescent(&self) -> bool {
        self.active.is_none() && self.core.queue.is_empty()
    }

    fn set_record_snapshots(&mut self, record: bool) {
        self.sink.record_snapshots = record;
    }

    fn set_observer(&mut self, obs: Obs) {
        self.core.set_observer(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_protocol::{source_node, SourceUpdate, SweepAnswer, WAREHOUSE_NODE};
    use dw_relational::{tup, Schema, ViewDefBuilder};
    use dw_simnet::{Network, ENV};

    fn paper_view() -> ViewDef {
        ViewDefBuilder::new()
            .relation(Schema::new("R1", ["A", "B"]).unwrap())
            .relation(Schema::new("R2", ["C", "D"]).unwrap())
            .relation(Schema::new("R3", ["E", "F"]).unwrap())
            .join("R1.B", "R2.C")
            .join("R2.D", "R3.E")
            .project(["R2.D", "R3.F"])
            .build()
            .unwrap()
    }

    fn deliver(msg: Message) -> Delivery<Message> {
        Delivery {
            at: 0,
            from: ENV,
            to: WAREHOUSE_NODE,
            msg,
        }
    }

    fn update(source: usize, seq: u64, delta: Bag) -> Message {
        Message::Update(SourceUpdate {
            id: UpdateId { source, seq },
            delta,
            global: None,
        })
    }

    fn answer(qid: u64, lo: usize, hi: usize, bag: Bag) -> Message {
        Message::SweepAnswer(SweepAnswer {
            qid,
            partial: PartialDelta { lo, hi, bag },
        })
    }

    #[test]
    fn without_concurrency_identical_to_sweep() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = NestedSweep::new(paper_view(), Bag::from_pairs([(tup![7, 8], 2)])).unwrap();
        wh.on_message(
            deliver(update(1, 0, Bag::from_tuples([tup![3, 5]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(q1) = net.next().unwrap().msg else {
            panic!()
        };
        assert_eq!(q1.side, JoinSide::Left);
        wh.on_message(
            deliver(answer(
                q1.qid,
                0,
                1,
                Bag::from_tuples([tup![1, 3, 3, 5], tup![2, 3, 3, 5]]),
            )),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(q2) = net.next().unwrap().msg else {
            panic!()
        };
        wh.on_message(
            deliver(answer(
                q2.qid,
                0,
                2,
                Bag::from_tuples([tup![1, 3, 3, 5, 5, 6], tup![2, 3, 3, 5, 5, 6]]),
            )),
            &mut net,
        )
        .unwrap();
        assert_eq!(
            wh.view(),
            &Bag::from_pairs([(tup![5, 6], 2), (tup![7, 8], 2)])
        );
        assert_eq!(wh.metrics().queries_sent, 2);
        assert!(wh.is_quiescent());
    }

    #[test]
    fn concurrent_update_is_absorbed_into_one_install() {
        // ΔR2 = +(3,5) is being processed; ΔR1 = −(2,3) arrives before
        // R1's answer. Nested SWEEP must consume BOTH in a single install.
        let mut net: Network<Message> = Network::new(0);
        let mut wh = NestedSweep::new(paper_view(), Bag::from_pairs([(tup![7, 8], 2)])).unwrap();
        wh.on_message(
            deliver(update(1, 0, Bag::from_tuples([tup![3, 5]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(q1) = net.next().unwrap().msg else {
            panic!()
        };
        // Concurrent ΔR1 delivered.
        wh.on_message(
            deliver(update(0, 0, Bag::from_pairs([(tup![2, 3], -1)]))),
            &mut net,
        )
        .unwrap();
        // R1 answers on its post-delete state.
        wh.on_message(
            deliver(answer(q1.qid, 0, 1, Bag::from_tuples([tup![1, 3, 3, 5]]))),
            &mut net,
        )
        .unwrap();
        assert_eq!(wh.metrics().local_compensations, 1);
        assert_eq!(wh.depth(), 2, "recursive frame for ΔR1 pushed");

        // The recursive call evaluates ΔR1's missing right part: a query
        // to source 1 (range [0,0] → extend right), carrying ΔR1.
        let d = net.next().unwrap();
        assert_eq!(d.to, source_node(1));
        let Message::SweepQuery(qr) = d.msg else {
            panic!()
        };
        assert_eq!(qr.side, JoinSide::Right);
        assert_eq!(qr.partial.bag, Bag::from_pairs([(tup![2, 3], -1)]));
        // R2 (with (3,7) and (3,5)) answers: −(2,3)⋈{(3,7),(3,5)}.
        wh.on_message(
            deliver(answer(
                qr.qid,
                0,
                1,
                Bag::from_pairs([(tup![2, 3, 3, 7], -1), (tup![2, 3, 3, 5], -1)]),
            )),
            &mut net,
        )
        .unwrap();
        // Child range now [0,1] = parent's suspended range: merged, and the
        // combined dv sweeps right to source 2.
        assert_eq!(wh.depth(), 1);
        let d = net.next().unwrap();
        assert_eq!(d.to, source_node(2));
        let Message::SweepQuery(q2) = d.msg else {
            panic!()
        };
        // Combined dv: (1,3,3,5) + (2,3,3,5) − (2,3,3,5) − (2,3,3,7)
        //            = (1,3,3,5) − (2,3,3,7).
        assert_eq!(
            q2.partial.bag,
            Bag::from_pairs([(tup![1, 3, 3, 5], 1), (tup![2, 3, 3, 7], -1)])
        );
        // R3 = {(5,6),(7,8)}: joins D=E.
        wh.on_message(
            deliver(answer(
                q2.qid,
                0,
                2,
                Bag::from_pairs([(tup![1, 3, 3, 5, 5, 6], 1), (tup![2, 3, 3, 7, 7, 8], -1)]),
            )),
            &mut net,
        )
        .unwrap();

        // One install consuming both updates.
        assert_eq!(wh.installs().len(), 1);
        assert_eq!(
            wh.installs()[0].consumed,
            vec![
                UpdateId { source: 1, seq: 0 },
                UpdateId { source: 0, seq: 0 }
            ]
        );
        // V = {(7,8)[2]} + (5,6) − (7,8) = {(7,8)[1], (5,6)[1]}.
        assert_eq!(
            wh.view(),
            &Bag::from_pairs([(tup![5, 6], 1), (tup![7, 8], 1)])
        );
        assert!(wh.is_quiescent());
    }

    #[test]
    fn depth_bound_falls_back_to_sweep_semantics() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = NestedSweep::with_options(
            paper_view(),
            Bag::from_pairs([(tup![7, 8], 2)]),
            NestedSweepOptions { max_depth: Some(1) },
        )
        .unwrap();
        wh.on_message(
            deliver(update(1, 0, Bag::from_tuples([tup![3, 5]]))),
            &mut net,
        )
        .unwrap();
        let Message::SweepQuery(q1) = net.next().unwrap().msg else {
            panic!()
        };
        wh.on_message(
            deliver(update(0, 0, Bag::from_pairs([(tup![2, 3], -1)]))),
            &mut net,
        )
        .unwrap();
        wh.on_message(
            deliver(answer(q1.qid, 0, 1, Bag::from_tuples([tup![1, 3, 3, 5]]))),
            &mut net,
        )
        .unwrap();
        // Depth bound: no recursion, update still queued.
        assert_eq!(wh.depth(), 1);
        assert_eq!(wh.metrics().depth_bound_hits, 1);
        assert!(!wh.core.queue.is_empty());
    }

    #[test]
    fn answer_with_wrong_qid_rejected() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = NestedSweep::new(paper_view(), Bag::new()).unwrap();
        wh.on_message(
            deliver(update(1, 0, Bag::from_tuples([tup![3, 5]]))),
            &mut net,
        )
        .unwrap();
        let res = wh.on_message(deliver(answer(77, 0, 1, Bag::new())), &mut net);
        assert!(matches!(res, Err(WarehouseError::UnknownQuery { qid: 77 })));
    }

    #[test]
    fn idle_answer_rejected() {
        let mut net: Network<Message> = Network::new(0);
        let mut wh = NestedSweep::new(paper_view(), Bag::new()).unwrap();
        let res = wh.on_message(deliver(answer(0, 0, 0, Bag::new())), &mut net);
        assert!(matches!(res, Err(WarehouseError::UnknownQuery { .. })));
    }
}
