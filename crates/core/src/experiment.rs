//! Experiment construction and the dispatch loop.

use crate::report::RunReport;
use crate::runner::{NetProfile, SimHarness};
use dw_consistency::{classify, Recorder};
use dw_protocol::{node_source, source_node, Message, TransportConfig, UpdateId, WAREHOUSE_NODE};
use dw_relational::{eval_view, Bag, RelationalError};
use dw_simnet::{FaultPlan, LatencyModel, NodeId, Time};
use dw_source::{DataSource, EcaSite, SourceError};
use dw_warehouse::{
    CStrobe, Eca, MaintenancePolicy, NestedSweep, NestedSweepOptions, PipelinedSweep,
    PipelinedSweepOptions, Recompute, Strobe, Sweep, SweepOptions, WarehouseError,
};
use dw_workload::GeneratedScenario;
use std::fmt;

/// Which maintenance algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// SWEEP (§5) — complete consistency, local compensation.
    Sweep(SweepOptions),
    /// Nested SWEEP (§6) — strong consistency, batched installs.
    NestedSweep(NestedSweepOptions),
    /// ECA — single-site source, quiescent installs.
    Eca,
    /// Strobe — unique keys, quiescent installs.
    Strobe,
    /// C-strobe — unique keys, complete consistency, query blow-up.
    CStrobe,
    /// Pipelined SWEEP — §5.3's second optimization: overlapped sweeps,
    /// in-order installs, complete consistency.
    PipelinedSweep(PipelinedSweepOptions),
    /// Full recompute — convergence only.
    Recompute,
}

impl PolicyKind {
    /// Short name matching `MaintenancePolicy::name`.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Sweep(_) => "sweep",
            PolicyKind::NestedSweep(_) => "nested-sweep",
            PolicyKind::Eca => "eca",
            PolicyKind::Strobe => "strobe",
            PolicyKind::CStrobe => "c-strobe",
            PolicyKind::PipelinedSweep(_) => "pipelined-sweep",
            PolicyKind::Recompute => "recompute",
        }
    }

    /// Does this policy use the single-site (ECA) topology?
    pub fn single_site(&self) -> bool {
        matches!(self, PolicyKind::Eca)
    }
}

/// Errors surfaced by a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A relational failure while setting up.
    Relational(RelationalError),
    /// A data source failed mid-run.
    Source(SourceError),
    /// The warehouse policy failed mid-run.
    Warehouse(WarehouseError),
    /// The event cap was exhausted — a livelock/oscillation guard.
    EventCapExceeded {
        /// The configured cap.
        cap: u64,
    },
    /// A message was delivered to a node that does not exist.
    NoSuchNode {
        /// The offending destination.
        node: NodeId,
    },
    /// A multi-view scheduler failure that is not a relational or
    /// warehouse error (unknown view id, busy view, …).
    Multi(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relational(e) => write!(f, "{e}"),
            CoreError::Source(e) => write!(f, "{e}"),
            CoreError::Warehouse(e) => write!(f, "{e}"),
            CoreError::EventCapExceeded { cap } => {
                write!(f, "event cap of {cap} exceeded (livelock or oscillation)")
            }
            CoreError::NoSuchNode { node } => write!(f, "delivery to unknown node {node}"),
            CoreError::Multi(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CoreError {}
impl From<RelationalError> for CoreError {
    fn from(e: RelationalError) -> Self {
        CoreError::Relational(e)
    }
}
impl From<SourceError> for CoreError {
    fn from(e: SourceError) -> Self {
        CoreError::Source(e)
    }
}
impl From<WarehouseError> for CoreError {
    fn from(e: WarehouseError) -> Self {
        CoreError::Warehouse(e)
    }
}

/// A configured experiment: scenario × policy × network profile.
pub struct Experiment {
    scenario: GeneratedScenario,
    policy: PolicyKind,
    latency: LatencyModel,
    link_overrides: Vec<(NodeId, NodeId, LatencyModel)>,
    seed: u64,
    check_consistency: bool,
    record_snapshots: bool,
    trace: bool,
    event_cap: u64,
    indexed_sources: bool,
    faults: FaultPlan,
    transport: Option<TransportConfig>,
    obs: dw_obs::Obs,
}

impl Experiment {
    /// New experiment over a scenario, defaulting to SWEEP, 1 ms constant
    /// links, consistency checking on.
    pub fn new(scenario: GeneratedScenario) -> Self {
        Experiment {
            scenario,
            policy: PolicyKind::Sweep(SweepOptions::default()),
            latency: LatencyModel::Constant(1_000),
            link_overrides: Vec::new(),
            seed: 0,
            check_consistency: true,
            record_snapshots: true,
            trace: false,
            event_cap: 10_000_000,
            indexed_sources: false,
            faults: FaultPlan::default(),
            transport: None,
            obs: dw_obs::Obs::off(),
        }
    }

    /// Attach an observability recorder: the policy, sources, network and
    /// transport endpoints all emit spans/counters/histograms into it,
    /// stamped in virtual time (traces are byte-deterministic per seed).
    pub fn observe(mut self, obs: dw_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Choose the maintenance policy.
    pub fn policy(mut self, p: PolicyKind) -> Self {
        self.policy = p;
        self
    }

    /// Default latency model for every link.
    pub fn latency(mut self, l: LatencyModel) -> Self {
        self.latency = l;
        self
    }

    /// Override one directed link's latency.
    pub fn link_latency(mut self, from: NodeId, to: NodeId, l: LatencyModel) -> Self {
        self.link_overrides.push((from, to, l));
        self
    }

    /// Network RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disable ground-truth tracking and classification (for big runs).
    pub fn check_consistency(mut self, on: bool) -> Self {
        self.check_consistency = on;
        self
    }

    /// Disable per-install view snapshots (for big runs).
    pub fn record_snapshots(mut self, on: bool) -> Self {
        self.record_snapshots = on;
        self
    }

    /// Record a full network trace in the report.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Answer queries through incrementally maintained join indexes at the
    /// sources instead of per-query hashing (requires selection-free
    /// relations; behaviourally identical, measured in the `policies`
    /// micro-bench).
    pub fn indexed_sources(mut self, on: bool) -> Self {
        self.indexed_sources = on;
        self
    }

    /// Abort the run after this many deliveries (oscillation guard).
    pub fn event_cap(mut self, cap: u64) -> Self {
        self.event_cap = cap;
        self
    }

    /// Install a fault plan: drops, duplicates, reordering, partitions,
    /// node crashes. Without [`Experiment::transport`] the maintenance
    /// policies see the raw faulted network — useful for demonstrating
    /// that the paper's consistency claims genuinely depend on reliable
    /// FIFO channels.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Run every node behind the reliability transport, restoring the
    /// exactly-once in-order contract over whatever the fault plan does.
    pub fn transport(mut self, cfg: TransportConfig) -> Self {
        self.transport = Some(cfg);
        self
    }

    /// Enable the transport with timing derived from the experiment's
    /// latency model (RTO ≈ three round trips).
    pub fn transport_auto(mut self) -> Self {
        self.transport = Some(TransportConfig::for_latency_mean(self.latency.mean()));
        self
    }

    /// Run to network quiescence and report.
    pub fn run(self) -> Result<RunReport, CoreError> {
        let scenario = &self.scenario;
        let view_def = scenario.view.clone();
        let n = view_def.num_relations();
        let refs: Vec<&Bag> = scenario.initial.iter().collect();
        let initial_view = eval_view(&view_def, &refs)?;

        let mut policy: Box<dyn MaintenancePolicy> = match self.policy {
            PolicyKind::Sweep(opts) => {
                Box::new(Sweep::with_options(view_def.clone(), initial_view, opts)?)
            }
            PolicyKind::NestedSweep(opts) => Box::new(NestedSweep::with_options(
                view_def.clone(),
                initial_view,
                opts,
            )?),
            PolicyKind::Eca => Box::new(Eca::new(view_def.clone(), initial_view)?),
            PolicyKind::Strobe => Box::new(Strobe::new(
                view_def.clone(),
                scenario.keys.clone(),
                initial_view,
            )?),
            PolicyKind::CStrobe => Box::new(CStrobe::new(
                view_def.clone(),
                scenario.keys.clone(),
                initial_view,
            )?),
            PolicyKind::PipelinedSweep(opts) => Box::new(PipelinedSweep::with_options(
                view_def.clone(),
                initial_view,
                opts,
            )?),
            PolicyKind::Recompute => Box::new(Recompute::new(view_def.clone(), initial_view)?),
        };
        policy.set_record_snapshots(self.record_snapshots);
        policy.set_observer(self.obs.clone());

        let node_count = if self.policy.single_site() { 2 } else { n + 1 };
        let profile = NetProfile {
            latency: self.latency,
            link_overrides: self.link_overrides,
            seed: self.seed,
            faults: self.faults,
            transport: self.transport,
            event_cap: self.event_cap,
            trace: self.trace,
            obs: self.obs.clone(),
        };
        let mut harness = SimHarness::new(&profile, node_count);

        // Topology.
        let mut sources: Vec<DataSource> = Vec::new();
        let mut eca_site: Option<EcaSite> = None;
        if self.policy.single_site() {
            let rels = (0..n)
                .map(|i| {
                    let mut r = dw_relational::BaseRelation::new(view_def.schema(i).clone());
                    r.apply_delta(&scenario.initial[i]).map(|_| r)
                })
                .collect::<Result<Vec<_>, _>>()?;
            eca_site = Some(EcaSite::new(source_node(0), view_def.clone(), rels));
        } else {
            for i in 0..n {
                let mut r = dw_relational::BaseRelation::new(view_def.schema(i).clone());
                r.apply_delta(&scenario.initial[i])?;
                let mut src = if self.indexed_sources {
                    DataSource::with_indexes(i, view_def.clone(), r)?
                } else {
                    DataSource::new(i, view_def.clone(), r)
                };
                src.set_observer(self.obs.clone());
                sources.push(src);
            }
        }

        let mut recorder = self
            .check_consistency
            .then(|| Recorder::new(view_def.clone(), scenario.initial.clone()));

        // Inject the workload.
        for t in &scenario.txns {
            let node = if self.policy.single_site() {
                source_node(0)
            } else {
                source_node(t.source)
            };
            harness.net.inject(
                t.at,
                node,
                Message::ApplyTxn {
                    rel: t.source,
                    delta: t.delta.clone(),
                    global: t.global,
                },
            );
        }

        let mut delivery_log: Vec<(UpdateId, Time)> = Vec::new();
        harness.drive(|d, net| {
            if d.to == WAREHOUSE_NODE {
                if let Message::Update(u) = &d.msg {
                    delivery_log.push((u.id, d.at));
                    if let Some(rec) = recorder.as_mut() {
                        rec.record_delivery(u.id, d.at, u.delta.clone());
                    }
                }
                policy.on_message(d, net)?;
            } else if let Some(site) = eca_site.as_mut() {
                if d.to != source_node(0) {
                    return Err(CoreError::NoSuchNode { node: d.to });
                }
                site.handle(d.from, d.msg, net)?;
            } else {
                let idx = node_source(d.to);
                let src = sources
                    .get_mut(idx)
                    .ok_or(CoreError::NoSuchNode { node: d.to })?;
                src.handle(d.from, d.msg, net)?;
            }
            Ok(())
        })?;

        let consistency = recorder
            .as_ref()
            .map(|rec| classify(rec, policy.installs(), policy.view()));

        // Quiescence means the policy has no sweep in flight AND the
        // transport has drained: no unacked frames, no reorder buffers,
        // no pending resync.
        let transport_quiescent = harness.transport_quiescent();

        Ok(RunReport {
            policy: policy.name(),
            view: policy.view().clone(),
            installs: policy.installs().to_vec(),
            metrics: policy.metrics().clone(),
            net: harness.net.stats().clone(),
            consistency,
            quiescent: policy.is_quiescent() && transport_quiescent,
            end_time: harness.net.now(),
            events: harness.events,
            trace: harness.net.trace().events().to_vec(),
            delivery_log,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_consistency::ConsistencyLevel;
    use dw_workload::{SourcePick, StreamConfig};

    fn quick(updates: usize, seed: u64) -> GeneratedScenario {
        StreamConfig {
            updates,
            seed,
            n_sources: 3,
            initial_per_source: 20,
            domain: 8,
            mean_gap: 500, // dense: heavy interference vs 1 ms links
            ..Default::default()
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn sweep_is_complete_under_interference() {
        let report = Experiment::new(quick(25, 1))
            .policy(PolicyKind::Sweep(Default::default()))
            .run()
            .unwrap();
        assert!(report.quiescent);
        assert_eq!(
            report.consistency.unwrap().level,
            ConsistencyLevel::Complete
        );
        assert_eq!(report.metrics.installs, report.metrics.updates_received);
    }

    #[test]
    fn nested_sweep_is_at_least_strong() {
        let report = Experiment::new(quick(25, 2))
            .policy(PolicyKind::NestedSweep(Default::default()))
            .run()
            .unwrap();
        assert!(report.quiescent);
        let level = report.consistency.unwrap().level;
        assert!(level >= ConsistencyLevel::Strong, "got {level}");
    }

    #[test]
    fn strobe_is_at_least_strong() {
        let report = Experiment::new(quick(25, 3))
            .policy(PolicyKind::Strobe)
            .run()
            .unwrap();
        assert!(report.quiescent);
        let level = report.consistency.unwrap().level;
        assert!(level >= ConsistencyLevel::Strong, "got {level}");
    }

    #[test]
    fn cstrobe_is_complete() {
        let report = Experiment::new(quick(15, 4))
            .policy(PolicyKind::CStrobe)
            .run()
            .unwrap();
        assert!(report.quiescent);
        let level = report.consistency.unwrap().level;
        assert!(level >= ConsistencyLevel::Complete, "got {level}");
    }

    #[test]
    fn eca_is_at_least_strong_on_single_site() {
        let report = Experiment::new(quick(25, 5))
            .policy(PolicyKind::Eca)
            .run()
            .unwrap();
        assert!(report.quiescent);
        let level = report.consistency.unwrap().level;
        assert!(level >= ConsistencyLevel::Strong, "got {level}");
    }

    #[test]
    fn recompute_converges() {
        let report = Experiment::new(quick(25, 6))
            .policy(PolicyKind::Recompute)
            .run()
            .unwrap();
        assert!(report.quiescent);
        let level = report.consistency.unwrap().level;
        assert!(level >= ConsistencyLevel::Convergent, "got {level}");
    }

    #[test]
    fn sweep_message_cost_is_2n_minus_2_per_update() {
        let n = 5;
        let scenario = StreamConfig {
            n_sources: n,
            updates: 20,
            mean_gap: 200,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let report = Experiment::new(scenario)
            .policy(PolicyKind::Sweep(Default::default()))
            .run()
            .unwrap();
        assert!((report.messages_per_update() - (2 * (n - 1)) as f64).abs() < 1e-9);
    }

    #[test]
    fn strobe_rejected_without_keys() {
        let scenario = StreamConfig {
            keyed: false,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let err = Experiment::new(scenario)
            .policy(PolicyKind::Strobe)
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Warehouse(_)));
    }

    #[test]
    fn sweep_handles_unkeyed_views() {
        // The headline SWEEP property the Strobe family lacks.
        let scenario = StreamConfig {
            keyed: false,
            updates: 20,
            seed: 9,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let report = Experiment::new(scenario)
            .policy(PolicyKind::Sweep(Default::default()))
            .run()
            .unwrap();
        assert_eq!(
            report.consistency.unwrap().level,
            ConsistencyLevel::Complete
        );
    }

    #[test]
    fn alternating_ends_oscillation_guard() {
        // Unbounded Nested SWEEP under the adversarial pattern can recurse
        // deeply; the depth bound forces termination.
        let scenario = StreamConfig {
            n_sources: 4,
            updates: 40,
            mean_gap: 100,
            source_pick: SourcePick::AlternatingEnds,
            insert_ratio: 1.0,
            seed: 10,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let report = Experiment::new(scenario)
            .policy(PolicyKind::NestedSweep(NestedSweepOptions {
                max_depth: Some(4),
            }))
            .run()
            .unwrap();
        assert!(report.quiescent);
        assert!(report.metrics.max_recursion_depth <= 4);
        let level = report.consistency.unwrap().level;
        assert!(level >= ConsistencyLevel::Strong, "got {level}");
    }

    #[test]
    fn indexed_sources_behave_identically() {
        let plain = Experiment::new(quick(25, 33)).run().unwrap();
        let indexed = Experiment::new(quick(25, 33))
            .indexed_sources(true)
            .run()
            .unwrap();
        assert_eq!(plain.view, indexed.view);
        assert_eq!(plain.events, indexed.events);
        assert_eq!(
            indexed.consistency.unwrap().level,
            ConsistencyLevel::Complete
        );
    }

    #[test]
    fn deterministic_replay() {
        let r1 = Experiment::new(quick(20, 11)).seed(3).run().unwrap();
        let r2 = Experiment::new(quick(20, 11)).seed(3).run().unwrap();
        assert_eq!(r1.view, r2.view);
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.end_time, r2.end_time);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let seq = Experiment::new(quick(25, 12))
            .policy(PolicyKind::Sweep(SweepOptions {
                parallel: false,
                short_circuit_empty: false,
            }))
            .run()
            .unwrap();
        let par = Experiment::new(quick(25, 12))
            .policy(PolicyKind::Sweep(SweepOptions {
                parallel: true,
                short_circuit_empty: false,
            }))
            .run()
            .unwrap();
        assert_eq!(seq.view, par.view);
        assert_eq!(par.consistency.unwrap().level, ConsistencyLevel::Complete);
        // Parallel halves the per-update critical path.
        assert!(par.end_time <= seq.end_time);
    }
}
