//! Sharded experiment harness: partitioned sources, S concurrent
//! per-shard sweep lanes, one install order.
//!
//! Mirrors [`MultiViewExperiment`](crate::MultiViewExperiment) but
//! drives a [`ShardedScheduler`] over a [`dw_workload::ShardedScenario`]
//! (or any [`MultiViewScenario`] plus an explicit [`ShardMap`]). On top
//! of the multi-view report it accounts the sharding itself: lane
//! concurrency, escalations, and — under a shard-scoped
//! [`FaultPlan::state_crash`] window — crash/re-seed statistics.
//!
//! Shard-scoped state crashes (windows carrying a shard index) are
//! routed to [`ShardedScheduler::crash_shard`] at their `up_at`: the
//! affected lane re-seeds with fresh qids while every other lane keeps
//! sweeping. Unscoped (whole-warehouse) state crashes are the unsharded
//! recovery suite's subject and are not modeled here.

use crate::experiment::CoreError;
use crate::multi_experiment::{derived_outcomes, DerivedOutcome, ViewOutcome};
use crate::runner::{NetProfile, SimHarness};
use dw_consistency::{
    classify, mutual_consistency, remap_installs, MutualReport, Recorder, ViewLog,
};
use dw_multiview::{CascadeStats, EngineOptions, ShardStats, ShardedScheduler, ViewId};
use dw_protocol::{node_source, source_node, Message, TransportConfig, UpdateId, WAREHOUSE_NODE};
use dw_relational::{eval_view, Bag, ShardMap};
use dw_simnet::{FaultPlan, LatencyModel, NetStats, NodeId, Time};
use dw_source::DataSource;
use dw_warehouse::PolicyMetrics;
use dw_workload::{MultiViewScenario, ShardedScenario};

/// A configured sharded experiment: scenario × partitioner × network
/// profile.
pub struct ShardedExperiment {
    scenario: MultiViewScenario,
    map: ShardMap,
    opts: EngineOptions,
    latency: LatencyModel,
    link_overrides: Vec<(NodeId, NodeId, LatencyModel)>,
    seed: u64,
    check_consistency: bool,
    record_snapshots: bool,
    event_cap: u64,
    faults: FaultPlan,
    transport: Option<TransportConfig>,
    obs: dw_obs::Obs,
}

impl ShardedExperiment {
    /// New experiment over a generated sharded scenario.
    pub fn new(generated: ShardedScenario) -> Self {
        Self::with_map(generated.scenario, generated.map)
    }

    /// New experiment over any multi-view scenario with an explicit
    /// partitioner (how the conformance suite pits sharded against
    /// unsharded on identical inputs).
    pub fn with_map(scenario: MultiViewScenario, map: ShardMap) -> Self {
        ShardedExperiment {
            scenario,
            map,
            opts: EngineOptions::default(),
            latency: LatencyModel::Constant(1_000),
            link_overrides: Vec::new(),
            seed: 0,
            check_consistency: true,
            record_snapshots: true,
            event_cap: 10_000_000,
            faults: FaultPlan::default(),
            transport: None,
            obs: dw_obs::Obs::off(),
        }
    }

    /// Attach an observability recorder.
    pub fn observe(mut self, obs: dw_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Default latency model for every link.
    pub fn latency(mut self, l: LatencyModel) -> Self {
        self.latency = l;
        self
    }

    /// Override one directed link's latency.
    pub fn link_latency(mut self, from: NodeId, to: NodeId, l: LatencyModel) -> Self {
        self.link_overrides.push((from, to, l));
        self
    }

    /// Network RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disable ground-truth tracking and classification (for big runs).
    pub fn check_consistency(mut self, on: bool) -> Self {
        self.check_consistency = on;
        self
    }

    /// Disable per-install view snapshots (for big runs).
    pub fn record_snapshots(mut self, on: bool) -> Self {
        self.record_snapshots = on;
        self
    }

    /// Abort the run after this many deliveries (oscillation guard).
    pub fn event_cap(mut self, cap: u64) -> Self {
        self.event_cap = cap;
        self
    }

    /// Install a fault plan. Shard-scoped state-crash windows
    /// ([`FaultPlan::state_crash_shard`]) abort and re-seed one shard's
    /// lane; link faults pair with [`ShardedExperiment::transport`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Run every node behind the reliability transport.
    pub fn transport(mut self, cfg: TransportConfig) -> Self {
        self.transport = Some(cfg);
        self
    }

    /// Enable the transport with timing derived from the latency model.
    pub fn transport_auto(mut self) -> Self {
        self.transport = Some(TransportConfig::for_latency_mean(self.latency.mean()));
        self
    }

    /// Run to network quiescence and report.
    pub fn run(self) -> Result<ShardedReport, CoreError> {
        let scenario = &self.scenario;
        let base = scenario.base.clone();
        let n = base.num_relations();

        if let Some(cfg) = &self.transport {
            cfg.validate()
                .map_err(|e| CoreError::Multi(e.to_string()))?;
        }
        let mut sched = ShardedScheduler::with_options(base.clone(), self.map.clone(), self.opts)?;
        sched.set_record_snapshots(self.record_snapshots);
        sched.set_observer(self.obs.clone());
        for bag in &scenario.initial {
            sched.seed_groups(bag);
        }

        let mut ids: Vec<ViewId> = Vec::new();
        let mut recorders: Vec<Option<Recorder>> = Vec::new();
        for spec in &scenario.views {
            let local = spec.compile(&base)?;
            let refs: Vec<&Bag> = scenario.initial[spec.lo..=spec.hi].iter().collect();
            let initial_view = eval_view(&local, &refs)?;
            ids.push(sched.register(spec, initial_view)?);
            recorders.push(self.check_consistency.then(|| {
                Recorder::new(local.clone(), scenario.initial[spec.lo..=spec.hi].to_vec())
            }));
        }
        let spans: Vec<(usize, usize)> = scenario.views.iter().map(|s| (s.lo, s.hi)).collect();
        // Derived views stack on top; their maintenance rides the
        // sequenced install releases, never the shard lanes.
        let derived_ids = sched.register_derived_many(&scenario.derived)?;

        // Shard-scoped crash windows at the warehouse, keyed by their
        // restart time: the drive loop turns each `Restart` into a
        // `crash_shard` call on the matching shard.
        let mut scoped_restarts: Vec<(Time, usize)> = self
            .faults
            .state_crashes()
            .iter()
            .filter(|c| c.node == WAREHOUSE_NODE)
            .filter_map(|c| c.shard.map(|s| (c.up_at, s)))
            .collect();

        let profile = NetProfile {
            latency: self.latency,
            link_overrides: self.link_overrides,
            seed: self.seed,
            faults: self.faults,
            transport: self.transport,
            event_cap: self.event_cap,
            trace: false,
            obs: self.obs.clone(),
        };
        let mut harness = SimHarness::new(&profile, n + 1);

        let mut sources: Vec<DataSource> = Vec::new();
        for i in 0..n {
            let mut r = dw_relational::BaseRelation::new(base.schema(i).clone());
            r.apply_delta(&scenario.initial[i])?;
            let mut src = DataSource::new(i, base.clone(), r);
            src.set_observer(self.obs.clone());
            sources.push(src);
        }

        for t in &scenario.txns {
            harness.net.inject(
                t.at,
                source_node(t.source),
                Message::ApplyTxn {
                    rel: t.source,
                    delta: t.delta.clone(),
                    global: t.global,
                },
            );
        }

        let mut delivery_log: Vec<(UpdateId, Time)> = Vec::new();
        harness.drive(|d, net| {
            if d.to == WAREHOUSE_NODE {
                if matches!(d.msg, Message::Restart) {
                    if let Some(pos) = scoped_restarts.iter().position(|&(at, _)| at == d.at) {
                        let (_, shard) = scoped_restarts.swap_remove(pos);
                        sched.crash_shard(shard, net)?;
                    }
                    // Unscoped restarts: nothing durable to replay here.
                    return Ok(());
                }
                if let Message::Update(u) = &d.msg {
                    delivery_log.push((u.id, d.at));
                    for (v, rec) in recorders.iter_mut().enumerate() {
                        let (lo, hi) = spans[v];
                        if let Some(rec) = rec.as_mut() {
                            if lo <= u.id.source && u.id.source <= hi {
                                let local_id = UpdateId {
                                    source: u.id.source - lo,
                                    seq: u.id.seq,
                                };
                                rec.record_delivery(local_id, d.at, u.delta.clone());
                            }
                        }
                    }
                }
                sched.on_message(d, net)?;
            } else {
                if matches!(d.msg, Message::Restart) {
                    return Ok(());
                }
                let idx = node_source(d.to);
                let src = sources
                    .get_mut(idx)
                    .ok_or(CoreError::NoSuchNode { node: d.to })?;
                src.handle(d.from, d.msg, net)?;
            }
            Ok(())
        })?;

        let mut views: Vec<ViewOutcome> = Vec::new();
        for (v, &id) in ids.iter().enumerate() {
            let installs = sched.views().install_log(id)?.to_vec();
            let bag = sched.views().view_bag(id)?.clone();
            let consistency = recorders[v].as_ref().map(|rec| {
                let local_installs = remap_installs(&installs, spans[v].0);
                classify(rec, &local_installs, &bag)
            });
            views.push(ViewOutcome {
                name: sched.views().name(id)?.to_string(),
                lo: spans[v].0,
                hi: spans[v].1,
                policy: sched.views().policy(id)?,
                view: bag,
                installs,
                metrics: sched.views().metrics(id)?.clone(),
                consistency,
            });
        }

        let derived = derived_outcomes(sched.views(), &derived_ids)?;

        let mutual = self.check_consistency.then(|| {
            let logs: Vec<ViewLog<'_>> = views
                .iter()
                .map(|o| ViewLog {
                    name: &o.name,
                    lo: o.lo,
                    hi: o.hi,
                    installs: &o.installs,
                })
                .collect();
            mutual_consistency(&logs)
        });

        let transport_quiescent = harness.transport_quiescent();

        Ok(ShardedReport {
            shards: self.map.shards(),
            views,
            derived,
            cascade: sched.views().cascade_stats(),
            scheduler_metrics: sched.metrics().clone(),
            shard_stats: sched.stats().clone(),
            mutual,
            net: harness.net.stats().clone(),
            quiescent: sched.is_quiescent() && transport_quiescent,
            end_time: harness.net.now(),
            events: harness.events,
            delivery_log,
        })
    }
}

/// Everything observable from one sharded run.
#[derive(Clone, Debug)]
pub struct ShardedReport {
    /// Shard count of the partitioner that ran.
    pub shards: usize,
    /// Per-view outcomes, in registration order.
    pub views: Vec<ViewOutcome>,
    /// Derived (view-over-view) outcomes, maintained by the cascade at
    /// sequenced install release — zero lane or source traffic.
    pub derived: Vec<DerivedOutcome>,
    /// Cascade counters: child installs, memoized sibling derivations,
    /// and fresh linear evaluations.
    pub cascade: CascadeStats,
    /// Aggregate engine counters (shared across all lanes).
    pub scheduler_metrics: PolicyMetrics,
    /// Sharding counters: lane concurrency, escalations, crash/re-seed
    /// accounting.
    pub shard_stats: ShardStats,
    /// Cross-view mutual consistency (when checking was enabled).
    pub mutual: Option<MutualReport>,
    /// Network-level accounting.
    pub net: NetStats,
    /// Scheduler and transport both drained at the end of the run.
    pub quiescent: bool,
    /// Simulation time at the end of the run (µs).
    pub end_time: Time,
    /// Deliveries processed.
    pub events: u64,
    /// Warehouse delivery log `(update, delivery time)` in delivery order.
    pub delivery_log: Vec<(UpdateId, Time)>,
}

impl ShardedReport {
    /// Query/answer round-trip messages (excludes the update stream).
    pub fn query_messages(&self) -> u64 {
        ["query", "answer"]
            .iter()
            .map(|l| self.net.label(l).messages)
            .sum()
    }

    /// Query/answer messages per warehouse-received update. Shard-local
    /// sweeps pay the same `2(n−1)` the unsharded engine pays — locality
    /// buys concurrency, not extra traffic.
    pub fn messages_per_update(&self) -> f64 {
        if self.scheduler_metrics.updates_received == 0 {
            return 0.0;
        }
        self.query_messages() as f64 / self.scheduler_metrics.updates_received as f64
    }

    /// Every derived view passed its oracle audit: zero per-epoch
    /// mismatches and final contents equal to a fresh recompute over the
    /// parent.
    pub fn derived_clean(&self) -> bool {
        self.derived
            .iter()
            .all(|d| d.epoch_mismatches == 0 && d.final_matches_oracle)
    }

    /// Makespan of the maintenance work (µs): last install time minus
    /// first transaction arrival — the virtual-time quantity E18's
    /// speedup gate divides.
    pub fn makespan(&self) -> Time {
        let first = self.delivery_log.iter().map(|&(_, at)| at).min();
        let last = self
            .views
            .iter()
            .flat_map(|v| v.installs.iter().map(|r| r.at))
            .max();
        match (first, last) {
            (Some(f), Some(l)) if l > f => l - f,
            _ => 0,
        }
    }

    /// Install fingerprint: per view, the sequence of consumed-update
    /// sets in install order (what the conformance suite compares).
    pub fn install_fingerprint(&self) -> Vec<Vec<Vec<UpdateId>>> {
        self.views
            .iter()
            .map(|v| v.installs.iter().map(|r| r.consumed.clone()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultiViewExperiment;
    use dw_consistency::ConsistencyLevel;
    use dw_relational::{AggFn, AggregateSpec, CmpOp, Value};
    use dw_workload::{DerivedOp, DerivedSpec, ShardedConfig};

    /// A small handwritten stack over the generated base views: one σ/Π
    /// child of V0, one Σ/group-by child of V0, and a grandchild σ over
    /// the aggregate.
    fn stack_on_v0() -> Vec<DerivedSpec> {
        vec![
            DerivedSpec {
                name: "hot".into(),
                parent: "V0".into(),
                op: DerivedOp::Select {
                    selects: vec![(0, CmpOp::Ge, Value::Int(1))],
                    projection: None,
                },
            },
            DerivedSpec {
                name: "counts".into(),
                parent: "V0".into(),
                op: DerivedOp::Aggregate(AggregateSpec {
                    group_by: vec![0],
                    aggs: vec![AggFn::CountRows],
                }),
            },
            DerivedSpec {
                name: "busy".into(),
                parent: "counts".into(),
                op: DerivedOp::Select {
                    selects: vec![(1, CmpOp::Ge, Value::Int(2))],
                    projection: None,
                },
            },
        ]
    }

    fn config(shards: usize, seed: u64) -> ShardedConfig {
        ShardedConfig {
            n_sources: 3,
            shards,
            updates: 18,
            mean_gap: 300,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn sharded_run_converges_with_concurrent_lanes() {
        let report = ShardedExperiment::new(config(2, 1).generate().unwrap())
            .run()
            .unwrap();
        assert!(report.quiescent);
        assert!(
            report.shard_stats.max_concurrent_lanes >= 2,
            "bursty shard-local load must overlap lanes"
        );
        for v in &report.views {
            let c = v.consistency.as_ref().unwrap();
            assert!(
                c.level >= ConsistencyLevel::Convergent,
                "view '{}' classified {}: {}",
                v.name,
                c.level,
                c.detail
            );
        }
        assert!(report.mutual.unwrap().final_agreement);
    }

    #[test]
    fn sharded_matches_unsharded_installs_and_bags() {
        let generated = config(4, 2).generate().unwrap();
        let sharded = ShardedExperiment::new(generated.clone()).run().unwrap();
        let flat = MultiViewExperiment::new(generated.scenario).run().unwrap();
        assert!(sharded.quiescent && flat.quiescent);
        assert_eq!(sharded.query_messages(), flat.query_messages());
        for (s, f) in sharded.views.iter().zip(flat.views.iter()) {
            assert_eq!(s.view, f.view, "view '{}'", s.name);
            let fp = |o: &ViewOutcome| -> Vec<Vec<UpdateId>> {
                o.installs.iter().map(|r| r.consumed.clone()).collect()
            };
            assert_eq!(fp(s), fp(f), "view '{}'", s.name);
        }
    }

    #[test]
    fn escalations_run_and_still_converge() {
        let mut cfg = config(2, 3);
        cfg.cross_shard_frac = 0.25;
        let report = ShardedExperiment::new(cfg.generate().unwrap())
            .run()
            .unwrap();
        assert!(report.quiescent);
        assert!(report.shard_stats.escalations > 0);
        for v in &report.views {
            assert!(v.consistency.as_ref().unwrap().level >= ConsistencyLevel::Convergent);
        }
    }

    #[test]
    fn scoped_crash_reseeds_without_stopping_other_shards() {
        let generated = config(2, 4).generate().unwrap();
        // Anchor the window mid-run; up_at lands while sweeps overlap.
        let crash_at = generated.scenario.txns[6].at;
        let clean = ShardedExperiment::new(generated.clone()).run().unwrap();
        let faulted = ShardedExperiment::new(generated)
            .faults(FaultPlan::none().state_crash_shard(
                WAREHOUSE_NODE,
                crash_at,
                crash_at + 1_200,
                0,
            ))
            .run()
            .unwrap();
        assert!(faulted.quiescent);
        assert_eq!(faulted.shard_stats.shard_crashes, 1);
        // Identical outcome to the fault-free run.
        assert_eq!(faulted.install_fingerprint(), clean.install_fingerprint());
        for (f, c) in faulted.views.iter().zip(clean.views.iter()) {
            assert_eq!(f.view, c.view);
        }
    }

    #[test]
    fn sharded_derived_match_flat_derived_and_oracle() {
        let mut generated = config(3, 5).generate().unwrap();
        generated.scenario.derived = stack_on_v0();
        let sharded = ShardedExperiment::new(generated.clone()).run().unwrap();
        let flat = MultiViewExperiment::new(generated.scenario).run().unwrap();
        assert!(sharded.quiescent && flat.quiescent);
        assert_eq!(sharded.derived.len(), 3);
        assert!(sharded.derived_clean());
        assert!(flat.derived_clean());
        // Derived views add no source traffic under either engine.
        assert_eq!(sharded.query_messages(), flat.query_messages());
        for (s, f) in sharded.derived.iter().zip(flat.derived.iter()) {
            assert_eq!(s.view, f.view, "derived '{}'", s.name);
        }
    }

    #[test]
    fn scoped_crash_keeps_derived_oracle_clean() {
        let mut generated = config(2, 4).generate().unwrap();
        generated.scenario.derived = stack_on_v0();
        let crash_at = generated.scenario.txns[6].at;
        let report = ShardedExperiment::new(generated)
            .faults(FaultPlan::none().state_crash_shard(
                WAREHOUSE_NODE,
                crash_at,
                crash_at + 1_200,
                0,
            ))
            .run()
            .unwrap();
        assert!(report.quiescent);
        assert_eq!(report.shard_stats.shard_crashes, 1);
        assert!(report.derived_clean());
    }

    #[test]
    fn deterministic_replay() {
        let r1 = ShardedExperiment::new(config(2, 6).generate().unwrap())
            .seed(7)
            .run()
            .unwrap();
        let r2 = ShardedExperiment::new(config(2, 6).generate().unwrap())
            .seed(7)
            .run()
            .unwrap();
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.install_fingerprint(), r2.install_fingerprint());
    }

    #[test]
    fn makespan_shrinks_with_shards() {
        // Same logical load at S=1 and S=4: the sharded engine overlaps
        // lanes, so its maintenance makespan must be meaningfully
        // shorter. (E18 gates the precise speedup; this is the smoke
        // version.)
        let mk = |shards: usize| {
            let mut cfg = config(shards, 8);
            cfg.shards = shards;
            cfg.updates = 16;
            cfg.mean_gap = 200;
            ShardedExperiment::new(cfg.generate().unwrap())
                .run()
                .unwrap()
                .makespan()
        };
        let m1 = mk(1);
        let m4 = mk(4);
        assert!(
            (m4 as f64) < 0.8 * m1 as f64,
            "S=4 makespan {m4} not meaningfully below S=1 {m1}"
        );
    }
}
