//! The shared simulation drive loop.
//!
//! [`Experiment`](crate::Experiment) and
//! [`MultiViewExperiment`](crate::MultiViewExperiment) differ only in
//! *who* sits at the warehouse node; the network profile, the optional
//! reliability-transport endpoints, the event-capped dispatch loop, and
//! the drain accounting are identical. This module owns that machinery
//! once: harnesses describe their network as a [`NetProfile`], build a
//! [`SimHarness`], inject their workload, and hand [`SimHarness::drive`]
//! a closure that routes one *application* delivery to the right node.

use crate::experiment::CoreError;
use dw_protocol::{Endpoint, Message, TransportConfig, TransportNet};
use dw_simnet::{Delivery, FaultPlan, LatencyModel, NetHandle, Network, NodeId};
use std::collections::{HashMap, HashSet};

/// Everything that shapes the simulated network, independent of which
/// warehouse policy runs on it.
pub(crate) struct NetProfile {
    pub latency: LatencyModel,
    pub link_overrides: Vec<(NodeId, NodeId, LatencyModel)>,
    pub seed: u64,
    pub faults: FaultPlan,
    pub transport: Option<TransportConfig>,
    pub event_cap: u64,
    pub trace: bool,
    pub obs: dw_obs::Obs,
}

/// A configured network plus (optionally) one reliability-transport
/// endpoint per node, ready to drive to quiescence.
pub(crate) struct SimHarness {
    pub net: Network<Message>,
    endpoints: Option<HashMap<NodeId, Endpoint>>,
    /// Nodes with scheduled *state* crashes: their `Restart` must reach
    /// the application layer (for durable-store recovery) even when a
    /// transport endpoint consumes the raw delivery first.
    state_crash_nodes: HashSet<NodeId>,
    event_cap: u64,
    /// Deliveries processed so far.
    pub events: u64,
}

impl SimHarness {
    /// Build the network and endpoints for `node_count` nodes
    /// (warehouse + sources).
    pub fn new(profile: &NetProfile, node_count: usize) -> SimHarness {
        let mut net: Network<Message> = Network::new(profile.seed);
        net.set_observer(profile.obs.clone());
        net.set_default_latency(profile.latency.clone());
        for (from, to, l) in &profile.link_overrides {
            net.set_link_latency(*from, *to, l.clone());
        }
        net.set_faults(profile.faults.clone());
        if profile.trace {
            net.trace_mut().enable(0);
        }

        // One transport endpoint per node, each with its own jitter
        // stream derived from the run seed.
        let endpoints: Option<HashMap<NodeId, Endpoint>> = profile.transport.map(|cfg| {
            (0..node_count)
                .map(|node| {
                    let mut ep =
                        Endpoint::new(node, cfg, profile.seed ^ (node as u64).wrapping_mul(0x9E37));
                    ep.set_observer(profile.obs.clone());
                    (node, ep)
                })
                .collect()
        });
        if endpoints.is_some() {
            // A restarting node must be told it restarted: the transport
            // re-arms its timers and resyncs with every peer.
            for c in profile.faults.crashes() {
                net.inject(c.up_at, c.node, Message::Restart);
            }
        }
        // State-crash restarts are injected with or without a transport:
        // the *application* needs the signal to replay its durable store,
        // not just the endpoint. ENV injections survive the crash window
        // machinery, and `up_at` itself is already outside the window.
        let state_crash_nodes: HashSet<NodeId> = profile
            .faults
            .state_crashes()
            .iter()
            .map(|c| c.node)
            .collect();
        for c in profile.faults.state_crashes() {
            net.inject(c.up_at, c.node, Message::Restart);
        }

        SimHarness {
            net,
            endpoints,
            state_crash_nodes,
            event_cap: profile.event_cap,
            events: 0,
        }
    }

    /// Pump the network until quiescence. With the transport enabled,
    /// each raw delivery first passes through the destination's endpoint
    /// — which consumes transport frames/acks/timers and emits
    /// application messages exactly-once, in-order — and the node's own
    /// sends are wrapped so they go back out through the same endpoint.
    pub fn drive(
        &mut self,
        mut dispatch: impl FnMut(
            Delivery<Message>,
            &mut dyn NetHandle<Message>,
        ) -> Result<(), CoreError>,
    ) -> Result<(), CoreError> {
        while let Some(d) = self.net.next() {
            self.events += 1;
            if self.events > self.event_cap {
                return Err(CoreError::EventCapExceeded {
                    cap: self.event_cap,
                });
            }
            match self.endpoints.as_mut() {
                Some(eps) => {
                    let to = d.to;
                    // The endpoint consumes a `Restart` outright (it
                    // resyncs the transport and emits nothing); a
                    // state-crash node's application must hear it too,
                    // so re-synthesize the delivery past the endpoint.
                    let restart = (matches!(d.msg, Message::Restart)
                        && self.state_crash_nodes.contains(&to))
                    .then_some(Delivery {
                        at: d.at,
                        from: d.from,
                        to: d.to,
                        msg: Message::Restart,
                    });
                    let app_deliveries = eps
                        .get_mut(&to)
                        .ok_or(CoreError::NoSuchNode { node: to })?
                        .on_delivery(d, &mut self.net);
                    for appd in app_deliveries.into_iter().chain(restart) {
                        let ep = eps.get_mut(&to).expect("endpoint exists");
                        let mut tnet = TransportNet::new(ep, &mut self.net);
                        dispatch(appd, &mut tnet)?;
                    }
                }
                None => dispatch(d, &mut self.net)?,
            }
        }
        Ok(())
    }

    /// True when every transport endpoint has drained (trivially true
    /// without a transport): no unacked frames, no reorder buffers, no
    /// pending resync.
    pub fn transport_quiescent(&self) -> bool {
        self.endpoints
            .as_ref()
            .is_none_or(|eps| eps.values().all(Endpoint::is_quiescent))
    }
}
