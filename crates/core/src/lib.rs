//! # dw-core
//!
//! The public orchestration API of `dwsweep`: build a scenario (view +
//! initial data + transaction stream), pick a maintenance policy and a
//! network profile, run the deterministic simulation, and get back a
//! [`RunReport`] with the materialized view, install history, message
//! accounting, staleness, and a verified consistency classification.
//!
//! ```
//! use dw_core::{Experiment, PolicyKind};
//! use dw_workload::StreamConfig;
//!
//! let scenario = StreamConfig { updates: 10, ..Default::default() }
//!     .generate()
//!     .unwrap();
//! let report = Experiment::new(scenario)
//!     .policy(PolicyKind::Sweep(Default::default()))
//!     .run()
//!     .unwrap();
//! assert_eq!(report.consistency.as_ref().unwrap().level.to_string(), "complete");
//! ```

#![warn(missing_docs)]

pub mod experiment;
pub mod multi_experiment;
pub mod report;
mod runner;
pub mod serve_experiment;
pub mod sharded_experiment;

pub use experiment::{CoreError, Experiment, PolicyKind};
pub use multi_experiment::{DerivedOutcome, MultiViewExperiment, MultiViewReport, ViewOutcome};
pub use report::RunReport;
pub use serve_experiment::{
    audit_lag_recoveries, audit_reads, oracle_expects_rejection, oracle_view_at_epoch, LagAudit,
    LagEvent, LagSubscription, OracleAudit, ReadOutcome, ReadResult, ServeExperiment, ServeReport,
    SubscriptionOutcome,
};
pub use sharded_experiment::{ShardedExperiment, ShardedReport};
