//! Serve experiment harness: maintenance plus a snapshot-pinned read
//! path, driven off one virtual clock.
//!
//! Wraps either [`MaintenanceScheduler`] (flat, optionally durable) or
//! [`ShardedScheduler`] (partitioned lanes) exactly the way
//! [`MultiViewExperiment`](crate::MultiViewExperiment) and
//! [`ShardedExperiment`](crate::ShardedExperiment) do, then attaches a
//! [`ReadFrontend`] as the engine's install publisher: every committed
//! install becomes an immutable epoch in the snapshot store, and a
//! seeded [`ReadOp`] schedule from `dw_workload::serve` is resolved
//! against the store *between* deliveries — a read issued at virtual
//! time `t` observes exactly the epochs committed before `t`, never a
//! torn sweep.
//!
//! The report carries enough provenance for an external oracle: each
//! [`ReadOutcome`] records the epoch it was answered from and the
//! length of the delivery-log prefix visible at issue time, so
//! [`oracle_view_at_epoch`] can recompute the pinned contents from the
//! scenario's initial relations and transaction stream, and
//! [`oracle_expects_rejection`] can re-derive every staleness verdict.

use std::collections::{HashMap, HashSet};

use crate::experiment::CoreError;
use crate::multi_experiment::{derived_outcomes, DerivedOutcome, ViewOutcome};
use crate::runner::{NetProfile, SimHarness};
use dw_multiview::{
    CascadeStats, DurabilityConfig, EngineOptions, MaintenanceScheduler, RecoveryStats,
    SchedulerMode, ShardStats, ShardedScheduler, ViewId, ViewRegistry,
};
use dw_protocol::{node_source, source_node, Message, TransportConfig, UpdateId, WAREHOUSE_NODE};
use dw_relational::{eval_view, Bag, ShardMap, Tuple};
use dw_serve::{InstallDelta, ReadFrontend, ServeError, ServeStats, StalenessBound};
use dw_simnet::{FaultPlan, LatencyModel, NetStats, NodeId, Time};
use dw_source::DataSource;
use dw_warehouse::PolicyMetrics;
use dw_workload::{MultiViewScenario, ReadKind, ReadOp};

impl From<ServeError> for CoreError {
    fn from(e: ServeError) -> Self {
        CoreError::Multi(format!("serve: {e}"))
    }
}

/// The maintenance engine under the serving layer.
enum Engine {
    Flat(Box<MaintenanceScheduler>),
    Sharded(Box<ShardedScheduler>),
}

impl Engine {
    fn views(&self) -> &ViewRegistry {
        match self {
            Engine::Flat(s) => s.views(),
            Engine::Sharded(s) => s.views(),
        }
    }

    fn metrics(&self) -> &PolicyMetrics {
        match self {
            Engine::Flat(s) => s.metrics(),
            Engine::Sharded(s) => s.metrics(),
        }
    }

    fn is_quiescent(&self) -> bool {
        match self {
            Engine::Flat(s) => s.is_quiescent(),
            Engine::Sharded(s) => s.is_quiescent(),
        }
    }
}

/// A configured serve experiment: scenario × engine shape × read mix ×
/// network profile.
pub struct ServeExperiment {
    scenario: MultiViewScenario,
    map: Option<ShardMap>,
    mode: SchedulerMode,
    opts: EngineOptions,
    reads: Vec<ReadOp>,
    baseline_subs: bool,
    point_index: bool,
    cache_capacity: usize,
    bounded_sub_lag: Option<usize>,
    latency: LatencyModel,
    link_overrides: Vec<(NodeId, NodeId, LatencyModel)>,
    seed: u64,
    record_snapshots: bool,
    event_cap: u64,
    faults: FaultPlan,
    transport: Option<TransportConfig>,
    durability: Option<DurabilityConfig>,
    obs: dw_obs::Obs,
}

impl ServeExperiment {
    /// New serve experiment over a multi-view scenario, flat shared-sweep
    /// engine, no reads yet (add them with
    /// [`reads`](ServeExperiment::reads)).
    pub fn new(scenario: MultiViewScenario) -> Self {
        ServeExperiment {
            scenario,
            map: None,
            mode: SchedulerMode::Shared,
            opts: EngineOptions::default(),
            reads: Vec::new(),
            baseline_subs: true,
            point_index: true,
            cache_capacity: 0,
            bounded_sub_lag: None,
            latency: LatencyModel::Constant(1_000),
            link_overrides: Vec::new(),
            seed: 0,
            record_snapshots: true,
            event_cap: 10_000_000,
            faults: FaultPlan::default(),
            transport: None,
            durability: None,
            obs: dw_obs::Obs::off(),
        }
    }

    /// Drive a [`ShardedScheduler`] over this partitioner instead of the
    /// flat engine. (Durability is a flat-engine feature and is ignored
    /// when sharded; shard-scoped crash windows apply instead.)
    pub fn sharded(mut self, map: ShardMap) -> Self {
        self.map = Some(map);
        self
    }

    /// Scheduler mode for the flat engine (ignored when sharded).
    pub fn mode(mut self, mode: SchedulerMode) -> Self {
        self.mode = mode;
        self
    }

    /// The read schedule to resolve against the snapshot store
    /// (typically `ReadMixConfig::generate()`).
    pub fn reads(mut self, reads: Vec<ReadOp>) -> Self {
        self.reads = reads;
        self.reads.sort_by_key(|op| (op.at, op.reader));
        self
    }

    /// Register one subscription per view before traffic starts (on by
    /// default) — their drained streams must replay the full install
    /// fingerprint, which the equivalence suite asserts.
    pub fn baseline_subscriptions(mut self, on: bool) -> Self {
        self.baseline_subs = on;
        self
    }

    /// Enable/disable the store's per-epoch point indexes (on by
    /// default). The off arm linearly scans every point read — the E21
    /// baseline, byte-identical in answers to the indexed arm.
    pub fn point_index(mut self, on: bool) -> Self {
        self.point_index = on;
        self
    }

    /// Capacity of the read-through answer cache (entries; 0 — the
    /// default — disables it). Deterministic FIFO eviction; invisible to
    /// every answer, which the equivalence suite asserts byte-for-byte.
    pub fn answer_cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Register one *bounded* subscription per base view before traffic
    /// starts, with the given `max_lag` queue bound. `ReadKind::Poll`
    /// ops in the read mix drain them mid-run; an overflowed one is
    /// resumed through the snapshot-at-`resume_epoch` recovery path and
    /// its full event history lands in [`ServeReport::lag`], where
    /// [`audit_lag_recoveries`] proves it equivalent to the unbounded
    /// stream.
    pub fn bounded_subscriptions(mut self, max_lag: usize) -> Self {
        self.bounded_sub_lag = Some(max_lag);
        self
    }

    /// Default latency model for every link.
    pub fn latency(mut self, l: LatencyModel) -> Self {
        self.latency = l;
        self
    }

    /// Override one directed link's latency.
    pub fn link_latency(mut self, from: NodeId, to: NodeId, l: LatencyModel) -> Self {
        self.link_overrides.push((from, to, l));
        self
    }

    /// Network RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disable per-install view snapshots (for big runs).
    pub fn record_snapshots(mut self, on: bool) -> Self {
        self.record_snapshots = on;
        self
    }

    /// Abort the run after this many deliveries (oscillation guard).
    pub fn event_cap(mut self, cap: u64) -> Self {
        self.event_cap = cap;
        self
    }

    /// Install a fault plan. Unscoped warehouse state crashes route to
    /// `crash_and_recover` on the flat engine (arm
    /// [`durability`](ServeExperiment::durability) to survive them);
    /// shard-scoped windows route to `crash_shard` on the sharded one.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Run every node behind the reliability transport.
    pub fn transport(mut self, cfg: TransportConfig) -> Self {
        self.transport = Some(cfg);
        self
    }

    /// Enable the transport with timing derived from the latency model.
    pub fn transport_auto(mut self) -> Self {
        self.transport = Some(TransportConfig::for_latency_mean(self.latency.mean()));
        self
    }

    /// Arm flat-engine crash recovery (checkpoints + sweep WAL).
    pub fn durability(mut self, checkpoint_every: usize) -> Self {
        self.durability = Some(DurabilityConfig { checkpoint_every });
        self
    }

    /// Run to network quiescence and report.
    pub fn run(self) -> Result<ServeReport, CoreError> {
        let scenario = &self.scenario;
        let base = scenario.base.clone();
        let n = base.num_relations();

        if let Some(cfg) = &self.transport {
            cfg.validate()
                .map_err(|e| CoreError::Multi(e.to_string()))?;
        }
        let mut sched = match &self.map {
            None => Engine::Flat(Box::new(MaintenanceScheduler::with_options(
                base.clone(),
                self.mode,
                self.opts,
            )?)),
            Some(map) => Engine::Sharded(Box::new(ShardedScheduler::with_options(
                base.clone(),
                map.clone(),
                self.opts,
            )?)),
        };
        match &mut sched {
            Engine::Flat(s) => {
                s.set_record_snapshots(self.record_snapshots);
                s.set_observer(self.obs.clone());
            }
            Engine::Sharded(s) => {
                s.set_record_snapshots(self.record_snapshots);
                s.set_observer(self.obs.clone());
                for bag in &scenario.initial {
                    s.seed_groups(bag);
                }
            }
        }

        // The serving layer: engine installs publish into the snapshot
        // store; readers resolve against it. Frontend registration order
        // must mirror scheduler registration order — the publisher keys
        // epochs by registry slot.
        let front = ReadFrontend::new();
        front.set_point_index(self.point_index);
        front.set_answer_cache_capacity(self.cache_capacity);
        front.set_observer(self.obs.clone());
        match &mut sched {
            Engine::Flat(s) => s.set_install_publisher(front.sink()),
            Engine::Sharded(s) => s.set_install_publisher(front.sink()),
        }

        let mut ids: Vec<ViewId> = Vec::new();
        for spec in &scenario.views {
            let local = spec.compile(&base)?;
            let refs: Vec<&Bag> = scenario.initial[spec.lo..=spec.hi].iter().collect();
            let initial_view = eval_view(&local, &refs)?;
            let id = match &mut sched {
                Engine::Flat(s) => s.register(spec, initial_view.clone())?,
                Engine::Sharded(s) => s.register(spec, initial_view.clone())?,
            };
            let slot = front.register_view(&spec.name, initial_view, 0);
            debug_assert_eq!(slot, id.index(), "frontend/registry slot drift");
            ids.push(id);
        }
        let spans: Vec<(usize, usize)> = scenario.views.iter().map(|s| (s.lo, s.hi)).collect();

        // Derived views ride the cascade: register the stack with the
        // engine, then mirror it into the frontend in ascending slot
        // order so published events land on the right snapshots.
        let mut derived_ids = match &mut sched {
            Engine::Flat(s) => s.register_derived_many(&scenario.derived)?,
            Engine::Sharded(s) => s.register_derived_many(&scenario.derived)?,
        };
        derived_ids.sort_by_key(|id| id.index());
        for &id in &derived_ids {
            let reg = sched.views();
            let (name, initial) = (reg.name(id)?.to_string(), reg.view_bag(id)?.clone());
            let slot = front.register_view(&name, initial, 0);
            debug_assert_eq!(slot, id.index(), "frontend/registry slot drift (derived)");
        }

        // Durability arms after registration so the initial checkpoint
        // already carries every view (flat engine only).
        if let Engine::Flat(s) = &mut sched {
            if let Some(cfg) = self.durability {
                s.enable_durability(cfg);
            }
        }

        // Baseline subscriptions from epoch 0: their streams must replay
        // each view's full install fingerprint — derived slots included.
        let mut subscriptions: Vec<SubscriptionOutcome> = Vec::new();
        if self.baseline_subs {
            for v in 0..front.view_count() {
                subscriptions.push(SubscriptionOutcome {
                    reader: usize::MAX,
                    view: v,
                    sub: front.subscribe(v)?,
                    from_epoch: front.latest_epoch(v)?,
                    stream: Vec::new(),
                });
            }
        }

        // Bounded subscriptions (lag arm): one per base view, drained by
        // `ReadKind::Poll` ops mid-run and at quiescence. Base views
        // only — their resume snapshots are auditable against
        // [`oracle_view_at_epoch`].
        let mut lag: Vec<LagSubscription> = Vec::new();
        let mut lag_by_view: HashMap<usize, usize> = HashMap::new();
        if let Some(max_lag) = self.bounded_sub_lag {
            for v in 0..scenario.views.len() {
                let sub = front.subscribe_bounded(v, max_lag)?;
                lag_by_view.insert(v, lag.len());
                lag.push(LagSubscription {
                    view: v,
                    sub,
                    max_lag,
                    from_epoch: front.latest_epoch(v)?,
                    events: Vec::new(),
                });
            }
        }

        // Shard-scoped crash windows keyed by restart time (sharded
        // engine); unscoped windows recover the flat engine.
        let mut scoped_restarts: Vec<(Time, usize)> = self
            .faults
            .state_crashes()
            .iter()
            .filter(|c| c.node == WAREHOUSE_NODE)
            .filter_map(|c| c.shard.map(|s| (c.up_at, s)))
            .collect();

        let profile = NetProfile {
            latency: self.latency,
            link_overrides: self.link_overrides,
            seed: self.seed,
            faults: self.faults,
            transport: self.transport,
            event_cap: self.event_cap,
            trace: false,
            obs: self.obs.clone(),
        };
        let mut harness = SimHarness::new(&profile, n + 1);

        let mut sources: Vec<DataSource> = Vec::new();
        for i in 0..n {
            let mut r = dw_relational::BaseRelation::new(base.schema(i).clone());
            r.apply_delta(&scenario.initial[i])?;
            let mut src = DataSource::new(i, base.clone(), r);
            src.set_observer(self.obs.clone());
            sources.push(src);
        }

        for t in &scenario.txns {
            harness.net.inject(
                t.at,
                source_node(t.source),
                Message::ApplyTxn {
                    rel: t.source,
                    delta: t.delta.clone(),
                    global: t.global,
                },
            );
        }

        let ops = self.reads;
        let mut next_op = 0usize;
        let mut reads: Vec<ReadOutcome> = Vec::new();
        let mut delivery_log: Vec<(UpdateId, Time)> = Vec::new();

        harness.drive(|d, net| {
            // Readers run ahead of the engine: every op issued at or
            // before this delivery's timestamp resolves against the
            // store *now*, before the delivery can commit a new epoch.
            // Installs therefore never block on, nor are observed
            // mid-flight by, any read.
            while next_op < ops.len() && ops[next_op].at <= d.at {
                execute_read(
                    &front,
                    &ops[next_op],
                    delivery_log.len(),
                    &mut reads,
                    &mut subscriptions,
                    &mut lag,
                    &lag_by_view,
                )?;
                next_op += 1;
            }
            if d.to == WAREHOUSE_NODE {
                if matches!(d.msg, Message::Restart) {
                    match &mut sched {
                        Engine::Flat(s) => {
                            s.crash_and_recover(net)?;
                        }
                        Engine::Sharded(s) => {
                            if let Some(pos) =
                                scoped_restarts.iter().position(|&(at, _)| at == d.at)
                            {
                                let (_, shard) = scoped_restarts.swap_remove(pos);
                                s.crash_shard(shard, net)?;
                            }
                        }
                    }
                    return Ok(());
                }
                if let Message::Update(u) = &d.msg {
                    delivery_log.push((u.id, d.at));
                }
                match &mut sched {
                    Engine::Flat(s) => s.on_message(d, net)?,
                    Engine::Sharded(s) => s.on_message(d, net)?,
                }
            } else {
                if matches!(d.msg, Message::Restart) {
                    return Ok(());
                }
                let idx = node_source(d.to);
                let src = sources
                    .get_mut(idx)
                    .ok_or(CoreError::NoSuchNode { node: d.to })?;
                src.handle(d.from, d.msg, net)?;
            }
            Ok(())
        })?;

        // Ops scheduled past the last delivery resolve at quiescence.
        while next_op < ops.len() {
            execute_read(
                &front,
                &ops[next_op],
                delivery_log.len(),
                &mut reads,
                &mut subscriptions,
                &mut lag,
                &lag_by_view,
            )?;
            next_op += 1;
        }

        // Drain every subscription's pending install deltas.
        for sub in &mut subscriptions {
            sub.stream = front.poll(sub.sub)?;
        }

        // Bounded subscriptions catch all the way up at quiescence: a
        // still-lagged one resumes (snapshot at its resume epoch), then
        // drains whatever queued after. Two rounds always suffice — no
        // installs arrive during the drain.
        for entry in &mut lag {
            loop {
                match front.poll(entry.sub) {
                    Ok(deltas) => {
                        entry
                            .events
                            .extend(deltas.into_iter().map(LagEvent::Delivered));
                        break;
                    }
                    Err(ServeError::Lagged { resume_epoch, .. }) => {
                        entry.events.push(LagEvent::Lagged { resume_epoch });
                        resume_lagged(&front, entry)?;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }

        let mut views: Vec<ViewOutcome> = Vec::new();
        let mut retained: Vec<Vec<u64>> = Vec::new();
        for (v, &id) in ids.iter().enumerate() {
            let reg = sched.views();
            views.push(ViewOutcome {
                name: reg.name(id)?.to_string(),
                lo: spans[v].0,
                hi: spans[v].1,
                policy: reg.policy(id)?,
                view: reg.view_bag(id)?.clone(),
                installs: reg.install_log(id)?.to_vec(),
                metrics: reg.metrics(id)?.clone(),
                consistency: None,
            });
            retained.push(front.retained_epochs(v)?);
        }
        let derived = derived_outcomes(sched.views(), &derived_ids)?;
        for &id in &derived_ids {
            retained.push(front.retained_epochs(id.index())?);
        }

        let transport_quiescent = harness.transport_quiescent();

        Ok(ServeReport {
            sharded: matches!(sched, Engine::Sharded(_)),
            quiescent: sched.is_quiescent() && transport_quiescent,
            scheduler_metrics: sched.metrics().clone(),
            recovery: match &sched {
                Engine::Flat(s) => Some(s.recovery_stats()),
                Engine::Sharded(_) => None,
            },
            shard_stats: match &sched {
                Engine::Flat(_) => None,
                Engine::Sharded(s) => Some(s.stats().clone()),
            },
            views,
            derived,
            cascade: sched.views().cascade_stats(),
            serve_stats: front.stats(),
            retained,
            publication_log: front.publication_log(),
            reads,
            subscriptions,
            lag,
            net: harness.net.stats().clone(),
            end_time: harness.net.now(),
            events: harness.events,
            delivery_log,
        })
    }
}

/// Resolve one read op against the frontend at its scheduled instant.
fn execute_read(
    front: &ReadFrontend,
    op: &ReadOp,
    deliveries_seen: usize,
    reads: &mut Vec<ReadOutcome>,
    subscriptions: &mut Vec<SubscriptionOutcome>,
    lag: &mut [LagSubscription],
    lag_by_view: &HashMap<usize, usize>,
) -> Result<(), CoreError> {
    if let ReadKind::Poll = op.kind {
        // Drain the view's bounded subscription (a no-op result when the
        // lag arm is off). A lagged one resumes through the
        // snapshot-at-resume-epoch path right here, mid-run.
        let result = match lag_by_view.get(&op.view) {
            None => ReadResult::Polled {
                delivered: 0,
                resumed: false,
            },
            Some(&i) => {
                let entry = &mut lag[i];
                match front.poll(entry.sub) {
                    Ok(deltas) => {
                        let delivered = deltas.len();
                        entry
                            .events
                            .extend(deltas.into_iter().map(LagEvent::Delivered));
                        ReadResult::Polled {
                            delivered,
                            resumed: false,
                        }
                    }
                    Err(ServeError::Lagged { resume_epoch, .. }) => {
                        entry.events.push(LagEvent::Lagged { resume_epoch });
                        resume_lagged(front, entry)?;
                        ReadResult::Polled {
                            delivered: 0,
                            resumed: true,
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        };
        reads.push(ReadOutcome {
            op: op.clone(),
            epoch: front.latest_epoch(op.view)?,
            deliveries_seen,
            result,
        });
        return Ok(());
    }
    if let ReadKind::Subscribe = op.kind {
        let sub = front.subscribe(op.view)?;
        let from_epoch = front.latest_epoch(op.view)?;
        subscriptions.push(SubscriptionOutcome {
            reader: op.reader,
            view: op.view,
            sub,
            from_epoch,
            stream: Vec::new(),
        });
        reads.push(ReadOutcome {
            op: op.clone(),
            epoch: from_epoch,
            deliveries_seen,
            result: ReadResult::Subscribed { sub },
        });
        return Ok(());
    }
    let pin = front.pin(op.view)?;
    let epoch = pin.epoch();
    let bound = op.bound_window.map(|w| StalenessBound {
        reflect_before: op.at.saturating_sub(w),
    });
    let result = match &op.kind {
        ReadKind::Point { column, key } => match front.read_point(&pin, *column, *key, bound) {
            Ok(a) => ReadResult::Point {
                multiplicity: a.multiplicity,
                matches: (*a.matches).clone(),
            },
            Err(ServeError::TooStale {
                required,
                freshest_admissible,
                ..
            }) => ReadResult::Rejected {
                required,
                freshest_admissible,
            },
            Err(e) => return Err(e.into()),
        },
        ReadKind::Scan => match front.read_scan(&pin, bound) {
            Ok(a) => ReadResult::Scan {
                bag: (*a.bag).clone(),
            },
            Err(ServeError::TooStale {
                required,
                freshest_admissible,
                ..
            }) => ReadResult::Rejected {
                required,
                freshest_admissible,
            },
            Err(e) => return Err(e.into()),
        },
        ReadKind::Subscribe | ReadKind::Poll => unreachable!("handled above"),
    };
    front.unpin(pin)?;
    reads.push(ReadOutcome {
        op: op.clone(),
        epoch,
        deliveries_seen,
        result,
    });
    Ok(())
}

/// Recover one lagged bounded subscription: flip it live (pinning its
/// resume epoch atomically), read the resume snapshot, release the pin,
/// and log the `Resumed` event carrying the snapshot for the audit.
fn resume_lagged(front: &ReadFrontend, entry: &mut LagSubscription) -> Result<(), CoreError> {
    let pin = front.resume(entry.sub)?;
    let snap = front.read_scan(&pin, None)?;
    let epoch = pin.epoch();
    let snapshot = (*snap.bag).clone();
    front.unpin(pin)?;
    entry.events.push(LagEvent::Resumed { epoch, snapshot });
    Ok(())
}

/// What one resolved read observed.
#[derive(Clone, Debug)]
pub enum ReadResult {
    /// Point lookup: total multiplicity plus the matching tuples.
    Point {
        /// Sum of matching multiplicities.
        multiplicity: i64,
        /// The matching `(tuple, multiplicity)` pairs, sorted.
        matches: Vec<(Tuple, i64)>,
    },
    /// Full snapshot scan.
    Scan {
        /// The pinned epoch's contents.
        bag: Bag,
    },
    /// The pinned epoch violated the op's staleness bound.
    Rejected {
        /// The bound's cutoff instant.
        required: Time,
        /// Freshest epoch that would have satisfied the bound, if any.
        freshest_admissible: Option<u64>,
    },
    /// A subscription was registered.
    Subscribed {
        /// Subscription id (its stream lands in
        /// [`ServeReport::subscriptions`]).
        sub: u64,
    },
    /// A bounded subscription was polled (lag arm; a no-op when the arm
    /// is off). Full event detail lands in [`ServeReport::lag`].
    Polled {
        /// Install deltas drained by this poll.
        delivered: usize,
        /// Whether the poll found the subscription lagged and resumed it
        /// through the snapshot-at-resume-epoch path.
        resumed: bool,
    },
}

/// One read op's resolution, with the provenance the oracle needs.
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// The scheduled op.
    pub op: ReadOp,
    /// Epoch the op was pinned to (the view's latest at issue time; for
    /// subscriptions, the epoch the stream starts after).
    pub epoch: u64,
    /// Warehouse deliveries visible when the op resolved — a prefix
    /// length into [`ServeReport::delivery_log`].
    pub deliveries_seen: usize,
    /// What happened.
    pub result: ReadResult,
}

impl ReadOutcome {
    /// Whether the read was answered (vs. rejected; subscriptions count
    /// as answered).
    pub fn answered(&self) -> bool {
        !matches!(self.result, ReadResult::Rejected { .. })
    }
}

/// One observable event in a bounded subscription's lifetime, in order.
#[derive(Clone, Debug)]
pub enum LagEvent {
    /// A poll drained this install delta while the subscription was live.
    Delivered(InstallDelta),
    /// A poll found the subscription lagged past its `max_lag` bound
    /// (its queue had been dropped at overflow time).
    Lagged {
        /// The epoch recovery will resume from.
        resume_epoch: u64,
    },
    /// The subscription resumed: the snapshot pinned and read at the
    /// resume epoch. Subsequent `Delivered` events continue from
    /// `epoch + 1`.
    Resumed {
        /// The resume epoch.
        epoch: u64,
        /// The snapshot's contents — audited against the recompute
        /// oracle by [`audit_lag_recoveries`].
        snapshot: Bag,
    },
}

/// One bounded subscription's full event history (lag arm).
#[derive(Clone, Debug)]
pub struct LagSubscription {
    /// Subscribed base view (registry slot).
    pub view: usize,
    /// Subscription id.
    pub sub: u64,
    /// The queue bound it was registered with.
    pub max_lag: usize,
    /// Epoch the subscription started after.
    pub from_epoch: u64,
    /// Everything that happened to it, in order.
    pub events: Vec<LagEvent>,
}

/// One subscription's drained install stream.
#[derive(Clone, Debug)]
pub struct SubscriptionOutcome {
    /// Issuing reader (`usize::MAX` for the experiment's baseline
    /// subscriptions registered before traffic).
    pub reader: usize,
    /// Subscribed view (registry slot).
    pub view: usize,
    /// Subscription id.
    pub sub: u64,
    /// Epoch the subscription started after — the stream holds epochs
    /// `from_epoch + 1 ..`.
    pub from_epoch: u64,
    /// Install deltas in publication (= install-ticket) order.
    pub stream: Vec<InstallDelta>,
}

/// Everything observable from one serve run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Whether the sharded engine ran underneath.
    pub sharded: bool,
    /// Per-view outcomes, in registration order (consistency left to
    /// the serve oracle, so the field is `None`).
    pub views: Vec<ViewOutcome>,
    /// Derived (cascade-fed) views, ascending slot order — their slots
    /// follow the base views', so slot `views.len() + k` is `derived[k]`.
    pub derived: Vec<DerivedOutcome>,
    /// Cascade counters (child installs, memo hits, fresh evals).
    pub cascade: CascadeStats,
    /// Aggregate engine counters.
    pub scheduler_metrics: PolicyMetrics,
    /// Flat-engine crash-recovery statistics (`None` when sharded).
    pub recovery: Option<RecoveryStats>,
    /// Sharding counters (`None` when flat).
    pub shard_stats: Option<ShardStats>,
    /// Snapshot-store counters (publications, GC, reads, pins,
    /// subscription fan-out).
    pub serve_stats: ServeStats,
    /// Epochs still retained per view at quiescence (base slots first,
    /// then derived slots).
    pub retained: Vec<Vec<u64>>,
    /// Every accepted install as `(view slot, epoch)` in publication
    /// order — the global install-ticket order. A base install and its
    /// cascaded derived descendants form one contiguous block (children
    /// ascending by slot, depth-first); replays never re-enter it.
    pub publication_log: Vec<(usize, u64)>,
    /// Every resolved read, in issue order.
    pub reads: Vec<ReadOutcome>,
    /// Every subscription's drained stream (baseline ones first).
    pub subscriptions: Vec<SubscriptionOutcome>,
    /// Bounded-subscription event histories (empty unless the lag arm —
    /// [`ServeExperiment::bounded_subscriptions`] — is on).
    pub lag: Vec<LagSubscription>,
    /// Network-level accounting.
    pub net: NetStats,
    /// Scheduler and transport both drained at the end of the run.
    pub quiescent: bool,
    /// Simulation time at the end of the run (µs).
    pub end_time: Time,
    /// Deliveries processed.
    pub events: u64,
    /// Warehouse delivery log `(update, delivery time)` in delivery order.
    pub delivery_log: Vec<(UpdateId, Time)>,
}

impl ServeReport {
    /// Answered (non-rejected) reads.
    pub fn answered(&self) -> usize {
        self.reads.iter().filter(|r| r.answered()).count()
    }

    /// Reads rejected for violating their staleness bound.
    pub fn rejected(&self) -> usize {
        self.reads.len() - self.answered()
    }

    /// Query/answer round-trip messages (excludes the update stream).
    pub fn query_messages(&self) -> u64 {
        ["query", "answer"]
            .iter()
            .map(|l| self.net.label(l).messages)
            .sum()
    }

    /// Query/answer messages per warehouse-received update. Reads are
    /// answered warehouse-locally, so this must equal the no-reader
    /// baseline — E19's interference gate.
    pub fn messages_per_update(&self) -> f64 {
        if self.scheduler_metrics.updates_received == 0 {
            return 0.0;
        }
        self.query_messages() as f64 / self.scheduler_metrics.updates_received as f64
    }

    /// Makespan of the maintenance work (µs): last install time minus
    /// first delivery. Readers must not stretch it — the "reads never
    /// block installs" invariant is gated as makespan equality against
    /// a referee run with no reads.
    pub fn makespan(&self) -> Time {
        let first = self.delivery_log.iter().map(|&(_, at)| at).min();
        let last = self
            .views
            .iter()
            .flat_map(|v| v.installs.iter().map(|r| r.at))
            .max();
        match (first, last) {
            (Some(f), Some(l)) if l > f => l - f,
            _ => 0,
        }
    }

    /// Install fingerprint: per view, the sequence of consumed-update
    /// sets in install order.
    pub fn install_fingerprint(&self) -> Vec<Vec<Vec<UpdateId>>> {
        self.views
            .iter()
            .map(|v| v.installs.iter().map(|r| r.consumed.clone()).collect())
            .collect()
    }

    /// The install log backing slot `slot` — a base view's outcome for
    /// the leading slots, a derived view's for the trailing ones.
    pub fn installs_for_slot(&self, slot: usize) -> Option<&[dw_warehouse::InstallRecord]> {
        if let Some(v) = self.views.get(slot) {
            return Some(&v.installs);
        }
        self.derived
            .get(slot - self.views.len())
            .map(|d| d.installs.as_slice())
    }

    /// Whether every subscription's stream replays exactly the install
    /// fingerprint of its view (base or derived) from its start epoch:
    /// contiguous epochs, matching consumed sets, matching deltas when
    /// snapshots were kept.
    pub fn subscriptions_match_installs(&self) -> bool {
        self.subscriptions.iter().all(|sub| {
            let Some(installs) = self.installs_for_slot(sub.view) else {
                return false;
            };
            let expected = &installs[sub.from_epoch as usize..];
            sub.stream.len() == expected.len()
                && sub
                    .stream
                    .iter()
                    .zip(expected)
                    .enumerate()
                    .all(|(i, (delta, inst))| {
                        delta.view == sub.view
                            && delta.epoch == sub.from_epoch + 1 + i as u64
                            && delta.consumed == inst.consumed
                            && delta.at == inst.at
                    })
        })
    }

    /// All derived views audited clean: every install epoch matched the
    /// fresh-recompute oracle over the parent, final state included.
    pub fn derived_clean(&self) -> bool {
        self.derived
            .iter()
            .all(|d| d.epoch_mismatches == 0 && d.final_matches_oracle)
    }
}

/// Aggregate verdict of [`audit_reads`]: every read in a report checked
/// against the recompute and staleness oracles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleAudit {
    /// Reads audited (subscriptions excluded).
    pub reads: u64,
    /// Reads answered.
    pub answered: u64,
    /// Reads rejected as too stale.
    pub rejected: u64,
    /// Reads the staleness oracle says *should* have been rejected.
    pub expected_rejected: u64,
    /// Answered reads whose contents diverged from a fresh recompute at
    /// their pinned epoch. Must be zero.
    pub content_mismatches: u64,
    /// Reads whose accept/reject verdict disagreed with the staleness
    /// oracle. Must be zero.
    pub verdict_mismatches: u64,
}

impl OracleAudit {
    /// No divergence anywhere: contents and verdicts both exact.
    pub fn clean(&self) -> bool {
        self.content_mismatches == 0 && self.verdict_mismatches == 0
    }
}

/// Audit every read in `report` against the oracles: answered point and
/// scan reads must equal a fresh recompute of the view at their pinned
/// epoch ([`oracle_view_at_epoch`]), and each accept/reject verdict
/// must match [`oracle_expects_rejection`].
pub fn audit_reads(
    scenario: &MultiViewScenario,
    report: &ServeReport,
) -> Result<OracleAudit, CoreError> {
    let mut audit = OracleAudit::default();
    for read in &report.reads {
        if matches!(
            read.result,
            ReadResult::Subscribed { .. } | ReadResult::Polled { .. }
        ) {
            continue;
        }
        audit.reads += 1;
        let expect_reject = oracle_expects_rejection(scenario, report, read);
        if expect_reject {
            audit.expected_rejected += 1;
        }
        if read.answered() == expect_reject {
            audit.verdict_mismatches += 1;
        }
        match &read.result {
            ReadResult::Rejected { .. } => audit.rejected += 1,
            ReadResult::Scan { bag } => {
                audit.answered += 1;
                let truth = oracle_view_at_epoch(
                    scenario,
                    read.op.view,
                    &report.views[read.op.view].installs,
                    read.epoch,
                )?;
                if bag != &truth {
                    audit.content_mismatches += 1;
                }
            }
            ReadResult::Point {
                multiplicity,
                matches,
            } => {
                audit.answered += 1;
                let ReadKind::Point { column, key } = read.op.kind else {
                    audit.content_mismatches += 1;
                    continue;
                };
                let truth = oracle_view_at_epoch(
                    scenario,
                    read.op.view,
                    &report.views[read.op.view].installs,
                    read.epoch,
                )?;
                let want: Vec<(Tuple, i64)> = truth
                    .to_sorted_vec()
                    .into_iter()
                    .filter(|(t, _)| t.at(column) == &dw_relational::Value::Int(key))
                    .collect();
                if matches != &want || *multiplicity != want.iter().map(|&(_, m)| m).sum::<i64>() {
                    audit.content_mismatches += 1;
                }
            }
            ReadResult::Subscribed { .. } | ReadResult::Polled { .. } => {
                unreachable!("filtered above")
            }
        }
    }
    Ok(audit)
}

/// Aggregate verdict of [`audit_lag_recoveries`]: every bounded
/// subscription's event history checked for stream equivalence — the
/// deltas it received plus the snapshots it resumed through must
/// reconstruct exactly what an unbounded subscriber saw.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LagAudit {
    /// Bounded subscriptions audited.
    pub subs: u64,
    /// Install deltas delivered across them.
    pub delivered: u64,
    /// Lag conditions observed (polls that found a dropped queue).
    pub lag_events: u64,
    /// Snapshot resumes taken.
    pub resumes: u64,
    /// Epoch-contiguity violations inside live stretches. Must be zero.
    pub gap_violations: u64,
    /// Resume snapshots that diverged from the recompute oracle at
    /// their epoch. Must be zero.
    pub snapshot_mismatches: u64,
    /// Subscriptions whose folded history (deltas + resume snapshots)
    /// missed the view's final contents, or stopped short of its final
    /// epoch. Must be zero.
    pub final_mismatches: u64,
}

impl LagAudit {
    /// Every bounded subscription reconstructed the unbounded stream.
    pub fn clean(&self) -> bool {
        self.gap_violations == 0 && self.snapshot_mismatches == 0 && self.final_mismatches == 0
    }
}

/// Audit every bounded subscription in `report` for recovery
/// equivalence: fold its event history — merging delivered deltas,
/// substituting the resume snapshot at each `Resumed` — and require (a)
/// contiguous epochs within each live stretch, (b) every resume
/// snapshot equal to [`oracle_view_at_epoch`] at its epoch, and (c) the
/// folded end state equal to the oracle at the view's final epoch. That
/// is exactly "resumed stream + snapshot == full stream".
pub fn audit_lag_recoveries(
    scenario: &MultiViewScenario,
    report: &ServeReport,
) -> Result<LagAudit, CoreError> {
    let mut audit = LagAudit::default();
    for sub in &report.lag {
        audit.subs += 1;
        let installs = report
            .installs_for_slot(sub.view)
            .ok_or_else(|| CoreError::Multi(format!("lag audit: no slot {}", sub.view)))?;
        let mut running = oracle_view_at_epoch(scenario, sub.view, installs, sub.from_epoch)?;
        let mut next = sub.from_epoch + 1;
        for ev in &sub.events {
            match ev {
                LagEvent::Delivered(d) => {
                    audit.delivered += 1;
                    if d.view != sub.view || d.epoch != next {
                        audit.gap_violations += 1;
                    }
                    running.merge(&d.delta);
                    next = d.epoch + 1;
                }
                LagEvent::Lagged { .. } => audit.lag_events += 1,
                LagEvent::Resumed { epoch, snapshot } => {
                    audit.resumes += 1;
                    let truth = oracle_view_at_epoch(scenario, sub.view, installs, *epoch)?;
                    if snapshot != &truth {
                        audit.snapshot_mismatches += 1;
                    }
                    running = snapshot.clone();
                    next = epoch + 1;
                }
            }
        }
        // The quiescence drain catches every bounded subscription up to
        // the view's final epoch; anything short is a lost suffix.
        let last = next - 1;
        if last != installs.len() as u64 {
            audit.final_mismatches += 1;
            continue;
        }
        let truth = oracle_view_at_epoch(scenario, sub.view, installs, last)?;
        if running != truth {
            audit.final_mismatches += 1;
        }
    }
    Ok(audit)
}

/// Recompute a view's contents at epoch `e` from first principles: the
/// scenario's initial relations with the deltas of every transaction
/// consumed by installs `1..=e` applied, evaluated through the view
/// definition. This is the ground truth a snapshot read at a pinned
/// epoch must equal.
pub fn oracle_view_at_epoch(
    scenario: &MultiViewScenario,
    view_index: usize,
    installs: &[dw_warehouse::InstallRecord],
    epoch: u64,
) -> Result<Bag, CoreError> {
    let spec = scenario
        .views
        .get(view_index)
        .ok_or_else(|| CoreError::Multi(format!("oracle: no view {view_index}")))?;
    let local = spec.compile(&scenario.base)?;
    let mut shadows: Vec<Bag> = scenario.initial[spec.lo..=spec.hi].to_vec();
    if epoch > 0 {
        let deltas = txn_deltas(scenario);
        for rec in installs.iter().take(epoch as usize) {
            for id in &rec.consumed {
                let delta = deltas.get(id).ok_or_else(|| {
                    CoreError::Multi(format!("oracle: consumed unknown update {id:?}"))
                })?;
                shadows[id.source - spec.lo].merge(delta);
            }
        }
    }
    let refs: Vec<&Bag> = shadows.iter().collect();
    Ok(eval_view(&local, &refs)?)
}

/// Whether the staleness oracle expects this read to have been
/// rejected: some in-span update was delivered before the bound's
/// cutoff (within the delivery prefix visible at issue time) yet was
/// not consumed by any install up to the pinned epoch.
pub fn oracle_expects_rejection(
    scenario: &MultiViewScenario,
    report: &ServeReport,
    read: &ReadOutcome,
) -> bool {
    let Some(window) = read.op.bound_window else {
        return false;
    };
    let Some(spec) = scenario.views.get(read.op.view) else {
        return false;
    };
    let cutoff = read.op.at.saturating_sub(window);
    // First delivery time per update within the visible prefix (the
    // store also keeps the first).
    let mut first_seen: HashMap<UpdateId, Time> = HashMap::new();
    for &(id, at) in &report.delivery_log[..read.deliveries_seen] {
        first_seen.entry(id).or_insert(at);
    }
    let consumed: HashSet<UpdateId> = report.views[read.op.view]
        .installs
        .iter()
        .take(read.epoch as usize)
        .flat_map(|r| r.consumed.iter().copied())
        .collect();
    first_seen.iter().any(|(id, &at)| {
        spec.lo <= id.source && id.source <= spec.hi && at < cutoff && !consumed.contains(id)
    })
}

/// Per-update transaction deltas, keyed by the `UpdateId` each source
/// will stamp: sources emit one update per applied transaction, with
/// per-source sequence numbers following injection (time) order.
fn txn_deltas(scenario: &MultiViewScenario) -> HashMap<UpdateId, Bag> {
    let mut next_seq: HashMap<usize, u64> = HashMap::new();
    let mut map = HashMap::new();
    let mut order: Vec<usize> = (0..scenario.txns.len()).collect();
    order.sort_by_key(|&i| (scenario.txns[i].at, i));
    for i in order {
        let t = &scenario.txns[i];
        let seq = next_seq.entry(t.source).or_insert(0);
        map.insert(
            UpdateId {
                source: t.source,
                seq: *seq,
            },
            t.delta.clone(),
        );
        *seq += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_workload::{MultiViewConfig, ReadMixConfig, StreamConfig};

    fn scenario(n_views: usize, seed: u64) -> MultiViewScenario {
        MultiViewConfig {
            stream: StreamConfig {
                n_sources: 4,
                updates: 20,
                initial_per_source: 12,
                domain: 8,
                mean_gap: 500,
                seed,
                ..Default::default()
            },
            n_views,
            view_seed: seed ^ 0xABCD,
            full_span: false,
            n_derived: 0,
            derived_seed: 0,
        }
        .generate()
        .unwrap()
    }

    fn mix(n_views: usize, seed: u64) -> Vec<ReadOp> {
        ReadMixConfig {
            readers: 4,
            reads_per_reader: 10,
            n_views,
            seed,
            ..Default::default()
        }
        .generate()
    }

    fn check_against_oracle(scenario: &MultiViewScenario, report: &ServeReport) {
        assert!(report.quiescent);
        for read in &report.reads {
            match &read.result {
                ReadResult::Scan { bag } => {
                    let truth = oracle_view_at_epoch(
                        scenario,
                        read.op.view,
                        &report.views[read.op.view].installs,
                        read.epoch,
                    )
                    .unwrap();
                    assert_eq!(bag, &truth, "scan at epoch {} drifted", read.epoch);
                    assert!(!oracle_expects_rejection(scenario, report, read));
                }
                ReadResult::Point {
                    multiplicity,
                    matches,
                } => {
                    let truth = oracle_view_at_epoch(
                        scenario,
                        read.op.view,
                        &report.views[read.op.view].installs,
                        read.epoch,
                    )
                    .unwrap();
                    let ReadKind::Point { column, key } = read.op.kind else {
                        panic!("point outcome from non-point op");
                    };
                    let want: Vec<(Tuple, i64)> = truth
                        .to_sorted_vec()
                        .into_iter()
                        .filter(|(t, _)| t.at(column) == &dw_relational::Value::Int(key))
                        .collect();
                    assert_eq!(matches, &want);
                    assert_eq!(*multiplicity, want.iter().map(|&(_, m)| m).sum::<i64>());
                    assert!(!oracle_expects_rejection(scenario, report, read));
                }
                ReadResult::Rejected { .. } => {
                    assert!(
                        oracle_expects_rejection(scenario, report, read),
                        "spurious rejection at epoch {} (op at {})",
                        read.epoch,
                        read.op.at
                    );
                }
                ReadResult::Subscribed { .. } | ReadResult::Polled { .. } => {}
            }
        }
        assert!(report.subscriptions_match_installs());
    }

    #[test]
    fn flat_reads_match_oracle_and_subs_replay_installs() {
        let sc = scenario(3, 11);
        let reads = mix(3, 11);
        let report = ServeExperiment::new(sc.clone()).reads(reads).run().unwrap();
        assert!(report.serve_stats.snapshots_published > 0);
        let installs: u64 = report.views.iter().map(|v| v.installs.len() as u64).sum();
        assert_eq!(report.serve_stats.snapshots_published, installs);
        assert!(report.answered() > 0);
        check_against_oracle(&sc, &report);
    }

    #[test]
    fn tight_bounds_reject_exactly_when_oracle_says() {
        let sc = scenario(2, 12);
        // Zero trailing window: the answer must reflect everything
        // delivered before the read instant — mid-sweep reads reject.
        let reads: Vec<ReadOp> = mix(2, 12)
            .into_iter()
            .map(|mut op| {
                if !matches!(op.kind, ReadKind::Subscribe) {
                    op.bound_window = Some(0);
                }
                op
            })
            .collect();
        let report = ServeExperiment::new(sc.clone()).reads(reads).run().unwrap();
        assert_eq!(
            report.rejected() as u64,
            report.serve_stats.reads_rejected,
            "store counters disagree with outcomes"
        );
        check_against_oracle(&sc, &report);
    }

    #[test]
    fn sharded_engine_serves_the_same_epochs() {
        let sc = scenario(3, 13);
        let map = ShardMap::hash(2);
        let reads = mix(3, 13);
        let flat = ServeExperiment::new(sc.clone())
            .reads(reads.clone())
            .run()
            .unwrap();
        let sharded = ServeExperiment::new(sc.clone())
            .sharded(map)
            .reads(reads)
            .run()
            .unwrap();
        assert!(sharded.sharded && !flat.sharded);
        check_against_oracle(&sc, &sharded);
        assert_eq!(flat.install_fingerprint(), sharded.install_fingerprint());
    }

    #[test]
    fn reads_survive_a_warehouse_crash_window() {
        let sc = scenario(2, 14);
        let crash_at = sc.txns[8].at;
        let reads = mix(2, 14);
        let report = ServeExperiment::new(sc.clone())
            .reads(reads)
            .durability(2)
            .transport_auto()
            .faults(FaultPlan::none().state_crash(WAREHOUSE_NODE, crash_at, crash_at + 2_000))
            .run()
            .unwrap();
        assert!(report.recovery.as_ref().unwrap().recoveries >= 1);
        // Every read resolved — none was lost to the crash window.
        assert_eq!(report.reads.len(), report.answered() + report.rejected());
        check_against_oracle(&sc, &report);
    }

    /// Field-wise byte-equality of two runs' read outcomes (Bag hides a
    /// HashMap, so Debug-string comparison would be order-unstable).
    fn assert_reads_identical(a: &ServeReport, b: &ServeReport) {
        assert_eq!(a.reads.len(), b.reads.len());
        for (x, y) in a.reads.iter().zip(&b.reads) {
            assert_eq!(x.op, y.op);
            assert_eq!(x.epoch, y.epoch);
            assert_eq!(x.deliveries_seen, y.deliveries_seen);
            match (&x.result, &y.result) {
                (
                    ReadResult::Point {
                        multiplicity: m1,
                        matches: t1,
                    },
                    ReadResult::Point {
                        multiplicity: m2,
                        matches: t2,
                    },
                ) => {
                    assert_eq!(m1, m2);
                    assert_eq!(t1, t2);
                }
                (ReadResult::Scan { bag: b1 }, ReadResult::Scan { bag: b2 }) => {
                    assert_eq!(b1, b2)
                }
                (
                    ReadResult::Rejected {
                        required: r1,
                        freshest_admissible: f1,
                    },
                    ReadResult::Rejected {
                        required: r2,
                        freshest_admissible: f2,
                    },
                ) => {
                    assert_eq!(r1, r2);
                    assert_eq!(f1, f2);
                }
                (ReadResult::Subscribed { .. }, ReadResult::Subscribed { .. }) => {}
                (
                    ReadResult::Polled {
                        delivered: d1,
                        resumed: r1,
                    },
                    ReadResult::Polled {
                        delivered: d2,
                        resumed: r2,
                    },
                ) => {
                    assert_eq!(d1, d2);
                    assert_eq!(r1, r2);
                }
                (x, y) => panic!("outcome shape diverged: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn index_and_cache_arms_are_invisible_to_answers() {
        let sc = scenario(2, 16);
        let reads = ReadMixConfig::hot_key_points(4, 16, 16);
        let reads = ReadMixConfig {
            n_views: 2,
            ..reads
        }
        .generate();
        let indexed = ServeExperiment::new(sc.clone())
            .reads(reads.clone())
            .run()
            .unwrap();
        let linear = ServeExperiment::new(sc.clone())
            .reads(reads.clone())
            .point_index(false)
            .run()
            .unwrap();
        let cached = ServeExperiment::new(sc.clone())
            .reads(reads)
            .answer_cache(32)
            .run()
            .unwrap();
        assert_reads_identical(&indexed, &linear);
        assert_reads_identical(&indexed, &cached);
        check_against_oracle(&sc, &indexed);
        // The arms really engaged: the indexed run built indexes and did
        // strictly less per-read work than the linear one; the cached
        // run hit its cache on the hot keys.
        assert!(indexed.serve_stats.point_index_builds > 0);
        assert_eq!(linear.serve_stats.point_index_builds, 0);
        assert!(indexed.serve_stats.read_work_tuples < linear.serve_stats.read_work_tuples);
        assert!(cached.serve_stats.cache_hits > 0);
    }

    #[test]
    fn lagged_subscriptions_recover_equivalently() {
        // Seed 20 deals both views a Sweep policy (12 and 11 installs) —
        // plenty of publish pressure for a queue bound of 1.
        let sc = scenario(2, 20);
        let reads = ReadMixConfig {
            n_views: 2,
            ..ReadMixConfig::laggy_subscribers(4, 20, 20)
        }
        .generate();
        let report = ServeExperiment::new(sc.clone())
            .reads(reads)
            .bounded_subscriptions(1)
            .run()
            .unwrap();
        check_against_oracle(&sc, &report);
        let audit = audit_lag_recoveries(&sc, &report).unwrap();
        assert_eq!(audit.subs, 2);
        assert!(
            audit.lag_events >= 1 && audit.resumes >= 1,
            "max_lag=1 under ~a dozen installs per view must overflow: {audit:?}"
        );
        assert!(audit.clean(), "{audit:?}");
        assert_eq!(report.serve_stats.subs_lagged, audit.lag_events);
        assert_eq!(report.serve_stats.subs_resumed, audit.resumes);
    }

    #[test]
    fn no_reader_referee_has_identical_maintenance() {
        let sc = scenario(3, 15);
        let with_reads = ServeExperiment::new(sc.clone())
            .reads(mix(3, 15))
            .run()
            .unwrap();
        let referee = ServeExperiment::new(sc).run().unwrap();
        assert_eq!(with_reads.makespan(), referee.makespan());
        assert_eq!(with_reads.query_messages(), referee.query_messages());
        assert_eq!(
            with_reads.install_fingerprint(),
            referee.install_fingerprint()
        );
    }
}
