//! Run results.

use dw_consistency::{ConsistencyReport, LagSeries};
use dw_protocol::UpdateId;
use dw_relational::Bag;
use dw_simnet::{NetStats, Time, TraceEvent};
use dw_warehouse::{InstallRecord, PolicyMetrics};

/// Everything observable from one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Policy that ran ("sweep", "strobe", …).
    pub policy: &'static str,
    /// Final materialized view.
    pub view: Bag,
    /// Every install, in order.
    pub installs: Vec<InstallRecord>,
    /// Algorithm-level counters (queries, compensations, staleness, …).
    pub metrics: PolicyMetrics,
    /// Network-level accounting (per link / per label messages and bytes).
    pub net: NetStats,
    /// Consistency classification (when checking was enabled).
    pub consistency: Option<ConsistencyReport>,
    /// Whether the policy reported quiescence at the end of the run.
    pub quiescent: bool,
    /// Simulation time at the end of the run (µs).
    pub end_time: Time,
    /// Deliveries processed.
    pub events: u64,
    /// Network trace (when tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Warehouse delivery log `(update, delivery time)` in delivery order.
    pub delivery_log: Vec<(UpdateId, Time)>,
}

impl RunReport {
    /// Maintenance messages: everything except the workload injections —
    /// the updates flowing in plus all queries/answers. This matches the
    /// paper's message accounting.
    pub fn maintenance_messages(&self) -> u64 {
        self.net.total().messages - self.net.label("txn").messages
    }

    /// Query/answer round-trip messages only (excludes the update stream).
    pub fn query_messages(&self) -> u64 {
        [
            "query",
            "answer",
            "eca_query",
            "eca_answer",
            "dump_query",
            "dump_answer",
        ]
        .iter()
        .map(|l| self.net.label(l).messages)
        .sum()
    }

    /// Query/answer messages per processed update — the Table 1 column.
    pub fn messages_per_update(&self) -> f64 {
        if self.metrics.updates_received == 0 {
            return 0.0;
        }
        self.query_messages() as f64 / self.metrics.updates_received as f64
    }

    /// Query/answer round trips counted *logically* — each message once at
    /// send time, however often the fault layer and the transport made the
    /// wire repeat it. Under faults this is the number the paper's
    /// `2(n−1)` claim (E6) is about; on a clean run it equals
    /// [`RunReport::query_messages`].
    pub fn logical_query_messages(&self) -> u64 {
        [
            "query",
            "answer",
            "eca_query",
            "eca_answer",
            "dump_query",
            "dump_answer",
        ]
        .iter()
        .map(|l| self.net.label_logical(l).messages)
        .sum()
    }

    /// Logical query/answer messages per processed update — the Table 1
    /// column, robust to retransmission inflation.
    pub fn logical_messages_per_update(&self) -> f64 {
        if self.metrics.updates_received == 0 {
            return 0.0;
        }
        self.logical_query_messages() as f64 / self.metrics.updates_received as f64
    }

    /// Bytes the reliability transport added to the wire: retransmitted
    /// frames plus ack/resync control traffic. Zero when the transport is
    /// off or the network is clean enough to never retransmit.
    pub fn transport_overhead_bytes(&self) -> u64 {
        self.net.retransmitted().bytes
            + ["ack", "resync", "resync_ack"]
                .iter()
                .map(|l| self.net.label(l).bytes)
                .sum::<u64>()
    }

    /// Messages the reliability transport added to the wire (see
    /// [`RunReport::transport_overhead_bytes`]).
    pub fn transport_overhead_messages(&self) -> u64 {
        self.net.retransmitted().messages
            + ["ack", "resync", "resync_ack"]
                .iter()
                .map(|l| self.net.label(l).messages)
                .sum::<u64>()
    }

    /// View lag over time — how far the view trails the delivered updates
    /// (the §3 "trailing" phenomenon, quantified).
    pub fn lag_series(&self) -> LagSeries {
        LagSeries::new(&self.delivery_log, &self.installs)
    }

    /// Bytes carried by queries (ECA's quadratic-size experiment).
    pub fn query_bytes(&self) -> u64 {
        ["query", "eca_query", "dump_query"]
            .iter()
            .map(|l| self.net.label(l).bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Experiment, PolicyKind};
    use dw_workload::StreamConfig;

    fn run() -> super::RunReport {
        Experiment::new(
            StreamConfig {
                n_sources: 3,
                updates: 10,
                initial_per_source: 15,
                mean_gap: 500,
                seed: 77,
                ..Default::default()
            }
            .generate()
            .unwrap(),
        )
        .policy(PolicyKind::Sweep(Default::default()))
        .run()
        .unwrap()
    }

    #[test]
    fn message_accounting_consistent() {
        let r = run();
        // Updates + queries + answers == everything except injections.
        let updates = r.net.label("update").messages;
        assert_eq!(r.maintenance_messages(), updates + r.query_messages());
        assert_eq!(r.messages_per_update(), 4.0); // 2(n−1)
        assert!(r.query_bytes() > 0);
    }

    #[test]
    fn delivery_log_matches_metrics() {
        let r = run();
        assert_eq!(r.delivery_log.len() as u64, r.metrics.updates_received);
        assert!(r.delivery_log.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn lag_series_from_report() {
        let r = run();
        let lag = r.lag_series();
        assert_eq!(lag.final_lag(), 0, "quiescent run must catch up");
        assert!(lag.max_lag() >= 1);
    }

    #[test]
    fn zero_update_run_divides_safely() {
        let r = Experiment::new(
            StreamConfig {
                updates: 0,
                ..Default::default()
            }
            .generate()
            .unwrap(),
        )
        .run()
        .unwrap();
        assert_eq!(r.messages_per_update(), 0.0);
        assert_eq!(r.maintenance_messages(), 0);
    }
}
