//! Multi-view experiment harness: many registered views, one scheduler.
//!
//! Mirrors [`Experiment`](crate::Experiment) but drives a
//! [`MaintenanceScheduler`] instead of a single maintenance policy: the
//! scenario carries a *base chain* plus a set of span views
//! ([`dw_workload::MultiViewScenario`]), every view is registered before
//! the stream starts, and the run reports per-view outcomes (final bag,
//! install log, metrics, consistency level) plus cross-view mutual
//! consistency and the shared-vs-naive message accounting E14 measures.

use crate::experiment::CoreError;
use crate::runner::{NetProfile, SimHarness};
use dw_consistency::{
    classify, mutual_consistency, remap_installs, ConsistencyLevel, ConsistencyReport,
    MutualReport, Recorder, ViewLog,
};
use dw_multiview::{
    CascadeStats, DurabilityConfig, EngineOptions, MaintenanceScheduler, MvError, RecoveryStats,
    SchedulerMode, ViewId, ViewRegistry,
};
use dw_protocol::{node_source, source_node, Message, TransportConfig, UpdateId, WAREHOUSE_NODE};
use dw_relational::{eval_view, Bag};
use dw_simnet::{FaultPlan, LatencyModel, NetStats, NodeId, Time};
use dw_source::DataSource;
use dw_warehouse::{InstallRecord, PolicyMetrics};
use dw_workload::{MultiViewScenario, ViewPolicy};

/// A configured multi-view experiment: scenario × scheduler mode ×
/// network profile.
pub struct MultiViewExperiment {
    scenario: MultiViewScenario,
    mode: SchedulerMode,
    opts: EngineOptions,
    latency: LatencyModel,
    link_overrides: Vec<(NodeId, NodeId, LatencyModel)>,
    seed: u64,
    check_consistency: bool,
    record_snapshots: bool,
    event_cap: u64,
    faults: FaultPlan,
    transport: Option<TransportConfig>,
    durability: Option<DurabilityConfig>,
    obs: dw_obs::Obs,
}

impl MultiViewExperiment {
    /// New experiment over a multi-view scenario, defaulting to the
    /// shared-sweep scheduler, 1 ms constant links, consistency checking
    /// on.
    pub fn new(scenario: MultiViewScenario) -> Self {
        MultiViewExperiment {
            scenario,
            mode: SchedulerMode::Shared,
            opts: EngineOptions::default(),
            latency: LatencyModel::Constant(1_000),
            link_overrides: Vec::new(),
            seed: 0,
            check_consistency: true,
            record_snapshots: true,
            event_cap: 10_000_000,
            faults: FaultPlan::default(),
            transport: None,
            durability: None,
            obs: dw_obs::Obs::off(),
        }
    }

    /// Choose shared-sweep or the naive per-view baseline.
    pub fn mode(mut self, mode: SchedulerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enable cross-update batching: one shared sweep folds up to `k`
    /// queued same-source updates (shared mode only; `1` disables). The
    /// E15 experiment measures messages/update falling toward
    /// `2(n−1)/k` under bursty arrivals.
    pub fn batch(mut self, k: usize) -> Self {
        self.opts.batch = k;
        self
    }

    /// Push per-view selection predicates down to the sources: sweep
    /// queries carry the affected views' σ over the target relation and
    /// sources filter before joining, so only qualifying tuples travel
    /// back. Final views and install sequences are identical either way;
    /// the E16 experiment measures the tuples-on-wire reduction.
    pub fn pushdown(mut self, on: bool) -> Self {
        self.opts.pushdown = on;
        self
    }

    /// Attach an observability recorder (scheduler spans/counters, plus
    /// network and transport instrumentation).
    pub fn observe(mut self, obs: dw_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Default latency model for every link.
    pub fn latency(mut self, l: LatencyModel) -> Self {
        self.latency = l;
        self
    }

    /// Override one directed link's latency.
    pub fn link_latency(mut self, from: NodeId, to: NodeId, l: LatencyModel) -> Self {
        self.link_overrides.push((from, to, l));
        self
    }

    /// Network RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disable ground-truth tracking and classification (for big runs).
    pub fn check_consistency(mut self, on: bool) -> Self {
        self.check_consistency = on;
        self
    }

    /// Disable per-install view snapshots (for big runs).
    pub fn record_snapshots(mut self, on: bool) -> Self {
        self.record_snapshots = on;
        self
    }

    /// Abort the run after this many deliveries (oscillation guard).
    pub fn event_cap(mut self, cap: u64) -> Self {
        self.event_cap = cap;
        self
    }

    /// Install a fault plan (drops, duplicates, reordering, partitions,
    /// crashes). Pair with [`MultiViewExperiment::transport`] to restore
    /// the reliable-FIFO contract the scheduler assumes.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Run every node behind the reliability transport.
    pub fn transport(mut self, cfg: TransportConfig) -> Self {
        self.transport = Some(cfg);
        self
    }

    /// Enable the transport with timing derived from the experiment's
    /// latency model (RTO ≈ three round trips).
    pub fn transport_auto(mut self) -> Self {
        self.transport = Some(TransportConfig::for_latency_mean(self.latency.mean()));
        self
    }

    /// Arm warehouse crash recovery: durable checkpoints every
    /// `checkpoint_every` sweep commits plus a sweep WAL. Required for
    /// the scheduler to survive [`FaultPlan::state_crash`] windows —
    /// the harness routes each state-crash restart into
    /// `MaintenanceScheduler::crash_and_recover`.
    pub fn durability(mut self, checkpoint_every: usize) -> Self {
        self.durability = Some(DurabilityConfig { checkpoint_every });
        self
    }

    /// Run to network quiescence and report.
    pub fn run(self) -> Result<MultiViewReport, CoreError> {
        let scenario = &self.scenario;
        let base = scenario.base.clone();
        let n = base.num_relations();

        if let Some(cfg) = &self.transport {
            cfg.validate()
                .map_err(|e| CoreError::Multi(e.to_string()))?;
        }
        let mut sched = MaintenanceScheduler::with_options(base.clone(), self.mode, self.opts)?;
        sched.set_record_snapshots(self.record_snapshots);
        sched.set_observer(self.obs.clone());

        // Register every view with its correct initial contents; build a
        // per-view recorder over the view's *local* definition (span
        // coordinates), fed only with in-span deliveries.
        let mut ids: Vec<ViewId> = Vec::new();
        let mut recorders: Vec<Option<Recorder>> = Vec::new();
        for spec in &scenario.views {
            let local = spec.compile(&base)?;
            let refs: Vec<&Bag> = scenario.initial[spec.lo..=spec.hi].iter().collect();
            let initial_view = eval_view(&local, &refs)?;
            ids.push(sched.register(spec, initial_view)?);
            recorders.push(self.check_consistency.then(|| {
                Recorder::new(local.clone(), scenario.initial[spec.lo..=spec.hi].to_vec())
            }));
        }
        let spans: Vec<(usize, usize)> = scenario.views.iter().map(|s| (s.lo, s.hi)).collect();
        // Derived (view-over-view) registrations go on top of the base
        // set; order-independent resolution handles stacks given in any
        // order and rejects cycles/unknown parents up front.
        let derived_ids = sched.register_derived_many(&scenario.derived)?;
        // Durability arms after registration so the initial checkpoint
        // already carries every view at its correct initial contents.
        if let Some(cfg) = self.durability {
            sched.enable_durability(cfg);
        }

        let profile = NetProfile {
            latency: self.latency,
            link_overrides: self.link_overrides,
            seed: self.seed,
            faults: self.faults,
            transport: self.transport,
            event_cap: self.event_cap,
            trace: false,
            obs: self.obs.clone(),
        };
        let mut harness = SimHarness::new(&profile, n + 1);

        let mut sources: Vec<DataSource> = Vec::new();
        for i in 0..n {
            let mut r = dw_relational::BaseRelation::new(base.schema(i).clone());
            r.apply_delta(&scenario.initial[i])?;
            let mut src = DataSource::new(i, base.clone(), r);
            src.set_observer(self.obs.clone());
            sources.push(src);
        }

        for t in &scenario.txns {
            harness.net.inject(
                t.at,
                source_node(t.source),
                Message::ApplyTxn {
                    rel: t.source,
                    delta: t.delta.clone(),
                    global: t.global,
                },
            );
        }

        let mut delivery_log: Vec<(UpdateId, Time)> = Vec::new();
        harness.drive(|d, net| {
            if d.to == WAREHOUSE_NODE {
                if matches!(d.msg, Message::Restart) {
                    // A warehouse *state crash* just healed: volatile
                    // scheduler state is gone, the durable store is not.
                    // Recover instead of dispatching (the scheduler's
                    // dispatcher rejects Restart as unexpected). With
                    // durability unarmed this is a no-op — the amnesia
                    // semantics the pre-recovery engine had.
                    sched.crash_and_recover(net)?;
                    return Ok(());
                }
                if let Message::Update(u) = &d.msg {
                    delivery_log.push((u.id, d.at));
                    // Each view's ground truth sees only in-span updates,
                    // with the source index shifted into span coordinates.
                    for (v, rec) in recorders.iter_mut().enumerate() {
                        let (lo, hi) = spans[v];
                        if let Some(rec) = rec.as_mut() {
                            if lo <= u.id.source && u.id.source <= hi {
                                let local_id = UpdateId {
                                    source: u.id.source - lo,
                                    seq: u.id.seq,
                                };
                                rec.record_delivery(local_id, d.at, u.delta.clone());
                            }
                        }
                    }
                }
                sched.on_message(d, net)?;
            } else {
                if matches!(d.msg, Message::Restart) {
                    // A source's database is modeled durable already; a
                    // state-crash restart needs no application action.
                    return Ok(());
                }
                let idx = node_source(d.to);
                let src = sources
                    .get_mut(idx)
                    .ok_or(CoreError::NoSuchNode { node: d.to })?;
                src.handle(d.from, d.msg, net)?;
            }
            Ok(())
        })?;

        // Per-view outcomes: classify each install log (shifted into span
        // coordinates) against the view's own recorder.
        let mut views: Vec<ViewOutcome> = Vec::new();
        for (v, &id) in ids.iter().enumerate() {
            let installs = sched.views().install_log(id)?.to_vec();
            let bag = sched.views().view_bag(id)?.clone();
            let consistency = recorders[v].as_ref().map(|rec| {
                let local_installs = remap_installs(&installs, spans[v].0);
                classify(rec, &local_installs, &bag)
            });
            views.push(ViewOutcome {
                name: sched.views().name(id)?.to_string(),
                lo: spans[v].0,
                hi: spans[v].1,
                policy: sched.views().policy(id)?,
                view: bag,
                installs,
                metrics: sched.views().metrics(id)?.clone(),
                consistency,
            });
        }

        let derived = derived_outcomes(sched.views(), &derived_ids)?;

        let mutual = self.check_consistency.then(|| {
            let logs: Vec<ViewLog<'_>> = views
                .iter()
                .map(|o| ViewLog {
                    name: &o.name,
                    lo: o.lo,
                    hi: o.hi,
                    installs: &o.installs,
                })
                .collect();
            mutual_consistency(&logs)
        });

        let transport_quiescent = harness.transport_quiescent();

        Ok(MultiViewReport {
            mode: self.mode,
            views,
            derived,
            cascade: sched.views().cascade_stats(),
            scheduler_metrics: sched.metrics().clone(),
            recovery: sched.recovery_stats(),
            wal_bytes_written: sched
                .durable_stats()
                .map(|s| s.wal_bytes_written)
                .unwrap_or(0),
            checkpoints_taken: sched
                .durable_stats()
                .map(|s| s.checkpoints_taken)
                .unwrap_or(0),
            mutual,
            net: harness.net.stats().clone(),
            quiescent: sched.is_quiescent() && transport_quiescent,
            end_time: harness.net.now(),
            events: harness.events,
            delivery_log,
        })
    }
}

impl From<MvError> for CoreError {
    fn from(e: MvError) -> Self {
        match e {
            MvError::Relational(e) => CoreError::Relational(e),
            MvError::Warehouse(e) => CoreError::Warehouse(e),
            other => CoreError::Multi(other.to_string()),
        }
    }
}

/// Build end-of-run outcomes for every derived view, auditing each
/// install epoch against a fresh recompute of the operator over the
/// parent's snapshot at the *same* epoch. The cascade consumes the same
/// update ids as the parent install, so the two logs align 1:1 — any
/// length difference is itself counted as a mismatch.
pub(crate) fn derived_outcomes(
    reg: &ViewRegistry,
    ids: &[ViewId],
) -> Result<Vec<DerivedOutcome>, CoreError> {
    let mut out = Vec::new();
    for &id in ids {
        let parent = reg
            .parent_of(id)?
            .expect("outcome requested for a base view");
        let op = reg
            .derived_op(id)?
            .expect("derived view carries its operator")
            .clone();
        let installs = reg.install_log(id)?.to_vec();
        let parent_installs = reg.install_log(parent)?;
        let mut epochs_audited = 0usize;
        let mut epoch_mismatches = installs.len().abs_diff(parent_installs.len());
        for (mine, theirs) in installs.iter().zip(parent_installs.iter()) {
            if let (Some(child_after), Some(parent_after)) = (&mine.view_after, &theirs.view_after)
            {
                epochs_audited += 1;
                if *child_after != op.eval(parent_after)? {
                    epoch_mismatches += 1;
                }
            }
        }
        let final_matches_oracle = *reg.view_bag(id)? == op.eval(reg.view_bag(parent)?)?;
        out.push(DerivedOutcome {
            name: reg.name(id)?.to_string(),
            parent: reg.name(parent)?.to_string(),
            op: op.name().to_string(),
            linear: op.is_linear(),
            view: reg.view_bag(id)?.clone(),
            installs,
            metrics: reg.metrics(id)?.clone(),
            epochs_audited,
            epoch_mismatches,
            final_matches_oracle,
        });
    }
    Ok(out)
}

/// One derived (view-over-view) view's end-of-run state, plus its
/// fresh-recompute oracle audit.
#[derive(Clone, Debug)]
pub struct DerivedOutcome {
    /// Display name from the spec.
    pub name: String,
    /// The parent view this one derives from.
    pub parent: String,
    /// Operator kind (`"select"` or `"aggregate"`).
    pub op: String,
    /// Whether the operator is linear (child delta = op on parent delta).
    pub linear: bool,
    /// Final materialized contents.
    pub view: Bag,
    /// Install log; consumed ids mirror the parent's epochs 1:1.
    pub installs: Vec<InstallRecord>,
    /// Per-view counters (installs, staleness histogram, …).
    pub metrics: PolicyMetrics,
    /// Install epochs whose snapshots were compared against the oracle
    /// (0 when snapshot recording was off).
    pub epochs_audited: usize,
    /// Audited epochs where the incremental contents differed from a
    /// fresh recompute over the parent's same-epoch snapshot, plus any
    /// epoch-count misalignment with the parent. Must be 0.
    pub epoch_mismatches: usize,
    /// Final contents equal the operator freshly evaluated over the
    /// parent's final contents (checked even with snapshots off).
    pub final_matches_oracle: bool,
}

/// One registered view's end-of-run state.
#[derive(Clone, Debug)]
pub struct ViewOutcome {
    /// Display name from the spec.
    pub name: String,
    /// First chain relation of the span.
    pub lo: usize,
    /// Last chain relation of the span (inclusive).
    pub hi: usize,
    /// The view's maintenance cadence.
    pub policy: ViewPolicy,
    /// Final materialized contents.
    pub view: Bag,
    /// Install log, consumed ids in **global** chain coordinates.
    pub installs: Vec<InstallRecord>,
    /// Per-view counters (installs, staleness histogram, …).
    pub metrics: PolicyMetrics,
    /// Consistency classification against the view's own ground truth
    /// (when checking was enabled).
    pub consistency: Option<ConsistencyReport>,
}

/// Everything observable from one multi-view run.
#[derive(Clone, Debug)]
pub struct MultiViewReport {
    /// Scheduler mode that ran.
    pub mode: SchedulerMode,
    /// Per-view outcomes, in registration order.
    pub views: Vec<ViewOutcome>,
    /// Derived (view-over-view) outcomes, in registration order. Their
    /// maintenance is fed locally by the cascade, never by source
    /// round-trips, so they appear nowhere in the message accounting.
    pub derived: Vec<DerivedOutcome>,
    /// Cascade counters: child installs, memoized sibling derivations,
    /// and fresh linear evaluations.
    pub cascade: CascadeStats,
    /// Aggregate scheduler counters (updates, queries, answers,
    /// compensations; installs are per view).
    pub scheduler_metrics: PolicyMetrics,
    /// Accumulated crash-recovery statistics (zeros when durability was
    /// off or no state crash fired).
    pub recovery: RecoveryStats,
    /// Total modeled WAL bytes appended over the run (0 with durability
    /// off).
    pub wal_bytes_written: u64,
    /// Durable checkpoints taken over the run (0 with durability off).
    pub checkpoints_taken: u64,
    /// Cross-view mutual consistency (when checking was enabled).
    pub mutual: Option<MutualReport>,
    /// Network-level accounting.
    pub net: NetStats,
    /// Scheduler and transport both drained at the end of the run.
    pub quiescent: bool,
    /// Simulation time at the end of the run (µs).
    pub end_time: Time,
    /// Deliveries processed.
    pub events: u64,
    /// Warehouse delivery log `(update, delivery time)` in delivery order.
    pub delivery_log: Vec<(UpdateId, Time)>,
}

impl MultiViewReport {
    /// Query/answer round-trip messages (excludes the update stream).
    pub fn query_messages(&self) -> u64 {
        ["query", "answer"]
            .iter()
            .map(|l| self.net.label(l).messages)
            .sum()
    }

    /// Query/answer messages per warehouse-received update — the E14
    /// column. Shared mode stays on `≤ 2(n−1)` regardless of view count;
    /// naive mode scales with it.
    pub fn messages_per_update(&self) -> f64 {
        if self.scheduler_metrics.updates_received == 0 {
            return 0.0;
        }
        self.query_messages() as f64 / self.scheduler_metrics.updates_received as f64
    }

    /// Query/answer messages counted once at send time, however often
    /// the fault layer repeated them on the wire.
    pub fn logical_query_messages(&self) -> u64 {
        ["query", "answer"]
            .iter()
            .map(|l| self.net.label_logical(l).messages)
            .sum()
    }

    /// Logical query/answer messages per update — robust to
    /// retransmission inflation under faults.
    pub fn logical_messages_per_update(&self) -> f64 {
        if self.scheduler_metrics.updates_received == 0 {
            return 0.0;
        }
        self.logical_query_messages() as f64 / self.scheduler_metrics.updates_received as f64
    }

    /// Every derived view passed its oracle audit: zero per-epoch
    /// mismatches and final contents equal to a fresh recompute over the
    /// parent.
    pub fn derived_clean(&self) -> bool {
        self.derived
            .iter()
            .all(|d| d.epoch_mismatches == 0 && d.final_matches_oracle)
    }

    /// Fraction of linear child derivations served from the shared
    /// sibling memo rather than freshly evaluated (the E20 sweep-sharing
    /// ratio); 0 when no linear derivation ran.
    pub fn sharing_ratio(&self) -> f64 {
        let total = self.cascade.shared_derivations + self.cascade.linear_evals;
        if total == 0 {
            return 0.0;
        }
        self.cascade.shared_derivations as f64 / total as f64
    }

    /// The weakest per-view consistency level (None when checking was
    /// off). The run is as good as its worst view.
    pub fn min_consistency(&self) -> Option<ConsistencyLevel> {
        self.views
            .iter()
            .map(|v| v.consistency.as_ref().map(|c| c.level))
            .collect::<Option<Vec<_>>>()
            .and_then(|levels| levels.into_iter().min())
    }

    /// p-th percentile staleness across *all* views' installs (µs);
    /// `None` when no view installed anything.
    pub fn staleness_percentile(&self, p: f64) -> Option<Time> {
        let mut merged = dw_obs::Histogram::new();
        for v in &self.views {
            merged.merge(v.metrics.staleness_histogram());
        }
        merged.percentile(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_workload::{MultiViewConfig, StreamConfig, ViewSpec};

    fn config(n_views: usize, seed: u64) -> MultiViewConfig {
        MultiViewConfig {
            stream: StreamConfig {
                n_sources: 4,
                updates: 20,
                initial_per_source: 12,
                domain: 8,
                mean_gap: 500,
                seed,
                ..Default::default()
            },
            n_views,
            view_seed: seed ^ 0xABCD,
            full_span: false,
            n_derived: 0,
            derived_seed: 0,
        }
    }

    fn config_with_derived(n_views: usize, n_derived: usize, seed: u64) -> MultiViewConfig {
        MultiViewConfig {
            n_derived,
            derived_seed: seed ^ 0xD0D0,
            ..config(n_views, seed)
        }
    }

    #[test]
    fn every_view_converges_and_mutual_holds() {
        let scenario = config(4, 1).generate().unwrap();
        let report = MultiViewExperiment::new(scenario).run().unwrap();
        assert!(report.quiescent);
        assert_eq!(report.views.len(), 4);
        for v in &report.views {
            let c = v.consistency.as_ref().unwrap();
            assert!(
                c.level >= ConsistencyLevel::Convergent,
                "view '{}' classified {}: {}",
                v.name,
                c.level,
                c.detail
            );
        }
        let mutual = report.mutual.unwrap();
        assert!(mutual.final_agreement, "{}", mutual.detail);
    }

    #[test]
    fn sweep_cadence_views_are_complete() {
        // Pure-SWEEP full-span views walk every delivered state.
        let mut cfg = config(3, 2);
        cfg.full_span = true;
        let scenario = cfg.generate().unwrap();
        let report = MultiViewExperiment::new(scenario).run().unwrap();
        for v in &report.views {
            if v.policy == ViewPolicy::Sweep {
                assert_eq!(
                    v.consistency.as_ref().unwrap().level,
                    ConsistencyLevel::Complete,
                    "view '{}'",
                    v.name
                );
            }
        }
    }

    #[test]
    fn shared_cost_is_view_count_independent() {
        for views in [1usize, 3, 6] {
            let mut cfg = config(views, 3);
            cfg.full_span = true;
            let report = MultiViewExperiment::new(cfg.generate().unwrap())
                .run()
                .unwrap();
            // 4 sources → 2(n−1) = 6 per update, whatever `views` is.
            assert!(
                (report.messages_per_update() - 6.0).abs() < 1e-9,
                "{views} views: {}",
                report.messages_per_update()
            );
        }
    }

    #[test]
    fn naive_cost_scales_with_view_count() {
        let mut cfg = config(3, 4);
        cfg.full_span = true;
        let scenario = cfg.generate().unwrap();
        let shared = MultiViewExperiment::new(scenario.clone()).run().unwrap();
        let naive = MultiViewExperiment::new(scenario)
            .mode(SchedulerMode::Naive)
            .run()
            .unwrap();
        assert!((shared.messages_per_update() - 6.0).abs() < 1e-9);
        assert!((naive.messages_per_update() - 18.0).abs() < 1e-9);
        // Identical final contents per view.
        for (s, n) in shared.views.iter().zip(naive.views.iter()) {
            assert_eq!(s.view, n.view, "view '{}'", s.name);
        }
    }

    #[test]
    fn jittered_links_still_converge() {
        let scenario = config(5, 5).generate().unwrap();
        let report = MultiViewExperiment::new(scenario)
            .latency(LatencyModel::Jittered {
                base: 800,
                jitter: 600,
            })
            .seed(99)
            .run()
            .unwrap();
        assert!(report.quiescent);
        assert!(report.min_consistency().unwrap() >= ConsistencyLevel::Convergent);
    }

    #[test]
    fn deterministic_replay() {
        let r1 = MultiViewExperiment::new(config(4, 6).generate().unwrap())
            .seed(7)
            .run()
            .unwrap();
        let r2 = MultiViewExperiment::new(config(4, 6).generate().unwrap())
            .seed(7)
            .run()
            .unwrap();
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.end_time, r2.end_time);
        for (a, b) in r1.views.iter().zip(r2.views.iter()) {
            assert_eq!(a.view, b.view);
        }
    }

    #[test]
    fn empty_view_set_drains_harmlessly() {
        let mut scenario = config(1, 8).generate().unwrap();
        scenario.views.clear();
        let report = MultiViewExperiment::new(scenario).run().unwrap();
        assert!(report.quiescent);
        assert_eq!(report.query_messages(), 0);
        assert_eq!(report.messages_per_update(), 0.0);
    }

    #[test]
    fn derived_views_track_their_oracle_at_every_epoch() {
        for seed in [11u64, 12, 13] {
            let scenario = config_with_derived(3, 4, seed).generate().unwrap();
            let n_derived = scenario.derived.len();
            let report = MultiViewExperiment::new(scenario).run().unwrap();
            assert!(report.quiescent);
            assert_eq!(report.derived.len(), n_derived);
            for d in &report.derived {
                assert!(d.epochs_audited > 0, "derived '{}' never audited", d.name);
                assert_eq!(d.epoch_mismatches, 0, "derived '{}'", d.name);
                assert!(d.final_matches_oracle, "derived '{}'", d.name);
            }
            assert!(report.derived_clean());
            assert!(report.cascade.child_installs > 0);
        }
    }

    #[test]
    fn derived_views_cost_zero_extra_source_messages() {
        // The whole point of the DAG scheduler: children are fed locally
        // from the parent's committed install delta, so the source-side
        // message bill is identical with or without derived views.
        let with = config_with_derived(3, 5, 14).generate().unwrap();
        let mut without = with.clone();
        without.derived.clear();
        let r_with = MultiViewExperiment::new(with).run().unwrap();
        let r_without = MultiViewExperiment::new(without).run().unwrap();
        assert!(!r_with.derived.is_empty());
        assert_eq!(r_with.query_messages(), r_without.query_messages());
        assert_eq!(
            r_with.messages_per_update(),
            r_without.messages_per_update()
        );
        // Base-view outcomes are untouched by the extra registrations.
        for (a, b) in r_with.views.iter().zip(r_without.views.iter()) {
            assert_eq!(a.view, b.view, "view '{}'", a.name);
        }
    }

    #[test]
    fn derived_epochs_align_with_parent_logs() {
        let scenario = config_with_derived(2, 3, 15).generate().unwrap();
        let report = MultiViewExperiment::new(scenario).run().unwrap();
        for d in &report.derived {
            let parent_installs = report
                .views
                .iter()
                .map(|v| (&v.name, &v.installs))
                .chain(report.derived.iter().map(|o| (&o.name, &o.installs)))
                .find(|(n, _)| **n == d.parent)
                .map(|(_, i)| i.clone())
                .expect("parent appears in the report");
            assert_eq!(d.installs.len(), parent_installs.len(), "'{}'", d.name);
            for (mine, theirs) in d.installs.iter().zip(parent_installs.iter()) {
                assert_eq!(mine.consumed, theirs.consumed, "'{}'", d.name);
            }
        }
    }

    #[test]
    fn derived_survive_crash_recovery_with_oracle_intact() {
        let scenario = config_with_derived(3, 4, 16).generate().unwrap();
        let report = MultiViewExperiment::new(scenario)
            .faults(FaultPlan::default().state_crash(WAREHOUSE_NODE, 3_000, 6_000))
            .transport_auto()
            .durability(2)
            .run()
            .unwrap();
        assert!(report.quiescent);
        assert!(report.recovery.recoveries > 0);
        assert!(report.derived_clean());
    }

    #[test]
    fn staleness_percentiles_are_reported() {
        let scenario = config(3, 9).generate().unwrap();
        let report = MultiViewExperiment::new(scenario).run().unwrap();
        let p50 = report.staleness_percentile(50.0).unwrap();
        let p95 = report.staleness_percentile(95.0).unwrap();
        assert!(p50 <= p95);
    }

    #[test]
    fn handwritten_specs_roundtrip() {
        let mut scenario = config(1, 10).generate().unwrap();
        scenario.views = vec![
            ViewSpec::full("all", 4),
            ViewSpec {
                lo: 1,
                hi: 2,
                ..ViewSpec::full("mid", 4)
            },
        ];
        let report = MultiViewExperiment::new(scenario).run().unwrap();
        assert_eq!(report.views[0].name, "all");
        assert_eq!(report.views[1].lo, 1);
        assert!(report.min_consistency().unwrap() >= ConsistencyLevel::Convergent);
    }
}
