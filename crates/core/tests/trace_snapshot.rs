//! Observability snapshot tests: the `dw-obs` layer records in *virtual*
//! time, so two runs of the same seeded scenario must produce
//! byte-identical rendered traces — and attaching the recorder must not
//! change what the experiment computes.

use dw_core::{Experiment, PolicyKind, RunReport};
use dw_obs::Obs;
use dw_simnet::LatencyModel;
use dw_workload::StreamConfig;

fn run(policy: PolicyKind, obs: Obs) -> RunReport {
    let scenario = StreamConfig {
        n_sources: 3,
        initial_per_source: 15,
        updates: 12,
        mean_gap: 900,
        domain: 10,
        seed: 42,
        ..Default::default()
    }
    .generate()
    .unwrap();
    Experiment::new(scenario)
        .policy(policy)
        .latency(LatencyModel::Constant(2_000))
        .observe(obs)
        .run()
        .unwrap()
}

#[test]
fn seeded_sweep_traces_are_byte_identical() {
    let render = || {
        let (obs, rec) = Obs::trace();
        run(PolicyKind::Sweep(Default::default()), obs);
        let rec = rec.lock().unwrap();
        rec.render()
    };
    let first = render();
    let second = render();
    assert!(!first.is_empty());
    assert_eq!(first, second, "virtual-time traces must be deterministic");
}

#[test]
fn sweep_trace_contains_expected_spans_and_counters() {
    let (obs, rec) = Obs::trace();
    let report = run(PolicyKind::Sweep(Default::default()), obs);
    let rec = rec.lock().unwrap();
    let text = rec.render();

    // One "sweep" span per processed update, one hop span per query leg.
    assert!(text.contains("== spans =="));
    assert!(text.contains("sweep ["));
    assert!(
        text.contains("  sweep.hop ["),
        "hops nest under the sweep span"
    );
    assert!(text.contains("== histograms =="));
    assert!(text.contains("sweep:"), "span durations feed a histogram");
    assert!(text.contains("net.queue_delay:"));

    // Span accounting matches the report's own counters.
    let sweeps = rec.histogram("sweep").map_or(0, |h| h.count());
    assert_eq!(sweeps, report.metrics.updates_received);
    let hops = rec.histogram("sweep.hop").map_or(0, |h| h.count());
    assert_eq!(hops, report.metrics.queries_sent);
    assert_eq!(
        rec.counter("sweep.compensations"),
        report.metrics.local_compensations
    );
}

#[test]
fn nested_sweep_traces_are_deterministic_and_labeled() {
    let render = || {
        let (obs, rec) = Obs::trace();
        run(PolicyKind::NestedSweep(Default::default()), obs);
        let rec = rec.lock().unwrap();
        rec.render()
    };
    let first = render();
    assert_eq!(first, render());
    assert!(first.contains("nested_sweep ["));
}

#[test]
fn observer_does_not_change_results() {
    let silent = run(PolicyKind::Sweep(Default::default()), Obs::off());
    let (obs, _rec) = Obs::trace();
    let observed = run(PolicyKind::Sweep(Default::default()), obs);
    assert_eq!(silent.view, observed.view);
    assert_eq!(silent.end_time, observed.end_time);
    assert_eq!(silent.events, observed.events);
    assert_eq!(
        silent.metrics.local_compensations,
        observed.metrics.local_compensations
    );
}
