//! End-to-end robustness: the maintenance policies keep their paper
//! consistency levels when the network misbehaves, *provided* the
//! reliability transport is in the loop — and demonstrably lose them when
//! it is not. This is the repo earning §2's "reliable FIFO channels"
//! assumption instead of granting it.

use dw_consistency::{verify_fifo, ConsistencyLevel};
use dw_core::{Experiment, PolicyKind};
use dw_simnet::{FaultPlan, LinkFaults};
use dw_workload::{GeneratedScenario, StreamConfig};
use std::collections::HashSet;

fn scenario(updates: usize, seed: u64) -> GeneratedScenario {
    StreamConfig {
        n_sources: 3,
        updates,
        initial_per_source: 20,
        domain: 8,
        mean_gap: 500,
        seed,
        ..Default::default()
    }
    .generate()
    .unwrap()
}

/// Drop + duplicate + reorder on every link, plus one source crash that
/// overlaps the update stream.
fn nasty_plan() -> FaultPlan {
    FaultPlan::default()
        .uniform(LinkFaults {
            drop_rate: 0.15,
            dup_rate: 0.1,
            reorder_rate: 0.1,
            reorder_window: 3_000,
        })
        .crash(2, 3_000, 60_000) // source 1 (node 2) is down for 57 ms
}

#[test]
fn sweep_stays_complete_under_faults_with_transport() {
    let report = Experiment::new(scenario(25, 101))
        .policy(PolicyKind::Sweep(Default::default()))
        .faults(nasty_plan())
        .transport_auto()
        .run()
        .unwrap();
    assert!(report.quiescent, "transport must drain");
    assert_eq!(
        report.consistency.unwrap().level,
        ConsistencyLevel::Complete
    );
    assert_eq!(report.metrics.installs, report.metrics.updates_received);
    let fifo = verify_fifo(&report.delivery_log);
    assert!(
        fifo.ok(),
        "channel contract breached: {:?}",
        fifo.violations
    );
}

#[test]
fn nested_sweep_stays_strong_under_faults_with_transport() {
    let report = Experiment::new(scenario(25, 102))
        .policy(PolicyKind::NestedSweep(Default::default()))
        .faults(nasty_plan())
        .transport_auto()
        .run()
        .unwrap();
    assert!(report.quiescent);
    let level = report.consistency.unwrap().level;
    assert!(level >= ConsistencyLevel::Strong, "got {level}");
}

#[test]
fn updates_are_exactly_once_under_duplication() {
    // Heavy duplication, no drops: without the transport's dedup every
    // update would hit the warehouse at least once more.
    let report = Experiment::new(scenario(30, 103))
        .policy(PolicyKind::Sweep(Default::default()))
        .faults(FaultPlan::default().dup_rate(0.8))
        .transport_auto()
        .run()
        .unwrap();
    let ids: HashSet<_> = report.delivery_log.iter().map(|(id, _)| *id).collect();
    assert_eq!(
        ids.len(),
        report.delivery_log.len(),
        "transport must deduplicate the update stream"
    );
    assert!(verify_fifo(&report.delivery_log).ok());
    assert_eq!(
        report.consistency.unwrap().level,
        ConsistencyLevel::Complete
    );
}

#[test]
fn duplication_without_transport_breaches_the_channel_contract() {
    // Same duplication, no transport: the FIFO verifier must catch the
    // repeats that the warehouse is not built to tolerate.
    match Experiment::new(scenario(30, 103))
        .policy(PolicyKind::Sweep(Default::default()))
        .faults(FaultPlan::default().dup_rate(0.8))
        .run()
    {
        Err(_) => {} // duplicate updates corrupted an install outright
        Ok(report) => {
            let fifo = verify_fifo(&report.delivery_log);
            assert!(
                fifo.duplicates() > 0,
                "80% duplication must show up in the delivery log"
            );
        }
    }
}

#[test]
fn faults_without_transport_break_sweep() {
    // The control arm: the same faulted network with the raw policy on
    // top. Dropped queries/answers either corrupt an install outright
    // (the warehouse applies a delta computed from missing answers) or
    // leave sweeps permanently in flight — either way the run must NOT
    // end quiescent-and-complete. The paper's claims really do depend on
    // the channel contract.
    match Experiment::new(scenario(25, 104))
        .policy(PolicyKind::Sweep(Default::default()))
        .faults(FaultPlan::default().drop_rate(0.3))
        .run()
    {
        Err(_) => {} // e.g. InconsistentInstall — visibly broken
        Ok(report) => {
            let complete = report
                .consistency
                .map(|c| c.level == ConsistencyLevel::Complete)
                .unwrap_or(false);
            assert!(
                !(report.quiescent && complete),
                "a lossy network without the transport should not look healthy"
            );
        }
    }
}

#[test]
fn transport_is_invisible_on_a_clean_network() {
    // Same scenario with and without the transport, no faults: identical
    // final view, identical logical message accounting (2(n−1) per
    // update), zero retransmissions.
    let bare = Experiment::new(scenario(20, 105))
        .policy(PolicyKind::Sweep(Default::default()))
        .run()
        .unwrap();
    let transported = Experiment::new(scenario(20, 105))
        .policy(PolicyKind::Sweep(Default::default()))
        .transport_auto()
        .run()
        .unwrap();
    assert_eq!(bare.view, transported.view);
    assert_eq!(
        bare.query_messages(),
        transported.logical_query_messages(),
        "logical accounting must not see the transport"
    );
    assert_eq!(transported.logical_messages_per_update(), 4.0);
    assert_eq!(transported.net.retransmitted().messages, 0);
    assert_eq!(
        transported.consistency.unwrap().level,
        ConsistencyLevel::Complete
    );
}

#[test]
fn retransmission_overhead_is_measurable_under_loss() {
    let report = Experiment::new(scenario(25, 106))
        .policy(PolicyKind::Sweep(Default::default()))
        .faults(FaultPlan::default().drop_rate(0.2))
        .transport_auto()
        .run()
        .unwrap();
    assert!(
        report.net.retransmitted().messages > 0,
        "a 20% loss rate must force retransmissions"
    );
    assert!(report.transport_overhead_bytes() > 0);
    assert!(report.net.inflation() > 1.0);
    // The logical cost is still the paper's: faults inflate the wire, not
    // the algorithm.
    assert_eq!(report.logical_messages_per_update(), 4.0);
    assert_eq!(
        report.consistency.unwrap().level,
        ConsistencyLevel::Complete
    );
}

#[test]
fn deterministic_replay_under_faults_and_transport() {
    let run = || {
        Experiment::new(scenario(20, 107))
            .policy(PolicyKind::Sweep(Default::default()))
            .faults(nasty_plan())
            .transport_auto()
            .seed(7)
            .run()
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.view, b.view);
    assert_eq!(a.delivery_log, b.delivery_log);
    assert_eq!(a.events, b.events);
    assert_eq!(a.net.total(), b.net.total());
    assert_eq!(
        a.net.fault_counters().dropped,
        b.net.fault_counters().dropped
    );
}

#[test]
fn source_crash_recovery_preserves_completeness() {
    // A long crash window swallowing part of the update stream: the
    // journaled transport must replay everything after restart.
    let report = Experiment::new(scenario(30, 108))
        .policy(PolicyKind::Sweep(Default::default()))
        .faults(FaultPlan::default().crash(1, 1_000, 100_000))
        .transport_auto()
        .run()
        .unwrap();
    assert!(report.quiescent);
    assert_eq!(
        report.consistency.unwrap().level,
        ConsistencyLevel::Complete
    );
    assert_eq!(report.metrics.installs, report.metrics.updates_received);
}
